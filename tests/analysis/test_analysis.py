"""Tests for the comparison harness, sweeps and report formatting."""

import pytest

from repro.analysis import (
    PlatformComparison,
    aggregation_buffer_sweep,
    format_table,
    geometric_mean,
    memory_coordination_sweep,
    pipeline_mode_sweep,
    print_table,
    sampling_factor_sweep,
    sparsity_elimination_sweep,
    systolic_module_sweep,
)
from repro.core import HyGCNConfig


SMALL = HyGCNConfig()


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geometric_mean([0, -5, 4]) == pytest.approx(4.0)


class TestPlatformComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return PlatformComparison().compare("GCN", "IB")

    def test_speedups_positive(self, result):
        assert result.speedup_vs_cpu > 1.0
        assert result.speedup_vs_gpu is not None and result.speedup_vs_gpu > 0

    def test_hygcn_wins_cpu_by_large_margin(self, result):
        # the paper's headline: orders of magnitude faster than PyG-CPU
        assert result.speedup_vs_cpu > 20

    def test_energy_much_lower_than_cpu(self, result):
        assert result.energy_vs_cpu < 0.05  # < 5% of CPU energy

    def test_dram_access_not_larger_than_cpu(self, result):
        assert result.dram_vs_cpu < 1.2

    def test_bandwidth_utilization_ordering(self, result):
        utils = result.bandwidth_utilizations()
        assert utils["HyGCN"] > utils["PyG-CPU"]

    def test_energy_breakdown_sums_to_one(self, result):
        shares = result.energy_breakdown()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_as_row_keys(self, result):
        row = result.as_row()
        assert {"model", "dataset", "speedup_vs_cpu", "speedup_vs_gpu",
                "energy_vs_cpu_pct", "dram_vs_cpu_pct", "gpu_oom"} <= set(row)

    def test_grid_and_summary(self):
        comparison = PlatformComparison()
        results = comparison.compare_grid(["GCN"], ["IB", "CR"])
        assert len(results) == 2
        summary = comparison.summarize(results)
        assert summary["geomean_speedup_vs_cpu"] > 1
        assert "num_gpu_oom" in summary

    def test_gpu_oom_handled_in_row(self):
        result = PlatformComparison().compare("GIN", "RD")
        row = result.as_row()
        assert row["gpu_oom"] is True
        assert row["speedup_vs_gpu"] is None


class TestSweeps:
    def test_sparsity_sweep_speedup_at_least_one(self):
        rows = sparsity_elimination_sweep(datasets=("CR",), config=SMALL)
        assert len(rows) == 1
        assert rows[0]["speedup"] >= 1.0
        assert rows[0]["dram_access_pct"] <= 100.0
        assert 0.0 <= rows[0]["sparsity_reduction_pct"] <= 100.0

    def test_pipeline_sweep_time_and_dram_reduced(self):
        rows = pipeline_mode_sweep(datasets=("CR",), config=SMALL)
        row = rows[0]
        assert row["execution_time_pct_vs_no_pipeline"] < 100.0
        assert row["dram_access_pct_vs_no_pipeline"] < 100.0
        assert row["lpipe_vertex_latency_pct_vs_epipe"] < 100.0
        assert row["epipe_combination_energy_pct_vs_lpipe"] < 100.0

    def test_memory_coordination_sweep(self):
        rows = memory_coordination_sweep(datasets=("CR",), config=SMALL)
        row = rows[0]
        assert row["execution_time_pct_with_coordination"] < 100.0
        assert row["time_saving_pct"] > 0
        assert row["bandwidth_utilization_improvement"] > 1.0

    def test_sampling_factor_sweep_monotone_dram(self):
        rows = sampling_factor_sweep(datasets=("CR",), factors=(1, 4, 16), config=SMALL)
        dram = [r["dram_access_pct"] for r in rows]
        assert dram[0] == pytest.approx(100.0)
        assert dram[-1] <= dram[0]
        sparsity = [r["sparsity_reduction_pct"] for r in rows]
        assert sparsity[-1] >= sparsity[0]

    def test_aggregation_buffer_sweep_larger_buffer_less_dram(self):
        rows = aggregation_buffer_sweep(datasets=("CS",), capacities_mb=(2, 16),
                                        config=SMALL)
        small, large = rows[0], rows[-1]
        assert large["dram_access_pct"] <= small["dram_access_pct"]
        assert large["execution_time_pct"] <= small["execution_time_pct"] + 1e-6

    def test_systolic_module_sweep_tradeoff(self):
        rows = systolic_module_sweep(datasets=("CR",), module_counts=(32, 1),
                                     config=SMALL)
        fine, coarse = rows[0], rows[-1]
        # coarser modules: higher vertex latency, lower combination energy
        assert coarse["vertex_latency_pct"] >= fine["vertex_latency_pct"]
        assert coarse["combination_energy_pct"] <= fine["combination_energy_pct"]


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_handles_none_and_bool(self):
        text = format_table([{"v": None, "flag": True}])
        assert "OoM" in text
        assert "yes" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_print_table_smoke(self, capsys):
        print_table([{"a": 1.23456}], title="t")
        captured = capsys.readouterr()
        assert "t" in captured.out
