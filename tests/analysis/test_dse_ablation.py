"""Tests for the design-space exploration API and the stacked ablation."""

import pytest

from repro.analysis import (
    ABLATION_STEPS,
    DesignPoint,
    WorkloadMix,
    evaluate_design_point,
    explore,
    pareto_front,
    stacked_optimization_ablation,
)
from repro.core import HyGCNConfig

#: a quick mix for tests: one small multi-graph dataset, one model each way
QUICK_MIX = WorkloadMix(name="quick", entries=(("GCN", "IB"), ("GIN", "IB")))


class TestDesignSpaceExploration:
    def test_evaluate_design_point_fields(self):
        point = evaluate_design_point(HyGCNConfig(), QUICK_MIX)
        assert point.total_cycles > 0
        assert point.total_energy_j > 0
        assert point.power_w == pytest.approx(6.7, rel=0.05)
        assert point.area_mm2 == pytest.approx(7.8, rel=0.05)
        assert len(point.per_workload_cycles) == 2
        assert point.time_ms > 0
        assert point.perf_per_watt > 0
        assert point.perf_per_mm2 > 0

    def test_as_row_keys(self):
        point = evaluate_design_point(HyGCNConfig(), QUICK_MIX)
        assert {"simd_cores", "systolic_modules", "agg_buffer_mb", "time_ms",
                "power_w", "area_mm2", "perf_per_watt"} <= set(point.as_row())

    def test_explore_returns_one_point_per_config(self):
        configs = [HyGCNConfig(), HyGCNConfig(num_simd_cores=8, num_systolic_modules=2)]
        points = explore(configs, QUICK_MIX)
        assert len(points) == 2
        # the smaller design is cheaper but slower
        big, small = points
        assert small.power_w < big.power_w
        assert small.area_mm2 < big.area_mm2
        assert small.total_cycles >= big.total_cycles

    def test_dominates_semantics(self):
        cfg = HyGCNConfig()
        better = DesignPoint(cfg, total_cycles=100)
        better.power_w, better.area_mm2 = 5.0, 5.0
        worse = DesignPoint(cfg, total_cycles=200)
        worse.power_w, worse.area_mm2 = 6.0, 6.0
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(better)

    def test_pareto_front_filters_dominated_points(self):
        cfg = HyGCNConfig()
        a = DesignPoint(cfg, total_cycles=100); a.power_w, a.area_mm2 = 10.0, 10.0
        b = DesignPoint(cfg, total_cycles=200); b.power_w, b.area_mm2 = 5.0, 5.0
        c = DesignPoint(cfg, total_cycles=300); c.power_w, c.area_mm2 = 12.0, 12.0
        front = pareto_front([a, b, c])
        assert a in front and b in front and c not in front

    def test_workload_mix_graphs(self):
        graphs = QUICK_MIX.graphs()
        assert len(graphs) == 2
        assert all(g.num_vertices > 0 for _, g in graphs)


class TestStackedAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return stacked_optimization_ablation(dataset="CR", model_name="GCN")

    def test_one_row_per_step(self, rows):
        assert [r["step"] for r in rows] == list(ABLATION_STEPS)

    def test_baseline_normalised_to_100(self, rows):
        assert rows[0]["time_pct_of_baseline"] == pytest.approx(100.0)
        assert rows[0]["dram_pct_of_baseline"] == pytest.approx(100.0)
        assert rows[0]["speedup_vs_baseline"] == pytest.approx(1.0)

    def test_cumulative_speedup_monotone(self, rows):
        speedups = [r["speedup_vs_baseline"] for r in rows]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 1.5

    def test_dram_never_increases(self, rows):
        dram = [r["dram_pct_of_baseline"] for r in rows]
        assert all(b <= a + 1e-9 for a, b in zip(dram, dram[1:]))

    def test_full_stack_saves_energy(self, rows):
        assert rows[-1]["energy_pct_of_baseline"] < 100.0
