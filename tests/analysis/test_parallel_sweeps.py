"""Parallel sweep execution and workload memoisation."""

from repro.analysis import (
    SimJob,
    explore,
    run_simulation_jobs,
    sparsity_elimination_sweep,
    stacked_optimization_ablation,
    WorkloadMix,
)
from repro.core import HyGCNConfig
from repro.graphs import load_dataset
from repro.models import build_model, clear_workloads_cache, workloads_for

DATASETS = ("IB",)


class TestParallelJobs:
    def test_parallel_matches_sequential(self):
        sequential = sparsity_elimination_sweep(datasets=DATASETS, parallel=False)
        parallel = sparsity_elimination_sweep(datasets=DATASETS, parallel=True)
        assert sequential == parallel

    def test_job_order_preserved(self):
        jobs = [SimJob("IB", "GCN", HyGCNConfig(), seed=0),
                SimJob("IB", "GIN", HyGCNConfig(), seed=0)]
        reports = run_simulation_jobs(jobs, parallel=True)
        assert [r.model_name for r in reports] == ["GCN", "GINConv"]

    def test_ablation_parallel_matches_sequential(self):
        sequential = stacked_optimization_ablation(dataset="IB", parallel=False)
        parallel = stacked_optimization_ablation(dataset="IB", parallel=True)
        assert sequential == parallel

    def test_dse_explore_parallel_matches_sequential(self):
        mix = WorkloadMix(name="quick", entries=(("GCN", "IB"),))
        configs = [HyGCNConfig(), HyGCNConfig(num_simd_cores=16)]
        sequential = explore(configs, mix, parallel=False)
        parallel = explore(configs, mix, parallel=True)
        assert [p.total_cycles for p in sequential] \
            == [p.total_cycles for p in parallel]
        assert [p.power_w for p in sequential] == [p.power_w for p in parallel]

    def test_single_job_runs_inline(self):
        jobs = [SimJob("IB", "GCN", HyGCNConfig(), seed=0)]
        reports = run_simulation_jobs(jobs, parallel=True)
        assert len(reports) == 1 and reports[0].total_cycles > 0


class TestWorkloadMemoisation:
    def test_same_pair_returns_cached_flattening(self):
        clear_workloads_cache()
        graph = load_dataset("IB", seed=0)
        model = build_model("GCN", input_length=graph.feature_length)
        first = workloads_for(model, graph)
        second = workloads_for(model, graph)
        assert first is not second          # fresh list per call
        assert [a is b for a, b in zip(first, second)] == [True] * len(first)

    def test_distinct_pairs_not_conflated(self):
        clear_workloads_cache()
        graph = load_dataset("IB", seed=0)
        gcn = build_model("GCN", input_length=graph.feature_length)
        gin = build_model("GIN", input_length=graph.feature_length)
        assert workloads_for(gcn, graph)[0].aggregation.reducer == "gcn_norm"
        assert workloads_for(gin, graph)[0].aggregation.reducer == "gin_sum"

    def test_caller_list_mutation_does_not_corrupt_cache(self):
        clear_workloads_cache()
        graph = load_dataset("IB", seed=0)
        model = build_model("GCN", input_length=graph.feature_length)
        workloads = workloads_for(model, graph)
        expected = len(workloads)
        workloads.clear()
        assert len(workloads_for(model, graph)) == expected
