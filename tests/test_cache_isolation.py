"""Regression test: process-wide caches must not leak across test modules.

The probe cache (:data:`repro.serving.fleet._PROBE_CACHE`), the
workload cache (:data:`repro.models.model_zoo._WORKLOADS_CACHE`), the
shard-plan cache (:data:`repro.serving.sharding._SHARD_PLAN_CACHE`) and
the update-stream memo
(:data:`repro.serving.streaming._UPDATE_STREAM_CACHE`) are
process-wide memos.  ``tests/conftest.py`` installs an autouse
module-scoped fixture that clears all four at every module boundary;
this file proves the fixture actually fires by running a miniature
two-module pytest session under the *real* repo conftest -- module A
pollutes the caches, module B asserts it starts cold.  If someone
deletes or weakens the conftest fixture, the inner session (and hence
this test) fails.
"""

import os

import pytest

pytest_plugins = ["pytester"]

_CONFTEST_PATH = os.path.join(os.path.dirname(__file__), "conftest.py")

_MODULE_A = """
from repro.graphs import load_dataset
from repro.models import model_zoo
from repro.models.model_zoo import build_model, workloads_for
from repro.serving import fleet, sharding, streaming


def test_pollute_caches():
    graph = load_dataset("IB", seed=0, scale_factor=16)
    model = build_model("GCN", input_length=graph.feature_length)
    workloads_for(model, graph)
    fleet._PROBE_CACHE[("sentinel",)] = 1.0
    sharding._SHARD_PLAN_CACHE[("sentinel",)] = object()
    streaming._UPDATE_STREAM_CACHE[("sentinel",)] = ()
    assert model_zoo._WORKLOADS_CACHE
    assert fleet._PROBE_CACHE
    assert sharding._SHARD_PLAN_CACHE
    assert streaming._UPDATE_STREAM_CACHE
"""

_MODULE_B = """
from repro.models import model_zoo
from repro.serving import fleet, sharding, streaming


def test_starts_with_cold_caches():
    assert not model_zoo._WORKLOADS_CACHE
    assert not fleet._PROBE_CACHE
    assert not sharding._SHARD_PLAN_CACHE
    assert not streaming._UPDATE_STREAM_CACHE
"""


def test_module_boundary_clears_process_caches(pytester):
    with open(_CONFTEST_PATH) as handle:
        pytester.makeconftest(handle.read())
    pytester.makepyfile(test_a_pollutes=_MODULE_A, test_b_cold=_MODULE_B)
    result = pytester.runpytest_inprocess("-p", "no:cacheprovider", "-q")
    result.assert_outcomes(passed=2)


def test_clear_helpers_empty_the_caches():
    """The clear functions themselves must fully empty every cache."""
    from repro.graphs import load_dataset
    from repro.models import model_zoo
    from repro.models.model_zoo import (build_model, clear_workloads_cache,
                                        workloads_for)
    from repro.serving import fleet, sharding, streaming
    from repro.serving.fleet import clear_probe_cache
    from repro.serving.sharding import clear_shard_plan_cache
    from repro.serving.streaming import clear_update_stream_cache

    graph = load_dataset("IB", seed=0, scale_factor=16)
    model = build_model("GCN", input_length=graph.feature_length)
    workloads_for(model, graph)
    fleet._PROBE_CACHE[("sentinel",)] = 1.0
    sharding._SHARD_PLAN_CACHE[("sentinel",)] = object()
    streaming._UPDATE_STREAM_CACHE[("sentinel",)] = ()
    assert model_zoo._WORKLOADS_CACHE and fleet._PROBE_CACHE
    assert sharding._SHARD_PLAN_CACHE
    assert streaming._UPDATE_STREAM_CACHE
    clear_workloads_cache()
    clear_probe_cache()
    clear_shard_plan_cache()
    clear_update_stream_cache()
    assert not model_zoo._WORKLOADS_CACHE
    assert not fleet._PROBE_CACHE
    assert not sharding._SHARD_PLAN_CACHE
    assert not streaming._UPDATE_STREAM_CACHE


@pytest.fixture(autouse=True)
def _leave_clean():
    yield
    from repro.models.model_zoo import clear_workloads_cache
    from repro.serving.fleet import clear_probe_cache
    from repro.serving.sharding import clear_shard_plan_cache
    from repro.serving.streaming import clear_update_stream_cache
    clear_probe_cache()
    clear_workloads_cache()
    clear_shard_plan_cache()
    clear_update_stream_cache()
