"""Tests for multi-tenant serving: WFQ fairness, SLO accounting, determinism."""

import json

import pytest

from repro.serving import (
    FleetConfig,
    Request,
    TenantConfig,
    WFQScheduler,
    load_tenant_specs,
    merge_tenant_streams,
    run_multi_tenant,
    split_tenant_stream,
)
from repro.serving.batcher import Batch
from repro.__main__ import main

NUM_REQUESTS = 160


def saturating_tenant(name, weight, **overrides):
    """A cheap tenant whose whole stream arrives at ~t=0 (full backlog)."""
    spec = dict(name=name, model="GCN", dataset="IB", weight=weight,
                num_requests=NUM_REQUESTS, rate_rps=1e9, num_hops=1,
                fanout=4, batch_policy="size", max_batch_size=16,
                cache_size=0)
    spec.update(overrides)
    return TenantConfig(**spec)


def run_pair(w_a, w_b, include_solo=False, **overrides):
    tenants = [saturating_tenant("a", w_a, **overrides),
               saturating_tenant("b", w_b, **overrides)]
    return run_multi_tenant(tenants, FleetConfig(num_chips=2),
                            include_isolation_baseline=include_solo)


# --------------------------------------------------------------------------- #
# WFQ scheduler unit behaviour
# --------------------------------------------------------------------------- #
class TestWFQScheduler:
    def _batch(self, i, tenant):
        return Batch(batch_id=i, requests=[], created_time_s=0.0, tenant=tenant)

    def test_equal_weights_alternate_equal_costs(self):
        sched = WFQScheduler({"a": 1.0, "b": 1.0}, quantum_s=1.0)
        for i in range(4):
            sched.enqueue("a", self._batch(i, "a"), 1.0)
            sched.enqueue("b", self._batch(i, "b"), 1.0)
        order = [sched.next_batch()[0] for _ in range(8)]
        assert order.count("a") == order.count("b") == 4
        # never more than one consecutive release for the same tenant
        assert all(x != y for x, y in zip(order, order[1:]))

    def test_weighted_service_proportional_to_cost(self):
        sched = WFQScheduler({"a": 2.0, "b": 1.0}, quantum_s=0.5)
        for i in range(30):
            sched.enqueue("a", self._batch(i, "a"), 1.0)
            sched.enqueue("b", self._batch(i, "b"), 1.0)
        cost = {"a": 0.0, "b": 0.0}
        for _ in range(15):
            name, _, c = sched.next_batch()
            cost[name] += c
        assert cost["a"] == pytest.approx(2 * cost["b"], rel=0.2)

    def test_drained_queue_forfeits_deficit(self):
        sched = WFQScheduler({"a": 1.0, "b": 1.0}, quantum_s=10.0)
        sched.enqueue("a", self._batch(0, "a"), 1.0)
        assert sched.next_batch()[0] == "a"
        assert sched.next_batch() is None
        # "a" must not have banked the unused 9s of deficit
        sched.enqueue("a", self._batch(1, "a"), 5.0)
        sched.enqueue("b", self._batch(1, "b"), 5.0)
        released = {sched.next_batch()[0], sched.next_batch()[0]}
        assert released == {"a", "b"}

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            WFQScheduler({}, quantum_s=1.0)
        with pytest.raises(ValueError):
            WFQScheduler({"a": 0.0}, quantum_s=1.0)
        with pytest.raises(ValueError):
            WFQScheduler({"a": 1.0}, quantum_s=0.0)
        sched = WFQScheduler({"a": 1.0}, quantum_s=1.0)
        with pytest.raises(KeyError):
            sched.enqueue("ghost", self._batch(0, "ghost"), 1.0)

    # ------------------------------------------------------------------ #
    # Edge cases: starvation, empty queues, tiny quanta
    # ------------------------------------------------------------------ #
    def test_near_zero_weight_tenant_never_starves(self):
        # the featherweight accumulates deficit over rotations; DRR
        # guarantees it is eventually served, just at its tiny share
        sched = WFQScheduler({"heavy": 1.0, "light": 1e-4},
                             quantum_s=10.0)
        for i in range(50):
            sched.enqueue("heavy", self._batch(i, "heavy"), 1.0)
        sched.enqueue("light", self._batch(0, "light"), 1e-3)
        released = [sched.next_batch()[0] for _ in range(51)]
        assert released.count("light") == 1
        assert released.count("heavy") == 50

    def test_draining_a_tenant_with_an_empty_queue_is_harmless(self):
        # visiting an empty queue forfeits its deficit and advances; the
        # tenant can re-enter later without having banked any credit
        sched = WFQScheduler({"a": 1.0, "b": 1.0, "c": 1.0}, quantum_s=5.0)
        sched.enqueue("b", self._batch(0, "b"), 1.0)
        assert sched.next_batch()[0] == "b"      # a's empty queue was skipped
        assert sched.next_batch() is None        # everyone drained
        assert sched.pending_batches == 0
        # after draining, a and c hold no hidden deficit advantage
        sched.enqueue("a", self._batch(1, "a"), 4.0)
        sched.enqueue("c", self._batch(1, "c"), 4.0)
        first, second = sched.next_batch()[0], sched.next_batch()[0]
        assert {first, second} == {"a", "c"}
        assert sched.next_batch() is None

    def test_quantum_smaller_than_cheapest_batch_still_progresses(self):
        # a batch costing 100 quanta needs many credit rounds but must
        # release eventually, and weights still shape the release ratio
        sched = WFQScheduler({"a": 2.0, "b": 1.0}, quantum_s=0.01)
        for i in range(12):
            sched.enqueue("a", self._batch(i, "a"), 1.0)
            sched.enqueue("b", self._batch(i, "b"), 1.0)
        released = [sched.next_batch()[0] for _ in range(9)]
        assert released.count("a") == pytest.approx(
            2 * released.count("b"), abs=1)
        # drain completely: every enqueued batch comes out exactly once
        remaining = []
        while True:
            nxt = sched.next_batch()
            if nxt is None:
                break
            remaining.append(nxt)
        assert len(released) + len(remaining) == 24

    def test_backlog_view_tracks_enqueue_and_release(self):
        sched = WFQScheduler({"a": 1.0, "b": 1.0}, quantum_s=1.0)
        assert sched.backlog("a") == 0
        sched.enqueue("a", self._batch(0, "a"), 1.0)
        sched.enqueue("a", self._batch(1, "a"), 1.0)
        assert sched.backlog("a") == 2 and sched.backlog("b") == 0
        sched.next_batch()
        assert sched.backlog("a") == 1


# --------------------------------------------------------------------------- #
# Stream merging
# --------------------------------------------------------------------------- #
class TestMergeTenantStreams:
    def test_merge_tags_sorts_and_renumbers(self):
        streams = {
            "a": [Request(0, 5, 0.3), Request(1, 6, 0.1)],
            "b": [Request(0, 7, 0.2)],
        }
        merged = merge_tenant_streams(streams)
        assert [r.tenant for r in merged] == ["a", "b", "a"]
        assert [r.request_id for r in merged] == [0, 1, 2]
        assert [r.arrival_time_s for r in merged] == [0.1, 0.2, 0.3]
        back = split_tenant_stream(merged)
        assert len(back["a"]) == 2 and len(back["b"]) == 1

    def test_merge_rejects_empty_tenant_name(self):
        with pytest.raises(ValueError):
            merge_tenant_streams({"": [Request(0, 1, 0.0)]})


# --------------------------------------------------------------------------- #
# End-to-end fairness (the WFQ contract)
# --------------------------------------------------------------------------- #
class TestFairness:
    def test_equal_weights_equal_service_under_saturation(self):
        report = run_pair(1.0, 1.0)
        share_a = report.service_share("a")
        share_b = report.service_share("b")
        assert share_a + share_b == pytest.approx(1.0)
        # within 10% of the configured 50/50 split
        assert abs(share_a - 0.5) <= 0.05

    def test_two_to_one_weights_two_to_one_service(self):
        report = run_pair(2.0, 1.0)
        share_a = report.service_share("a")
        assert abs(share_a - 2.0 / 3.0) <= 0.1 * (2.0 / 3.0)
        assert abs(report.service_share("b") - 1.0 / 3.0) <= 0.1 * (1.0 / 3.0)

    def test_every_request_completes_exactly_once(self):
        report = run_pair(3.0, 1.0)
        assert report.completed == 2 * NUM_REQUESTS
        for name in report.tenants:
            records = report.reports[name].records
            assert len(records) == NUM_REQUESTS
            assert len({r.request_id for r in records}) == NUM_REQUESTS
            assert all(r.tenant == name for r in records)

    def test_heavier_weight_never_gets_less(self):
        report = run_pair(4.0, 1.0)
        assert report.service_share("a") > report.service_share("b")


# --------------------------------------------------------------------------- #
# Per-tenant SLO accounting and isolation metrics
# --------------------------------------------------------------------------- #
class TestSLOAndIsolation:
    def test_per_tenant_slo_is_independent(self):
        tenants = [
            saturating_tenant("strict", 1.0, slo_s=1e-9),
            saturating_tenant("relaxed", 1.0, slo_s=10.0),
        ]
        report = run_multi_tenant(tenants, FleetConfig(num_chips=2),
                                  include_isolation_baseline=False)
        assert report.reports["strict"].slo_violation_rate == 1.0
        assert report.reports["relaxed"].slo_violation_rate == 0.0

    def test_isolation_baseline_reports_inflation(self):
        report = run_pair(1.0, 1.0, include_solo=True,
                          num_requests=96)
        for name in report.tenants:
            assert report.solo[name].completed == 96
            inflation = report.p99_inflation(name)
            assert inflation is not None and inflation > 0
        rows = report.isolation_table()
        assert {row["tenant"] for row in rows} == {"a", "b"}
        assert all(row["p99_inflation_x"] is not None for row in rows)

    def test_without_baseline_inflation_is_none(self):
        report = run_pair(1.0, 1.0, num_requests=64)
        assert report.p99_inflation("a") is None
        assert all(row["solo_p99_ms"] is None
                   for row in report.isolation_table())


# --------------------------------------------------------------------------- #
# Rate calibration
# --------------------------------------------------------------------------- #
class TestRateCalibration:
    def _sim(self, *tenants):
        from repro.serving.tenancy import MultiTenantSimulator
        return MultiTenantSimulator(list(tenants), FleetConfig(num_chips=2))

    def test_calibrated_tenants_share_one_window(self):
        sim = self._sim(saturating_tenant("a", 1.0, rate_rps=None,
                                          num_requests=100),
                        saturating_tenant("b", 1.0, rate_rps=None,
                                          num_requests=400))
        rates = sim.calibrate_rates(utilization_target=0.8)
        # same window => rates proportional to request counts
        assert rates["b"] == pytest.approx(4 * rates["a"])

    def test_explicit_rates_pass_through_and_shrink_the_budget(self):
        explicit = saturating_tenant("a", 1.0, rate_rps=123.0)
        sim = self._sim(explicit, saturating_tenant("b", 1.0, rate_rps=None))
        rates = sim.calibrate_rates(utilization_target=0.8)
        assert rates["a"] == 123.0
        assert rates["b"] > 0
        # a tiny extra explicit load must yield a slightly later window
        # (lower calibrated rate) than no explicit load at all
        alone = self._sim(saturating_tenant("b", 1.0, rate_rps=None))
        assert rates["b"] < alone.calibrate_rates(0.8)["b"]

    def test_explicit_overload_leaves_no_budget(self):
        sim = self._sim(saturating_tenant("a", 1.0, rate_rps=1e9),
                        saturating_tenant("b", 1.0, rate_rps=None))
        with pytest.raises(ValueError, match="explicit-rate"):
            sim.calibrate_rates(utilization_target=0.8)


# --------------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------------- #
class TestDeterminism:
    def test_identical_seeds_identical_reports(self):
        first = run_pair(2.0, 1.0, num_requests=96)
        second = run_pair(2.0, 1.0, num_requests=96)
        for name in first.tenants:
            a, b = first.reports[name], second.reports[name]
            assert [r.completion_time_s for r in a.records] \
                == [r.completion_time_s for r in b.records]
            assert a.p99_latency_s == b.p99_latency_s
        assert first.busy_s == second.busy_s
        assert first.contended_busy_s == second.contended_busy_s

    def test_fleet_seed_changes_traffic(self):
        tenants = [saturating_tenant("a", 1.0, num_requests=64,
                                     rate_rps=None)]
        r0 = run_multi_tenant(tenants, FleetConfig(num_chips=2, seed=0),
                              include_isolation_baseline=False)
        r1 = run_multi_tenant(tenants, FleetConfig(num_chips=2, seed=1),
                              include_isolation_baseline=False)
        lat0 = [r.latency_s for r in r0.reports["a"].records]
        lat1 = [r.latency_s for r in r1.reports["a"].records]
        assert lat0 != lat1


# --------------------------------------------------------------------------- #
# Spec parsing and validation
# --------------------------------------------------------------------------- #
class TestTenantSpecs:
    def test_load_from_json_file(self, tmp_path):
        spec = tmp_path / "tenants.json"
        spec.write_text(json.dumps({"tenants": [
            {"name": "x", "model": "gcn", "dataset": "ib", "weight": 2},
            {"name": "y"},
        ]}))
        tenants = load_tenant_specs(str(spec))
        assert [t.name for t in tenants] == ["x", "y"]
        assert tenants[0].model == "GCN" and tenants[0].dataset == "IB"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            load_tenant_specs([{"name": "x", "wieght": 2}])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            load_tenant_specs([{"name": "x"}, {"name": "x"}])

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            TenantConfig(name="")
        with pytest.raises(ValueError):
            TenantConfig(name="x", weight=0)
        with pytest.raises(ValueError):
            TenantConfig(name="x", arrival="trace")
        with pytest.raises(ValueError):
            TenantConfig(name="x", slo_s=-1)


# --------------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------------- #
class TestServeTenantsCommand:
    def _spec_file(self, tmp_path):
        spec = tmp_path / "tenants.json"
        spec.write_text(json.dumps({"tenants": [
            {"name": "a", "dataset": "IB", "weight": 2, "num_requests": 64,
             "num_hops": 1, "fanout": 4, "max_batch_size": 16},
            {"name": "b", "dataset": "IB", "weight": 1, "num_requests": 64,
             "num_hops": 1, "fanout": 4, "max_batch_size": 16},
        ]}))
        return str(spec)

    def test_serve_tenants_reports_fairness_and_isolation(self, tmp_path,
                                                          capsys):
        assert main(["serve", "--tenants", self._spec_file(tmp_path),
                     "--chips", "2"]) == 0
        out = capsys.readouterr().out
        for needle in ("multi-tenant serving", "wfq-drr", "p99_ms",
                       "slo_violation_pct", "WFQ fairness",
                       "contended_share_pct", "p99_inflation_x",
                       "per-chip utilization"):
            assert needle in out

    def test_no_isolation_skips_baselines(self, tmp_path, capsys):
        assert main(["serve", "--tenants", self._spec_file(tmp_path),
                     "--chips", "2", "--no-isolation"]) == 0
        out = capsys.readouterr().out
        assert "WFQ fairness" in out
        assert "p99_inflation_x" not in out

    def test_missing_spec_file_fails(self, tmp_path, capsys):
        assert main(["serve", "--tenants", str(tmp_path / "nope.json")]) == 2
        assert "cannot load tenant spec" in capsys.readouterr().err

    def test_invalid_spec_fails(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps([{"name": "x", "typo_key": 1}]))
        assert main(["serve", "--tenants", str(spec)]) == 2
        assert "unknown keys" in capsys.readouterr().err
