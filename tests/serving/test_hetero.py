"""Tests for heterogeneous fleets (repro.serving.hetero).

Covers the ISSUE-5 satellite checklist: all-cold buckets fall back to
least-loaded deterministically, a draining chip is never scored, a
single-shape FleetSpec is bit-for-bit identical to the homogeneous fleet,
JSON spec validation errors are actionable -- plus the acceptance
criterion: on a mixed two-tenant workload over a 50/50
agg-heavy/comb-heavy fleet, shape-aware dispatch beats least-loaded on
p99 latency AND total (busy) chip-seconds, bit-for-bit deterministically.
"""

import json

import pytest

from repro.core.config import HyGCNConfig
from repro.serving import (
    SCALE_SHAPE_POLICIES,
    SHAPE_MIXES,
    SHAPE_PRESETS,
    BatchProfile,
    ControlConfig,
    FleetConfig,
    FleetSpec,
    ShapeChooser,
    ShapeScorer,
    ShapeSpec,
    TenantConfig,
    clear_probe_cache,
    fleet_spec_for_mix,
    load_fleet_spec,
    run_multi_tenant,
    run_serving,
    shape_cost,
    shape_hw,
    shape_table,
)
from repro.serving.batcher import Batch
from repro.serving.fleet import (
    Chip,
    ServingSimulator,
    _LeastLoadedDispatch,
    _ShapeAwareDispatch,
)
from repro.serving.workload import Request
from repro.graphs.datasets import load_dataset
from repro.models.model_zoo import build_model

MIXED_SPEC = FleetSpec(shapes=(ShapeSpec(preset="agg_heavy", count=2),
                               ShapeSpec(preset="comb_heavy", count=2)))


@pytest.fixture(autouse=True)
def _fresh_probe_cache():
    clear_probe_cache()
    yield
    clear_probe_cache()


def _request(i, vertex=0, t=0.0):
    return Request(request_id=i, target_vertex=vertex, arrival_time_s=t)


def _batch(requests, batch_id=0):
    return Batch(batch_id=batch_id, requests=requests, created_time_s=0.0)


# --------------------------------------------------------------------------- #
# Presets and specs
# --------------------------------------------------------------------------- #
class TestShapePresets:
    def test_presets_are_valid_configs(self):
        for name, hw in SHAPE_PRESETS.items():
            assert isinstance(hw, HyGCNConfig)
            assert shape_hw(name) is hw

    def test_balanced_is_the_table6_default(self):
        assert SHAPE_PRESETS["balanced"] == HyGCNConfig()

    def test_presets_trade_resources(self):
        agg, comb = SHAPE_PRESETS["agg_heavy"], SHAPE_PRESETS["comb_heavy"]
        assert agg.total_simd_lanes > comb.total_simd_lanes
        assert agg.hbm.num_channels > comb.hbm.num_channels
        assert comb.total_pes > agg.total_pes
        assert comb.weight_buffer_bytes > agg.weight_buffer_bytes

    def test_unknown_preset_is_actionable(self):
        with pytest.raises(ValueError, match="agg_heavy"):
            shape_hw("agg_hevy")

    def test_shape_table_and_cost(self):
        rows = shape_table()
        assert {r["shape"] for r in rows} == set(SHAPE_PRESETS)
        assert all(shape_cost(hw) > 0 for hw in SHAPE_PRESETS.values())


class TestFleetSpec:
    def test_roster_layout_is_spec_order(self):
        roster = MIXED_SPEC.roster()
        assert [shape for shape, _ in roster] == \
            ["agg_heavy", "agg_heavy", "comb_heavy", "comb_heavy"]
        assert MIXED_SPEC.num_chips == 4

    def test_overrides_and_names(self):
        spec = FleetSpec(shapes=(
            ShapeSpec(preset="balanced", count=1, name="fat",
                      overrides={"num_systolic_modules": 12}),))
        (name, hw), = spec.roster()
        assert name == "fat"
        assert hw.num_systolic_modules == 12

    def test_fleet_config_derives_num_chips(self):
        cfg = FleetConfig(num_chips=9, fleet_spec=MIXED_SPEC)
        assert cfg.num_chips == 4
        assert cfg.heterogeneous
        assert not FleetConfig().heterogeneous

    def test_mixes(self):
        assert sorted(SHAPE_MIXES) == ["agg-heavy", "balanced",
                                       "comb-heavy", "mixed"]
        spec = fleet_spec_for_mix("mixed", 4)
        counts = {s.shape_name: s.count for s in spec.shapes}
        assert counts == {"agg_heavy": 2, "comb_heavy": 2}
        spec5 = fleet_spec_for_mix("mixed", 5)
        counts5 = {s.shape_name: s.count for s in spec5.shapes}
        assert counts5 == {"agg_heavy": 2, "comb_heavy": 2, "balanced": 1}
        with pytest.raises(ValueError, match="mixed"):
            fleet_spec_for_mix("half-and-half", 4)


class TestLoadFleetSpec:
    def test_loads_dict_list_and_file(self, tmp_path):
        payload = {"shapes": [{"preset": "agg_heavy", "count": 4}]}
        from_dict = load_fleet_spec(payload)
        from_list = load_fleet_spec(payload["shapes"])
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(payload))
        from_file = load_fleet_spec(str(path))
        assert from_dict == from_list == from_file
        assert from_file.num_chips == 4

    @pytest.mark.parametrize("payload, fragment", [
        ({"nope": []}, "'shapes' list"),
        ({"shapes": "agg_heavy"}, "list of shape entries"),
        ([{"preset": "agg_hevy"}], "choose from"),
        ([{"preset": "balanced", "count": 0}], "count must be >= 1"),
        ([{"preset": "balanced", "chips": 4}], "unknown keys"),
        ([{"count": 2}], "missing 'preset'"),
        ([42], "not an object"),
        ([{"preset": "balanced", "overrides": {"hbm": {}}}],
         "unknown HyGCNConfig override"),
        ([{"preset": "balanced"}, {"preset": "balanced"}],
         "names must be unique"),
    ])
    def test_validation_errors_are_actionable(self, payload, fragment):
        with pytest.raises(ValueError, match=fragment):
            load_fleet_spec(payload)

    def test_broken_json_file_is_actionable(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_fleet_spec(str(path))


# --------------------------------------------------------------------------- #
# Profiles and the scorer
# --------------------------------------------------------------------------- #
class TestBatchProfile:
    def test_phase_tiers(self):
        comb = BatchProfile(est_fused_vertices=24, est_naive_vertices=30,
                            batch_size=8, feature_length=3703)
        agg = BatchProfile(est_fused_vertices=328, est_naive_vertices=500,
                           batch_size=8, feature_length=136)
        mixed = BatchProfile(est_fused_vertices=240, est_naive_vertices=300,
                             batch_size=8, feature_length=1433)
        assert comb.bucket.startswith("comb|")
        assert agg.bucket.startswith("agg|")
        assert mixed.bucket.startswith("mixed|")

    def test_overlap_tiers(self):
        lo = BatchProfile(10, 12, 4, 100)
        hi = BatchProfile(5, 12, 4, 100)
        assert lo.bucket.endswith("ov-lo")
        assert hi.bucket.endswith("ov-hi")
        assert hi.overlap_est > 0.5


class TestShapeScorer:
    def test_cold_then_seed_then_observe(self):
        scorer = ShapeScorer(alpha=0.5)
        assert scorer.rate("a", "b1") is None
        assert not scorer.warm(["a"], "b1")
        scorer.seed("a", "b1", 2.0)
        assert scorer.rate("a", "b1") == 2.0
        scorer.seed("a", "b1", 99.0)  # seeds never clobber
        assert scorer.rate("a", "b1") == 2.0
        scorer.observe("a", "b1", 4.0)
        assert scorer.rate("a", "b1") == pytest.approx(3.0)
        assert scorer.warm(["a"], "b1")

    def test_dominant_bucket_tie_breaks_lexicographically(self):
        scorer = ShapeScorer()
        assert scorer.dominant_bucket() is None
        scorer.note_demand("zz")
        scorer.note_demand("aa")
        assert scorer.dominant_bucket() == "aa"  # tie at 1 each
        scorer.note_demand("zz")
        assert scorer.dominant_bucket() == "zz"

    def test_rate_or_default_falls_back_to_shape_mean(self):
        scorer = ShapeScorer()
        assert scorer.rate_or_default("a", "cold") == 0.0
        scorer.seed("a", "b1", 2.0)
        scorer.seed("a", "b2", 4.0)
        assert scorer.rate_or_default("a", "cold") == pytest.approx(3.0)
        assert scorer.rate_or_default("a", "b1") == 2.0


class TestShapeChooser:
    SHAPES = {"agg_heavy": SHAPE_PRESETS["agg_heavy"],
              "comb_heavy": SHAPE_PRESETS["comb_heavy"]}

    def _scorer(self, rates):
        scorer = ShapeScorer()
        scorer.note_demand("b")
        for shape, rate in rates.items():
            scorer.seed(shape, "b", rate)
        return scorer

    def test_registry(self):
        assert SCALE_SHAPE_POLICIES == ("cheapest-adequate",
                                        "bottleneck-phase")
        with pytest.raises(ValueError, match="cheapest-adequate"):
            ShapeChooser("grow-randomly", self.SHAPES)

    def test_cold_chooses_cheapest(self):
        cheapest = min(self.SHAPES,
                       key=lambda s: (shape_cost(self.SHAPES[s]), s))
        for policy in SCALE_SHAPE_POLICIES:
            assert ShapeChooser(policy, self.SHAPES).shape_to_add() == cheapest

    def test_bottleneck_phase_attacks_the_bottleneck(self):
        chooser = ShapeChooser(
            "bottleneck-phase", self.SHAPES,
            scorers=[self._scorer({"agg_heavy": 1.0, "comb_heavy": 3.0})])
        assert chooser.shape_to_add() == "agg_heavy"

    def test_cheapest_adequate_prefers_lean_when_close(self):
        cheapest = min(self.SHAPES,
                       key=lambda s: (shape_cost(self.SHAPES[s]), s))
        close = ShapeChooser(
            "cheapest-adequate", self.SHAPES,
            scorers=[self._scorer({"agg_heavy": 1.0, "comb_heavy": 1.4})])
        assert close.shape_to_add() == cheapest
        far = ShapeChooser(
            "cheapest-adequate", self.SHAPES,
            scorers=[self._scorer({"agg_heavy": 1.0, "comb_heavy": 9.0})])
        assert far.shape_to_add() == "agg_heavy"

    def test_retire_victim_prefers_worst_rated_shape(self):
        chooser = ShapeChooser(
            "cheapest-adequate", self.SHAPES,
            scorers=[self._scorer({"agg_heavy": 1.0, "comb_heavy": 3.0})])
        chips = [Chip(0, self.SHAPES["agg_heavy"], 0, shape="agg_heavy"),
                 Chip(1, self.SHAPES["comb_heavy"], 0, shape="comb_heavy")]
        assert chooser.retire_victim(chips).shape == "comb_heavy"

    def test_control_config_validates_scale_shape(self):
        with pytest.raises(ValueError, match="scale_shape"):
            ControlConfig(autoscale="threshold", scale_shape="random")


# --------------------------------------------------------------------------- #
# Shape-aware dispatch
# --------------------------------------------------------------------------- #
class TestShapeAwareDispatch:
    def _chips(self):
        return [Chip(i, SHAPE_PRESETS["agg_heavy" if i < 2 else "comb_heavy"],
                     0, shape="agg_heavy" if i < 2 else "comb_heavy")
                for i in range(4)]

    def _profile_fn(self, fused=10):
        return lambda b: BatchProfile(est_fused_vertices=fused,
                                      est_naive_vertices=2 * fused,
                                      batch_size=b.size, feature_length=100)

    def test_all_cold_falls_back_to_least_loaded_deterministically(self):
        dispatch = _ShapeAwareDispatch(ShapeScorer(), self._profile_fn())
        chips = self._chips()
        chips[0].queue.append((_batch([_request(9)], batch_id=9), 0.0))
        batch = _batch([_request(0)])
        for _ in range(3):  # repeated calls: same answer, no learning
            assert dispatch.select(chips, batch) is \
                _LeastLoadedDispatch().select(chips, batch)
        assert dispatch.fallback == 3 and dispatch.scored == 0

    def test_partially_warm_bucket_still_falls_back(self):
        scorer = ShapeScorer()
        dispatch = _ShapeAwareDispatch(scorer, self._profile_fn())
        chips = self._chips()
        batch = _batch([_request(0)])
        bucket = self._profile_fn()(batch).bucket
        scorer.seed("agg_heavy", bucket, 1e-6)  # comb_heavy stays cold
        dispatch.select(chips, batch)
        assert dispatch.fallback == 1 and dispatch.scored == 0

    def test_warm_bucket_routes_to_fastest_shape(self):
        scorer = ShapeScorer()
        dispatch = _ShapeAwareDispatch(scorer, self._profile_fn())
        chips = self._chips()
        batch = _batch([_request(0)])
        bucket = self._profile_fn()(batch).bucket
        scorer.seed("agg_heavy", bucket, 3e-6)
        scorer.seed("comb_heavy", bucket, 1e-6)
        chosen = dispatch.select(chips, batch)
        assert chosen.shape == "comb_heavy" and chosen.chip_id == 2
        assert dispatch.scored == 1
        # backlog steers the next identical batch to the other comb chip
        chosen.queue.append((batch, 0.0))
        assert dispatch.select(chips, _batch([_request(1)],
                                             batch_id=1)).chip_id == 3

    def test_est_restamps_queued_batch_whose_profile_was_invalidated(self):
        """A continuous late join resets a queued batch's profile; the
        backlog predictor must re-profile it, not count it as free."""
        scorer = ShapeScorer()
        dispatch = _ShapeAwareDispatch(scorer, self._profile_fn())
        chips = self._chips()
        batch = _batch([_request(0)])
        bucket = self._profile_fn()(batch).bucket
        scorer.seed("agg_heavy", bucket, 1e-6)
        scorer.seed("comb_heavy", bucket, 1e-6)
        queued = _batch([_request(9)], batch_id=9)
        queued.profile = None  # as after ContinuousBatcher.try_join
        chips[0].queue.append((queued, 0.0))
        dispatch.select(chips, batch)
        assert queued.profile is not None  # re-stamped, backlog counted

    def test_oblivious_dispatch_still_feeds_the_demand_signal(self):
        """Shape-oblivious runs on a mixed fleet must count demand, or
        the autoscaler's ShapeChooser would never see a dominant bucket."""
        graph = load_dataset("IB", seed=0)
        model = build_model("GCN", input_length=graph.feature_length)
        cfg = FleetConfig(fleet_spec=MIXED_SPEC, dispatch="round-robin",
                          cache_size=0, seed=0)
        sim = ServingSimulator(graph, model, cfg, dataset_name="IB")
        rate = sim.calibrate_rate(1.0)
        from repro.serving.workload import RequestGenerator, WorkloadConfig
        requests = RequestGenerator(graph.num_vertices, WorkloadConfig(
            num_requests=64, rate_rps=rate, seed=0)).generate()
        sim.run(requests, rate_rps=rate)
        assert sim.scorer.dominant_bucket() is not None

    def test_draining_chip_is_never_scored(self):
        """The event loop only offers schedulable chips to dispatch."""
        graph = load_dataset("CR", seed=0)
        model = build_model("GCN", input_length=graph.feature_length)
        cfg = FleetConfig(fleet_spec=MIXED_SPEC, dispatch="shape-aware",
                          cache_size=0, seed=0)
        sim = ServingSimulator(graph, model, cfg, dataset_name="CR")
        sim.chips[0].state = "draining"
        rate = sim.calibrate_rate(1.0)
        from repro.serving.workload import RequestGenerator, WorkloadConfig
        requests = RequestGenerator(graph.num_vertices, WorkloadConfig(
            num_requests=80, rate_rps=rate, seed=0)).generate()
        report = sim.run(requests, rate_rps=rate)
        assert report.completed == 80
        assert report.chips[0].batches_served == 0
        assert sum(c.batches_served for c in report.chips) > 0
        assert all(r.chip_id != 0 for r in report.records if r.chip_id >= 0)


# --------------------------------------------------------------------------- #
# End-to-end: homogeneous equivalence, elasticity, acceptance
# --------------------------------------------------------------------------- #
class TestSingleShapeEquivalence:
    def test_balanced_spec_is_bit_for_bit_homogeneous(self):
        """A balanced x4 FleetSpec must reproduce today's homogeneous fleet
        exactly -- same records, same chips, same JSON."""
        plain = run_serving(dataset="CR", num_requests=80, seed=0)
        clear_probe_cache()
        spec = FleetSpec(shapes=(ShapeSpec(preset="balanced", count=4),))
        specced = run_serving(dataset="CR", num_requests=80, seed=0,
                              config=FleetConfig(fleet_spec=spec))
        assert specced.hetero is None
        assert json.dumps(plain.to_dict(), default=float, sort_keys=True) \
            == json.dumps(specced.to_dict(), default=float, sort_keys=True)


class TestElasticHetero:
    def test_autoscaled_mixed_fleet_commissions_spec_shapes(self):
        # a twitchy threshold scaler, so the short ramp provokes scale-ups
        control = ControlConfig(autoscale="threshold", min_chips=2,
                                max_chips=8,
                                policy_params={"patience": 1,
                                               "up_delay_fraction": 0.1,
                                               "down_delay_fraction": 0.05},
                                scale_shape="bottleneck-phase")
        report = run_serving(dataset="CR", num_requests=400, seed=0,
                             arrival="ramp", utilization_target=3.0,
                             config=FleetConfig(fleet_spec=MIXED_SPEC,
                                                dispatch="shape-aware",
                                                max_batch_size=8,
                                                cache_size=0),
                             control=control)
        assert report.control is not None and report.hetero is not None
        assert report.control.scale_ups > 0
        spec_shapes = set(MIXED_SPEC.distinct_shapes())
        assert {c.shape for c in report.chips} <= spec_shapes
        assert set(report.hetero.shape_counts) <= spec_shapes


def _acceptance_tenants(n=120):
    return [
        TenantConfig(name="sampler", dataset="CR", num_hops=2, fanout=16,
                     num_requests=n, max_batch_size=8, cache_size=0,
                     popularity_skew=1.0),
        TenantConfig(name="features", dataset="CS", num_hops=1, fanout=2,
                     num_requests=n, max_batch_size=8, cache_size=0,
                     popularity_skew=1.0),
    ]


def _acceptance_run(dispatch):
    clear_probe_cache()
    fleet = FleetConfig(fleet_spec=MIXED_SPEC, dispatch=dispatch, seed=0)
    return run_multi_tenant(_acceptance_tenants(), fleet,
                            utilization_target=1.2,
                            include_isolation_baseline=False)


class TestAcceptance:
    """ISSUE-5 acceptance: mixed workload, 50/50 agg/comb fleet."""

    def test_shape_aware_beats_least_loaded_on_p99_and_chip_seconds(self):
        baseline = _acceptance_run("least-loaded")
        aware = _acceptance_run("shape-aware")
        for name in ("sampler", "features"):
            assert aware.reports[name].p99_latency_s \
                < baseline.reports[name].p99_latency_s
        assert aware.total_busy_s < baseline.total_busy_s
        # the scorer actually routed (not just fell back), and the routing
        # recovered most of the baseline's mis-dispatched chip time
        assert aware.hetero.scored_batches > aware.hetero.fallback_batches
        assert aware.hetero.misdispatch_s < baseline.hetero.misdispatch_s

    def test_reports_are_bit_for_bit_deterministic(self):
        first = _acceptance_run("shape-aware")
        second = _acceptance_run("shape-aware")
        assert json.dumps(first.to_dict(), default=float, sort_keys=True) \
            == json.dumps(second.to_dict(), default=float, sort_keys=True)

    def test_per_shape_tables_cover_the_roster(self):
        report = _acceptance_run("shape-aware")
        rows = report.shape_table()
        assert {r["shape"] for r in rows} == {"agg_heavy", "comb_heavy"}
        assert sum(r["chips"] for r in rows) == 4
        shares = [r["service_share_pct"] for r in rows]
        assert sum(shares) == pytest.approx(100.0, abs=0.1)
        payload = report.to_dict(include_records=False)
        assert payload["hetero"]["dispatch_policy"] == "shape-aware"
        assert payload["chips"][0]["shape"] == "agg_heavy"
