"""LRU cache semantics and hit-rate accounting."""

import pytest

from repro.serving import LRUCache


class TestLRUCache:
    def test_hit_and_miss_accounting(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_math(self):
        cache = LRUCache(8)
        for key in range(4):
            cache.put(key, key)
        hits = sum(1 for key in range(8) if cache.get(key) is not None)
        assert hits == 4
        assert cache.stats.lookups == 8
        assert cache.stats.hit_rate == pytest.approx(4 / 8)

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh, not insert
        cache.put("c", 3)       # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache
        assert cache.stats.insertions == 3

    def test_zero_capacity_disables_cache(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats.misses == 1
        assert cache.stats.insertions == 0

    def test_contains_does_not_touch_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert cache.stats.lookups == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_empty_cache_hit_rate_is_zero(self):
        assert LRUCache(2).stats.hit_rate == 0.0
