"""Knee-finding load harness: bisection logic, sweep wiring, CLI.

:func:`~repro.serving.loadtest.find_knee` is pure bracket-and-bisect
over a ``measure(rate) -> LoadPoint`` callable, so its convergence
properties are pinned here on synthetic monotone attainment curves with
no simulator in the loop; one small real sweep then checks the wiring
(per-chip request scaling, monotone knees) and the CLI checks the
``BENCH_loadtest.json`` emission.
"""

import json
import math

import pytest

from repro.__main__ import main
from repro.serving import (
    FleetConfig,
    KneeResult,
    LoadPoint,
    LoadTestConfig,
    find_knee,
    run_loadtest,
)
from repro.serving.loadtest import _monotone_knees


def step_curve(capacity_rps):
    """Synthetic open-loop fleet: perfect below capacity, failing above."""
    def measure(rate):
        return LoadPoint(rate_rps=rate,
                         attainment=1.0 if rate <= capacity_rps else 0.5)
    return measure


def sloped_curve(capacity_rps, width=0.5):
    """Attainment degrades linearly across ``width * capacity`` past the
    knee -- the realistic shape (queueing pain grows gradually)."""
    def measure(rate):
        attainment = 1.0 - max(0.0, rate - capacity_rps) \
            / (width * capacity_rps)
        return LoadPoint(rate_rps=rate, attainment=max(0.0, attainment))
    return measure


class TestFindKnee:
    @pytest.mark.parametrize("capacity", [7.0, 100.0, 12_345.6])
    def test_converges_to_step_capacity(self, capacity):
        result = find_knee(step_curve(capacity), 0.99, lo_rps=1.0,
                           rel_tol=0.01, max_doublings=20,
                           max_bisections=64)
        assert result.bracketed
        assert result.knee_rps <= capacity
        assert result.knee_rps >= capacity * (1 - 0.011)

    def test_knee_is_a_measured_passing_rate(self):
        result = find_knee(sloped_curve(50.0), 0.95, lo_rps=2.0)
        assert result.bracketed
        measured = {p.rate_rps for p in result.points}
        assert result.knee_rps in measured
        assert result.knee_point is not None
        assert result.knee_point.meets(0.95)
        # every rate above the knee that was measured, failed
        for point in result.points:
            if point.rate_rps > result.knee_rps:
                assert not point.meets(0.95)

    def test_rel_tol_bounds_the_bracket(self):
        for rel_tol in (0.25, 0.1, 0.02):
            result = find_knee(step_curve(40.0), 0.99, lo_rps=1.0,
                               rel_tol=rel_tol, max_bisections=64)
            fails = [p.rate_rps for p in result.points
                     if not p.meets(0.99)]
            assert min(fails) - result.knee_rps \
                <= rel_tol * result.knee_rps + 1e-9

    def test_failing_floor_gives_zero_knee(self):
        result = find_knee(step_curve(0.5), 0.99, lo_rps=1.0)
        assert result == KneeResult(knee_rps=0.0, bracketed=True,
                                    iterations=1, points=result.points)
        assert len(result.points) == 1

    def test_saturation_is_reported_unbracketed(self):
        result = find_knee(lambda rate: LoadPoint(rate, 1.0), 0.99,
                           lo_rps=1.0, max_doublings=5)
        assert not result.bracketed
        assert result.knee_rps == 32.0  # lo << 5 doublings
        assert result.iterations == 6

    def test_explicit_hi_seeds_the_bracket(self):
        calls = []

        def measure(rate):
            calls.append(rate)
            return step_curve(10.0)(rate)

        result = find_knee(measure, 0.99, lo_rps=1.0, hi_rps=64.0,
                           rel_tol=0.05)
        assert result.bracketed
        # the failing hi bound replaces the doubling phase entirely
        assert calls[:2] == [1.0, 64.0]
        assert all(rate <= 64.0 for rate in calls)

    def test_passing_hi_continues_doubling_from_it(self):
        result = find_knee(step_curve(100.0), 0.99, lo_rps=1.0,
                           hi_rps=8.0, rel_tol=0.05)
        assert result.bracketed
        assert result.knee_rps >= 95.0

    def test_max_bisections_caps_refinement(self):
        result = find_knee(step_curve(33.0), 0.99, lo_rps=1.0,
                           rel_tol=1e-9, max_bisections=3)
        fails = [p.rate_rps for p in result.points if not p.meets(0.99)]
        # bracket halves 3 times from [32, 64] and no further
        assert min(fails) - result.knee_rps \
            == pytest.approx(32.0 / 2 ** 3)

    def test_iterations_counts_every_measurement(self):
        result = find_knee(sloped_curve(20.0), 0.9, lo_rps=1.0)
        assert result.iterations == len(result.points)

    def test_validation(self):
        measure = step_curve(10.0)
        with pytest.raises(ValueError, match="lo_rps"):
            find_knee(measure, 0.99, lo_rps=0.0)
        with pytest.raises(ValueError, match="slo_target"):
            find_knee(measure, 0.0, lo_rps=1.0)
        with pytest.raises(ValueError, match="slo_target"):
            find_knee(measure, 1.5, lo_rps=1.0)


class TestLoadTestConfig:
    def test_defaults_measure_uncached_capacity(self):
        config = LoadTestConfig()
        assert config.fleet.cache_size == 0
        assert config.chip_counts == (1, 2, 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_requests"):
            LoadTestConfig(num_requests=0)
        with pytest.raises(ValueError, match="chip_counts"):
            LoadTestConfig(chip_counts=())
        with pytest.raises(ValueError, match="chip_counts"):
            LoadTestConfig(chip_counts=(1, 0))
        with pytest.raises(ValueError, match="slo_target"):
            LoadTestConfig(slo_target=1.2)
        with pytest.raises(ValueError, match="start_utilization"):
            LoadTestConfig(start_utilization=0.0)


class TestRunLoadtest:
    def test_small_real_sweep_is_monotone_and_bracketed(self):
        config = LoadTestConfig(num_requests=768, chip_counts=(1, 2),
                                rel_tol=0.3, max_bisections=2)
        progress = []
        report = run_loadtest(config, progress=progress.append)
        assert [s["num_chips"] for s in report.sweeps] == [1, 2]
        for sweep in report.sweeps:
            # requests scale per chip: constant per-chip pressure
            assert sweep["num_requests"] == 768 * sweep["num_chips"]
            assert sweep["bracketed"]
            assert sweep["slo_s"] > 0
            for point in sweep["points"]:
                assert point["completed"] == point["offered"] \
                    == sweep["num_requests"]
        assert _monotone_knees(report.sweeps)
        # adaptive SLO is probe-derived, hence identical across chip counts
        slos = {round(s["slo_s"], 12) for s in report.sweeps}
        assert len(slos) == 1
        assert len(progress) == sum(s["iterations"] for s in report.sweeps)
        payload = report.to_dict()
        assert payload["kind"] == "loadtest"
        assert math.isfinite(payload["wall_time_s"])
        assert len(report.summary_rows()) == 2

    def test_monotone_helper(self):
        up = [{"num_chips": 2, "knee_rps": 20.0},
              {"num_chips": 1, "knee_rps": 10.0}]
        down = [{"num_chips": 1, "knee_rps": 10.0},
                {"num_chips": 2, "knee_rps": 9.0}]
        assert _monotone_knees(up)
        assert not _monotone_knees(down)


class TestLoadtestCLI:
    def test_writes_bench_json(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_loadtest.json")
        assert main(["loadtest", "--chips", "1", "--requests", "768",
                     "--rel-tol", "0.3", "--json", out]) == 0
        stdout = capsys.readouterr().out
        assert "knee" in stdout
        with open(out) as handle:
            payload = json.load(handle)
        assert payload["kind"] == "loadtest"
        assert [s["num_chips"] for s in payload["sweeps"]] == [1]
        assert all(s["bracketed"] for s in payload["sweeps"])

    def test_json_stdout_stays_pure(self, tmp_path, capsys):
        assert main(["loadtest", "--chips", "1", "--requests", "768",
                     "--rel-tol", "0.3", "--json", "-"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # progress went to stderr
        assert payload["kind"] == "loadtest"
        assert "rps" in captured.err

    def test_bad_flags_exit_2(self, capsys):
        assert main(["loadtest", "--chips", "0"]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["loadtest", "--slo-target", "1.5"]) == 2
        assert "error" in capsys.readouterr().err
