"""Golden-fixture regression tests for the serving and trace reports.

The differential suite proves the two sampler cores agree with *each
other*; these fixtures pin what both of them actually produce.  A fixed
seed, dataset and fleet shape must yield bit-for-bit the JSON committed
under ``tests/serving/fixtures/`` -- so any hot-path refactor (sampler
cores, batching, cycle model, observability) that shifts numbers fails
here explicitly instead of sliding through as a silent behaviour change.

When a change *intentionally* alters the numbers (e.g. a new sampling
determinism contract), regenerate with::

    PYTHONPATH=src python tests/serving/test_golden_fixtures.py

and commit the diff alongside the change that explains it.
"""

import json
import os

from repro.graphs import load_dataset
from repro.models.model_zoo import clear_workloads_cache
from repro.serving.fleet import FleetConfig, clear_probe_cache, run_serving
from repro.serving.observe import Instrumentation, trace_report

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
SERVE_FIXTURE = os.path.join(FIXTURE_DIR, "serve_report_ib_seed5.json")
TRACE_FIXTURE = os.path.join(FIXTURE_DIR, "trace_report_ib_seed5.json")

DATASET = "IB"
NUM_REQUESTS = 64
RATE_RPS = 40.0
SEED = 5


def _build_payloads():
    """One deterministic serving run -> (serve report, trace report) JSON."""
    clear_probe_cache()
    clear_workloads_cache()
    load_dataset.cache_clear()
    observe = Instrumentation()
    report = run_serving(dataset=DATASET, num_requests=NUM_REQUESTS,
                         rate_rps=RATE_RPS,
                         config=FleetConfig(batch_policy="overlap"),
                         seed=SEED, observe=observe)
    serve_json = json.dumps(report.to_dict(), sort_keys=True, indent=2,
                            default=float)
    events = observe.trace_payload()["traceEvents"]
    trace_json = json.dumps(trace_report(events), sort_keys=True, indent=2,
                            default=float)
    return serve_json, trace_json


def test_serve_report_matches_golden_fixture():
    with open(SERVE_FIXTURE) as handle:
        expected = handle.read()
    serve_json, _ = _build_payloads()
    assert serve_json == expected.rstrip("\n"), (
        "serving report diverged from the committed fixture; if the change "
        "is intentional, regenerate via "
        "`PYTHONPATH=src python tests/serving/test_golden_fixtures.py`"
    )


def test_trace_report_matches_golden_fixture():
    with open(TRACE_FIXTURE) as handle:
        expected = handle.read()
    _, trace_json = _build_payloads()
    assert trace_json == expected.rstrip("\n"), (
        "trace report diverged from the committed fixture; if the change "
        "is intentional, regenerate via "
        "`PYTHONPATH=src python tests/serving/test_golden_fixtures.py`"
    )


if __name__ == "__main__":
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    serve_json, trace_json = _build_payloads()
    with open(SERVE_FIXTURE, "w") as handle:
        handle.write(serve_json + "\n")
    with open(TRACE_FIXTURE, "w") as handle:
        handle.write(trace_json + "\n")
    print(f"wrote {SERVE_FIXTURE} ({len(serve_json)} bytes)")
    print(f"wrote {TRACE_FIXTURE} ({len(trace_json)} bytes)")
