"""Request-traffic generators: determinism, rates, skew, trace replay."""

import numpy as np
import pytest

from repro.serving import (
    Request,
    RequestGenerator,
    WorkloadConfig,
    bursty_arrival_times,
    poisson_arrival_times,
    trace_arrival_times,
)


class TestArrivalProcesses:
    def test_poisson_deterministic_under_seed(self):
        a = poisson_arrival_times(200, 1000.0, seed=7)
        b = poisson_arrival_times(200, 1000.0, seed=7)
        c = poisson_arrival_times(200, 1000.0, seed=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_poisson_rate_and_monotonicity(self):
        times = poisson_arrival_times(5000, 1000.0, seed=0)
        assert np.all(np.diff(times) >= 0)
        mean_gap = float(np.mean(np.diff(times)))
        assert mean_gap == pytest.approx(1e-3, rel=0.1)

    def test_bursty_deterministic_and_sorted(self):
        a = bursty_arrival_times(500, 1000.0, seed=3)
        b = bursty_arrival_times(500, 1000.0, seed=3)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) >= 0)

    def test_bursty_is_burstier_than_poisson(self):
        poisson = poisson_arrival_times(3000, 1000.0, seed=0)
        bursty = bursty_arrival_times(3000, 1000.0, seed=0)
        cv_poisson = np.std(np.diff(poisson)) / np.mean(np.diff(poisson))
        cv_bursty = np.std(np.diff(bursty)) / np.mean(np.diff(bursty))
        assert cv_bursty > cv_poisson

    def test_bursty_rejects_inconsistent_burst_factor(self):
        with pytest.raises(ValueError):
            bursty_arrival_times(10, 100.0, burst_factor=20.0, on_fraction=0.1)

    def test_trace_replay_sorts_and_normalises(self):
        times = trace_arrival_times([5.0, 3.0, 4.0])
        assert times.tolist() == [0.0, 1.0, 2.0]

    def test_trace_rejects_negative_timestamps(self):
        with pytest.raises(ValueError):
            trace_arrival_times([-1.0, 2.0])


class TestRequestGenerator:
    def test_generation_deterministic_under_seed(self):
        cfg = WorkloadConfig(num_requests=100, rate_rps=1e4, seed=5)
        first = RequestGenerator(500, cfg).generate()
        second = RequestGenerator(500, cfg).generate()
        assert first == second
        assert all(isinstance(r, Request) for r in first)

    def test_different_seeds_differ(self):
        base = WorkloadConfig(num_requests=100, rate_rps=1e4, seed=5)
        other = WorkloadConfig(num_requests=100, rate_rps=1e4, seed=6)
        assert RequestGenerator(500, base).generate() \
            != RequestGenerator(500, other).generate()

    def test_targets_in_range_and_sorted_arrivals(self):
        cfg = WorkloadConfig(num_requests=300, rate_rps=1e4, seed=0)
        requests = RequestGenerator(128, cfg).generate()
        assert all(0 <= r.target_vertex < 128 for r in requests)
        arrivals = [r.arrival_time_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in requests] == list(range(300))

    def test_popularity_skew_concentrates_traffic(self):
        skewed = WorkloadConfig(num_requests=2000, rate_rps=1e4,
                                popularity_skew=1.2, seed=0)
        uniform = WorkloadConfig(num_requests=2000, rate_rps=1e4,
                                 popularity_skew=0.0, seed=0)
        def top_share(cfg):
            targets = RequestGenerator(1000, cfg).target_vertices()
            _, counts = np.unique(targets, return_counts=True)
            counts.sort()
            return counts[-10:].sum() / len(targets)
        assert top_share(skewed) > 2 * top_share(uniform)

    def test_trace_arrival_requires_trace(self):
        cfg = WorkloadConfig(num_requests=10, rate_rps=1e4, arrival="trace")
        generator = RequestGenerator(64, cfg)
        with pytest.raises(ValueError):
            generator.generate()
        requests = generator.generate(trace=list(np.linspace(0.0, 1.0, 10)))
        assert len(requests) == 10

    def test_short_trace_rejected(self):
        cfg = WorkloadConfig(num_requests=10, rate_rps=1e4, arrival="trace")
        with pytest.raises(ValueError):
            RequestGenerator(64, cfg).generate(trace=[0.0, 1.0])

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_requests=-1)
        with pytest.raises(ValueError):
            WorkloadConfig(rate_rps=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(arrival="uniform")
        with pytest.raises(ValueError):
            WorkloadConfig(arrival="bursty", burst_factor=100.0, on_fraction=0.5)


class TestTraceArrivalEdgeCases:
    def test_truncates_to_num_requests(self):
        times = trace_arrival_times([0.0, 1.0, 2.0, 3.0, 4.0],
                                    num_requests=3)
        assert times.tolist() == [0.0, 1.0, 2.0]

    def test_truncation_happens_after_sorting(self):
        # the three *earliest* arrivals survive, not the first three listed
        times = trace_arrival_times([4.0, 0.0, 3.0, 1.0, 2.0],
                                    num_requests=3)
        assert times.tolist() == [0.0, 1.0, 2.0]

    def test_num_requests_longer_than_trace_keeps_every_timestamp(self):
        times = trace_arrival_times([1.0, 2.0], num_requests=10)
        assert times.tolist() == [0.0, 1.0]

    def test_zero_length_trace(self):
        assert trace_arrival_times([]).size == 0
        assert trace_arrival_times([], num_requests=5).size == 0
        assert trace_arrival_times([1.0, 2.0], num_requests=0).size == 0

    def test_generator_rejects_trace_shorter_than_stream(self):
        # the generator needs one timestamp per request even though the
        # normaliser itself tolerates short traces
        cfg = WorkloadConfig(num_requests=5, rate_rps=1e4, arrival="trace")
        with pytest.raises(ValueError):
            RequestGenerator(64, cfg).generate(trace=[0.0, 1.0, 2.0])


class TestRequestTraceReplayBranch:
    """generate() replaying a captured RequestTrace (serve --replay)."""

    def _trace(self, n=4, target=3):
        from repro.serving import RequestTrace
        return RequestTrace.from_requests(
            [Request(i, target, i * 1e-3) for i in range(n)])

    def test_replays_exact_requests(self):
        cfg = WorkloadConfig(num_requests=4, rate_rps=1e4, arrival="trace")
        trace = self._trace()
        assert RequestGenerator(64, cfg).generate(trace) \
            == trace.to_requests()

    def test_requires_trace_arrival_mode(self):
        cfg = WorkloadConfig(num_requests=4, rate_rps=1e4)
        with pytest.raises(ValueError, match="arrival='trace'"):
            RequestGenerator(64, cfg).generate(self._trace())

    def test_rejects_length_mismatch(self):
        cfg = WorkloadConfig(num_requests=9, rate_rps=1e4, arrival="trace")
        with pytest.raises(ValueError, match="4"):
            RequestGenerator(64, cfg).generate(self._trace(n=4))

    def test_rejects_targets_outside_the_graph(self):
        cfg = WorkloadConfig(num_requests=4, rate_rps=1e4, arrival="trace")
        with pytest.raises(ValueError, match="different dataset"):
            RequestGenerator(64, cfg).generate(self._trace(target=64))
