"""Tests for the observability layer: spans, metrics, trace-report.

The headline invariants, straight from the design contract of
:mod:`repro.serving.observe`:

* observation never perturbs the simulation -- a traced run reports
  bit-for-bit the same numbers as an untraced one with the same seed,
  including under the control plane and multi-tenant scheduling;
* span accounting is conservative -- a request's phase spans tile its
  end-to-end latency exactly;
* the exported trace validates against the Chrome trace-event shape the
  viewers expect.

Plus unit coverage of the metrics registry and the CLI surface
(``--trace-out`` / ``--metrics-out`` / ``trace-report``).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.serving import (
    ControlConfig,
    Counter,
    FleetConfig,
    Gauge,
    Histogram,
    Instrumentation,
    MetricsRegistry,
    TenantConfig,
    format_trace_report,
    load_trace,
    run_multi_tenant,
    run_serving,
    trace_report,
    validate_trace,
)

DATASET = "IB"
FAST = dict(dataset=DATASET, num_requests=96, seed=0)
FC = FleetConfig(num_chips=2, batch_policy="continuous", cache_size=512)


def _traced_pair(**kwargs):
    observe = Instrumentation()
    traced = run_serving(observe=observe, **kwargs)
    untraced = run_serving(**kwargs)
    return observe, traced, untraced


# --------------------------------------------------------------------------- #
# Observation never perturbs the simulation
# --------------------------------------------------------------------------- #
class TestNonPerturbation:
    def test_traced_equals_untraced(self):
        _, traced, untraced = _traced_pair(config=FC, **FAST)
        assert traced.to_dict() == untraced.to_dict()

    def test_traced_equals_untraced_with_control_plane(self):
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=4, admission=True, degrade=True)
        config = FleetConfig(num_chips=1, cache_size=0)
        kwargs = dict(dataset=DATASET, num_requests=128, arrival="ramp",
                      peak_factor=6.0, utilization_target=2.0,
                      config=config, control=control, seed=0)
        _, traced, untraced = _traced_pair(**kwargs)
        assert traced.to_dict() == untraced.to_dict()

    def test_traced_equals_untraced_multi_tenant(self):
        tenants = [
            TenantConfig(name="a", dataset=DATASET, num_requests=48,
                         weight=2.0, seed=0),
            TenantConfig(name="b", dataset=DATASET, num_requests=48,
                         weight=1.0, seed=1),
        ]
        fleet = FleetConfig(num_chips=2)
        observe = Instrumentation()
        traced = run_multi_tenant(tenants, fleet, observe=observe,
                                  include_isolation_baseline=False)
        untraced = run_multi_tenant(tenants, fleet,
                                    include_isolation_baseline=False)
        assert traced.to_dict() == untraced.to_dict()
        tids = [e["tid"] for e in observe.events
                if e.get("cat") == "request" and e.get("ph") == "X"]
        assert len(set(tids)) == 96  # globally unique request ids

    def test_metrics_scrapes_leave_report_unchanged(self):
        observe = Instrumentation(trace=False, metrics=True,
                                  metrics_interval_s=1e-6)
        traced = run_serving(observe=observe, config=FC, **FAST)
        untraced = run_serving(config=FC, **FAST)
        assert traced.to_dict() == untraced.to_dict()
        assert len(observe.samples) >= 2


# --------------------------------------------------------------------------- #
# Span accounting
# --------------------------------------------------------------------------- #
class TestSpans:
    @pytest.fixture(scope="class")
    def run(self):
        observe = Instrumentation()
        report = run_serving(observe=observe, config=FC, **FAST)
        return observe, report

    def test_trace_validates(self, run):
        observe, _ = run
        assert validate_trace(observe.events) == []

    def test_spans_tile_each_request_latency(self, run):
        observe, report = run
        spans = {}
        for event in observe.events:
            if event.get("cat") == "request" and event["ph"] == "X":
                spans.setdefault(event["tid"], []).append(event)
        for record in report.records:
            phases = spans[record.request_id]
            total = sum(e["dur"] for e in phases) / 1e6
            latency = record.completion_time_s - record.arrival_time_s
            assert total == pytest.approx(latency, abs=1e-12)
            # spans are contiguous: each starts where the previous ended
            phases = sorted(phases, key=lambda e: e["ts"])
            for prev, nxt in zip(phases, phases[1:]):
                assert prev["ts"] + prev["dur"] == pytest.approx(
                    nxt["ts"], abs=1e-6)

    def test_cache_hits_get_a_cache_span(self):
        observe = Instrumentation()
        report = run_serving(observe=observe, config=FC, dataset=DATASET,
                             num_requests=256, popularity_skew=1.2, seed=0)
        hits = {r.request_id for r in report.records if r.cache_hit}
        assert hits  # the skewed stream produces repeats
        cache_spans = {e["tid"] for e in observe.events
                       if e.get("cat") == "request" and e["ph"] == "X"
                       and e["name"] == "cache"}
        assert cache_spans == hits

    def test_batch_spans_carry_cycle_breakdown(self, run):
        observe, _ = run
        batch_spans = [e for e in observe.events
                       if e.get("cat") == "batch" and e["ph"] == "X"]
        assert batch_spans
        for event in batch_spans:
            args = event["args"]
            assert args["total_cycles"] > 0
            assert args["aggregation_cycles"] > 0
            assert args["combination_cycles"] > 0
            assert args["dram_busy_cycles"] >= 0

    def test_late_joins_emit_instants(self):
        observe = Instrumentation()
        report = run_serving(observe=observe, config=FC, **FAST)
        joins = [e for e in observe.events
                 if e["ph"] == "i" and e["name"].startswith("late join")]
        assert len(joins) == report.batching.late_joins

    def test_scale_and_shed_hooks_fire(self):
        # 1.5x one-chip capacity on a ramp: the threshold scaler must grow
        # the fleet and the token bucket must shed (cf. test_control.py)
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=6, admission=True)
        config = FleetConfig(num_chips=1, num_hops=1, fanout=4,
                             max_batch_size=16, cache_size=0,
                             reuse_discount=0.0)
        observe = Instrumentation()
        report = run_serving(observe=observe, dataset=DATASET,
                             num_requests=300, arrival="ramp",
                             peak_factor=6.0, utilization_target=1.5,
                             config=config, control=control, seed=0)
        instants = [e["name"] for e in observe.events if e["ph"] == "i"]
        scale = [n for n in instants if n.startswith("scale:")]
        shed = [n for n in instants if n == "shed"]
        assert len(scale) == len(report.control.timeline)
        assert len(shed) == report.control.admission[""].shed
        assert scale and shed

    def test_validate_trace_flags_broken_events(self):
        events = [{"ph": "X", "name": "ok", "ts": 0.0, "dur": -1.0,
                   "pid": 0, "tid": 0},
                  {"ph": "Z", "name": "bogus phase"},
                  {"name": "no phase at all"}]
        problems = validate_trace(events)
        assert len(problems) == 3


# --------------------------------------------------------------------------- #
# Metrics registry units
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("repro_total").inc()
        reg.counter("repro_total").inc(2.0)
        reg.gauge("repro_depth").set(7.0)
        values = {m.name: m.value for m in reg.collect()}
        assert values["repro_total"] == 3.0
        assert values["repro_depth"] == 7.0
        with pytest.raises(ValueError):
            reg.counter("repro_total").inc(-1.0)

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        reg.counter("repro_x", labels={"shape": "a"}).inc()
        reg.counter("repro_x", labels={"shape": "b"}).inc(4.0)
        series = {m.labels: m.value for m in reg.collect()}
        assert series[(("shape", "a"),)] == 1.0
        assert series[(("shape", "b"),)] == 4.0

    def test_histogram_buckets_and_prometheus_text(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(5.55)
        text = reg.to_prometheus()
        assert '# TYPE repro_lat_seconds histogram' in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert 'repro_lat_seconds_count 3' in text

    def test_scrape_rows_snapshot_the_clock(self):
        reg = MetricsRegistry()
        reg.counter("repro_c").inc()
        row = reg.scrape_row(0.5)
        assert row["t_s"] == 0.5
        assert row["metrics"]["repro_c"] == 1.0


# --------------------------------------------------------------------------- #
# CLI and files
# --------------------------------------------------------------------------- #
SERVE_FAST = ["serve", "--dataset", "IB", "--model", "gcn",
              "--requests", "64", "--chips", "2"]


class TestObservabilityCLI:
    def test_trace_out_then_trace_report(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(SERVE_FAST + ["--trace-out", str(trace)]) == 0
        assert "wrote trace:" in capsys.readouterr().out
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        assert main(["trace-report", str(trace), "--top-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "trace report: 64 requests" in out
        assert "p50_us" in out
        assert "top 2 slowest requests:" in out

    def test_metrics_out_writes_jsonl_and_prom(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        assert main(SERVE_FAST + ["--metrics-out", str(metrics),
                                  "--metrics-interval-ms", "0.001"]) == 0
        assert "wrote metrics:" in capsys.readouterr().out
        rows = [json.loads(line) for line in
                metrics.read_text().splitlines()]
        assert len(rows) >= 2
        assert all("t_s" in row and "metrics" in row for row in rows)
        prom = (tmp_path / "m.prom").read_text()
        assert "# TYPE repro_requests_completed_total counter" in prom

    def test_metrics_interval_requires_metrics_out(self, capsys):
        code = main(SERVE_FAST + ["--metrics-interval-ms", "5"])
        assert code == 2
        assert "--metrics-out" in capsys.readouterr().err

    def test_trace_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"ph": "Z"}]))
        assert main(["trace-report", str(bad)]) == 2
        assert "invalid trace event" in capsys.readouterr().err
        assert main(["trace-report", str(tmp_path / "missing.json")]) == 2

    def test_format_trace_report_round_trips_written_trace(self, tmp_path):
        observe = Instrumentation()
        run_serving(observe=observe, config=FC, **FAST)
        path = tmp_path / "t.json"
        observe.write_trace(str(path))
        events = load_trace(str(path))
        text = format_trace_report(trace_report(events))
        assert "trace report: 96 requests" in text


def test_traced_serving_example_runs(tmp_path, capsys):
    path = Path(__file__).resolve().parent.parent.parent \
        / "examples" / "traced_serving.py"
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    module.main(num_requests=96, out_dir=str(tmp_path))
    out = capsys.readouterr().out
    assert "trace report: 96 requests" in out
    assert "traced run identical to untraced run: True" in out
    assert (tmp_path / "serve_trace.json").exists()
    assert (tmp_path / "serve_metrics.jsonl").exists()
    assert (tmp_path / "serve_metrics.prom").exists()
