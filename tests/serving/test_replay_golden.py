"""Golden replay fixtures: a committed request trace must keep replaying
to a committed report.

``test_trace.py`` proves capture -> replay round-trips *within one
build*; this pins the contract *across* builds: the binary trace file
committed under ``tests/serving/fixtures/`` (format version
:data:`~repro.serving.trace.TRACE_VERSION`) must stay loadable, and
replaying it must keep producing bit-for-bit the committed report JSON.
Any change to the codec, the replay path, or the simulator hot path that
shifts either fails here explicitly.

When a change *intentionally* alters the numbers, regenerate with::

    PYTHONPATH=src python tests/serving/test_replay_golden.py

and commit both fixture diffs alongside the change that explains them.
"""

import json
import os

from repro.graphs import load_dataset
from repro.models.model_zoo import clear_workloads_cache
from repro.serving.fleet import FleetConfig, clear_probe_cache, run_serving
from repro.serving.trace import TraceWriter, load_request_trace

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
TRACE_FIXTURE = os.path.join(FIXTURE_DIR, "request_trace_ib_seed7.bin")
REPORT_FIXTURE = os.path.join(FIXTURE_DIR, "replay_report_ib_seed7.json")

DATASET = "IB"
NUM_REQUESTS = 64
RATE_RPS = 40.0
SEED = 7
CONFIG = dict(num_chips=2, cache_size=64)


def _clear_caches():
    clear_probe_cache()
    clear_workloads_cache()
    load_dataset.cache_clear()


def _replay_committed_trace():
    """Replay the committed trace -> report JSON (the regression payload)."""
    _clear_caches()
    report = run_serving(dataset=DATASET, config=FleetConfig(**CONFIG),
                         seed=SEED,
                         replay=load_request_trace(TRACE_FIXTURE))
    return json.dumps(report.to_dict(), sort_keys=True, indent=2,
                      default=float)


def test_committed_trace_replays_to_golden_report():
    with open(REPORT_FIXTURE) as handle:
        expected = handle.read()
    assert _replay_committed_trace() == expected.rstrip("\n"), (
        "replaying the committed request trace diverged from the committed "
        "report; if the change is intentional, regenerate via "
        "`PYTHONPATH=src python tests/serving/test_replay_golden.py`"
    )


def test_committed_trace_metadata_is_stable():
    trace = load_request_trace(TRACE_FIXTURE)
    assert trace.num_requests == NUM_REQUESTS
    assert not trace.multi_tenant
    assert trace.meta["dataset"] == DATASET
    assert trace.meta["seed"] == SEED
    assert trace.meta["rate_rps"] == RATE_RPS


def test_recapture_reproduces_committed_trace_bytes():
    """The capture path itself is pinned: re-running the original capturing
    configuration writes byte-for-byte the committed trace file."""
    capture = TraceWriter()
    _clear_caches()
    run_serving(dataset=DATASET, num_requests=NUM_REQUESTS,
                rate_rps=RATE_RPS, config=FleetConfig(**CONFIG), seed=SEED,
                capture=capture)
    rebuilt = os.path.join(FIXTURE_DIR, "_rebuilt.bin")
    try:
        capture.write(rebuilt)
        with open(TRACE_FIXTURE, "rb") as a, open(rebuilt, "rb") as b:
            assert a.read() == b.read(), (
                "the capture path no longer reproduces the committed trace; "
                "if the change is intentional, regenerate via "
                "`PYTHONPATH=src python tests/serving/test_replay_golden.py`"
            )
    finally:
        if os.path.exists(rebuilt):
            os.remove(rebuilt)


if __name__ == "__main__":
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    capture = TraceWriter()
    _clear_caches()
    run_serving(dataset=DATASET, num_requests=NUM_REQUESTS,
                rate_rps=RATE_RPS, config=FleetConfig(**CONFIG), seed=SEED,
                capture=capture)
    capture.write(TRACE_FIXTURE)
    print(f"wrote {TRACE_FIXTURE} ({os.path.getsize(TRACE_FIXTURE)} bytes)")
    report_json = _replay_committed_trace()
    with open(REPORT_FIXTURE, "w") as handle:
        handle.write(report_json + "\n")
    print(f"wrote {REPORT_FIXTURE} ({len(report_json)} bytes)")
