"""Smoke tests for ``python -m repro serve`` and the serving example."""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.__main__ import main

SERVE_FAST = ["serve", "--dataset", "IB", "--model", "gcn",
              "--requests", "64", "--chips", "2"]


class TestServeCommand:
    def test_serve_prints_slo_report(self, capsys):
        assert main(SERVE_FAST) == 0
        out = capsys.readouterr().out
        for needle in ("p50_ms", "p95_ms", "p99_ms", "throughput_rps",
                       "per-chip utilization", "cache_hit_rate_pct",
                       "slo_violation", "utilization_pct"):
            assert needle in out

    def test_serve_accepts_lowercase_dataset_and_model(self, capsys):
        assert main(["serve", "--dataset", "ib", "--model", "gcn",
                     "--requests", "32", "--chips", "2"]) == 0
        assert "GCN on IB" in capsys.readouterr().out

    def test_dispatch_policies_report_different_utilization(self, capsys):
        outputs = {}
        for dispatch in ("round-robin", "least-loaded"):
            assert main(SERVE_FAST + ["--dispatch", dispatch,
                                      "--requests", "128"]) == 0
            out = capsys.readouterr().out
            table = out.split("per-chip utilization")[1].split("traffic summary")[0]
            outputs[dispatch] = table
        assert outputs["round-robin"] != outputs["least-loaded"]

    def test_batch_policies_selectable(self, capsys):
        for policy in ("size", "timeout", "slo"):
            assert main(SERVE_FAST + ["--batch-policy", policy]) == 0
            assert policy in capsys.readouterr().out

    def test_trace_replay_from_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("".join(f"{i * 1e-5}\n" for i in range(64)))
        assert main(SERVE_FAST + ["--arrival", "trace",
                                  "--trace-file", str(trace)]) == 0
        assert "throughput_rps" in capsys.readouterr().out

    def test_trace_without_file_fails(self, capsys):
        assert main(SERVE_FAST + ["--arrival", "trace"]) == 2
        assert "--trace-file" in capsys.readouterr().err

    def test_shape_mix_serve_prints_shape_tables(self, capsys):
        assert main(SERVE_FAST + ["--shape-mix", "mixed",
                                  "--dispatch", "shape-aware"]) == 0
        out = capsys.readouterr().out
        for needle in ("per-shape utilization", "shape-aware dispatch",
                       "agg_heavy", "comb_heavy", "misdispatch_ms"):
            assert needle in out

    def test_fleet_spec_file_overrides_chips(self, tmp_path, capsys):
        spec = tmp_path / "fleet.json"
        spec.write_text('{"shapes": [{"preset": "balanced", "count": 3}]}')
        assert main(SERVE_FAST + ["--fleet-spec", str(spec)]) == 0
        assert "3 chips" in capsys.readouterr().out

    def test_fleet_spec_and_shape_mix_conflict(self, tmp_path, capsys):
        spec = tmp_path / "fleet.json"
        spec.write_text('{"shapes": [{"preset": "balanced"}]}')
        assert main(SERVE_FAST + ["--fleet-spec", str(spec),
                                  "--shape-mix", "mixed"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_broken_fleet_spec_is_actionable(self, tmp_path, capsys):
        spec = tmp_path / "fleet.json"
        spec.write_text('{"shapes": [{"preset": "agg_hevy"}]}')
        assert main(SERVE_FAST + ["--fleet-spec", str(spec)]) == 2
        assert "agg_heavy" in capsys.readouterr().err

    def test_scale_shape_without_arming_flag_errors(self, capsys):
        assert main(SERVE_FAST + ["--scale-shape", "bottleneck-phase"]) == 2
        assert "--scale-shape" in capsys.readouterr().err

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(SERVE_FAST + ["--dispatch", "random"])


def test_online_serving_example_runs(capsys):
    path = Path(__file__).resolve().parent.parent.parent \
        / "examples" / "online_serving.py"
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    module.main(num_requests=96)
    out = capsys.readouterr().out
    assert "dispatch-policy comparison" in out
    assert "result-cache effect" in out
