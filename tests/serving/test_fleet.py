"""Fleet event loop: conservation, dispatch policies, caching, SLO stats."""

import pytest

from repro.graphs import load_dataset
from repro.models import build_model
from repro.serving import (
    FleetConfig,
    RequestGenerator,
    ServingSimulator,
    WorkloadConfig,
    run_serving,
)

NUM_REQUESTS = 200


@pytest.fixture(scope="module")
def graph():
    return load_dataset("IB", seed=0)


@pytest.fixture(scope="module")
def model(graph):
    return build_model("GCN", input_length=graph.feature_length)


def _serve(graph, model, num_requests=NUM_REQUESTS, rate_rps=2e6, **overrides):
    config = FleetConfig(**overrides)
    simulator = ServingSimulator(graph, model, config, dataset_name="IB")
    workload = WorkloadConfig(num_requests=num_requests, rate_rps=rate_rps, seed=0)
    requests = RequestGenerator(graph.num_vertices, workload).generate()
    return simulator.run(requests, rate_rps=rate_rps)


class TestConservation:
    @pytest.mark.parametrize("dispatch", ["round-robin", "least-loaded", "locality"])
    @pytest.mark.parametrize("batch_policy", ["size", "timeout", "slo"])
    def test_every_request_completes_exactly_once(self, graph, model,
                                                  dispatch, batch_policy):
        report = _serve(graph, model, dispatch=dispatch, batch_policy=batch_policy,
                        num_requests=64)
        assert report.completed == 64
        assert len({r.request_id for r in report.records}) == 64
        served = sum(c.requests_served for c in report.chips)
        cache_hits = sum(1 for r in report.records if r.cache_hit)
        assert served + cache_hits == 64

    def test_latencies_are_causal(self, graph, model):
        report = _serve(graph, model)
        for record in report.records:
            assert record.completion_time_s >= record.service_start_s \
                >= record.dispatch_time_s >= record.arrival_time_s


class TestDispatchPolicies:
    def test_round_robin_spreads_batches_evenly(self, graph, model):
        report = _serve(graph, model, dispatch="round-robin", num_chips=4)
        batches = [c.batches_served for c in report.chips]
        assert max(batches) - min(batches) <= 1

    def test_policies_produce_different_load_profiles(self, graph, model):
        splits = {}
        for dispatch in ("round-robin", "least-loaded", "locality"):
            report = _serve(graph, model, dispatch=dispatch, num_chips=4)
            splits[dispatch] = tuple(c.requests_served for c in report.chips)
        assert len(set(splits.values())) >= 2

    def test_utilization_bounded(self, graph, model):
        report = _serve(graph, model)
        span = report.makespan_s
        assert span > 0
        for chip in report.chips:
            assert 0.0 <= chip.utilization(span) <= 1.0


class TestResultCache:
    def test_cache_short_circuits_repeat_requests(self, graph, model):
        cached = _serve(graph, model, cache_size=4096)
        hits = [r for r in cached.records if r.cache_hit]
        assert cached.cache.hit_rate > 0
        assert len(hits) == cached.cache.hits
        # cache hits complete at (near) zero latency
        assert all(r.latency_s <= 1e-5 for r in hits)

    def test_disabled_cache_never_hits(self, graph, model):
        report = _serve(graph, model, cache_size=0)
        assert report.cache.hit_rate == 0.0
        assert all(not r.cache_hit for r in report.records)

    def test_cache_reduces_chip_work(self, graph, model):
        cached = _serve(graph, model, cache_size=4096)
        uncached = _serve(graph, model, cache_size=0)
        assert sum(c.requests_served for c in cached.chips) \
            < sum(c.requests_served for c in uncached.chips)


class TestReporting:
    def test_percentiles_ordered_and_slo_consistent(self, graph, model):
        report = _serve(graph, model)
        assert report.p50_latency_s <= report.p95_latency_s <= report.p99_latency_s \
            <= report.max_latency_s
        violations = sum(1 for lat in report.latencies_s if lat > report.slo_s)
        assert violations == report.slo_violations

    def test_summary_has_required_fields(self, graph, model):
        summary = _serve(graph, model).summary()
        for field in ("p50_ms", "p95_ms", "p99_ms", "throughput_rps",
                      "slo_violation_pct", "cache_hit_rate_pct"):
            assert field in summary

    def test_empty_request_stream(self, graph, model):
        simulator = ServingSimulator(graph, model, FleetConfig())
        report = simulator.run([])
        assert report.completed == 0
        assert report.throughput_rps == 0.0
        assert report.makespan_s == 0.0


class TestRunServing:
    def test_end_to_end_with_calibrated_rate(self):
        report = run_serving(dataset="IB", model_name="GCN", num_requests=128,
                             config=FleetConfig(num_chips=2), seed=0)
        assert report.completed == 128
        assert report.rate_rps > 0
        assert report.throughput_rps > 0

    def test_deterministic_under_seed(self):
        a = run_serving(dataset="IB", model_name="GCN", num_requests=64, seed=0)
        b = run_serving(dataset="IB", model_name="GCN", num_requests=64, seed=0)
        assert a.summary() == b.summary()

    def test_invalid_fleet_configs_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(num_chips=0)
        with pytest.raises(ValueError):
            FleetConfig(dispatch="random")
        with pytest.raises(ValueError):
            FleetConfig(batch_policy="bogus")
        with pytest.raises(ValueError):
            FleetConfig(reuse_discount=1.5)
        with pytest.raises(ValueError):
            FleetConfig(slo_s=-1.0)
