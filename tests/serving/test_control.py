"""Tests for the elastic control plane: autoscaling, admission, degradation.

The end-to-end assertions mirror the acceptance criteria of the subsystem:
under a burst-ramp workload the threshold autoscaler beats a fixed
``min_chips`` fleet on SLO violations while holding fewer chip-seconds than a
fixed ``max_chips`` fleet; admission control keeps the p99 of *admitted*
requests inside the SLO at 2x overload; and every elastic run is
deterministic under a fixed seed.
"""

import dataclasses

import pytest

from repro.graphs.datasets import load_dataset
from repro.models.model_zoo import build_model
from repro.serving import (
    ControlConfig,
    ControlObservation,
    EWMAPolicy,
    FleetConfig,
    PIDPolicy,
    ServingSimulator,
    ThresholdPolicy,
    TokenBucket,
    build_autoscale_policy,
    clear_probe_cache,
    default_degradation_ladder,
    ramp_arrival_times,
    run_serving,
)
from repro.serving import fleet as fleet_module
from repro.serving.workload import WorkloadConfig

#: A small, cache-free fleet so offered load translates directly into queueing.
FC = FleetConfig(num_chips=1, num_hops=1, fanout=4, max_batch_size=16,
                 cache_size=0, reuse_discount=0.0)
DATASET = "IB"
NUM_REQUESTS = 800


def _observation(**overrides):
    base = dict(now_s=1.0, interval_s=0.1, active_chips=2, warming_chips=0,
                draining_chips=0, queue_depth=10, backlog_cost_s=0.0,
                arrivals=50, completions=40, violations=0, shed=0,
                utilization=0.5, cost_per_request_s=1e-3, slo_s=1.0)
    base.update(overrides)
    return ControlObservation(**base)


@pytest.fixture(scope="module")
def one_chip_rate():
    """1.5x the 1-chip capacity -- shared by every fleet size under test."""
    graph = load_dataset(DATASET, seed=0)
    model = build_model("GCN", input_length=graph.feature_length)
    sim = ServingSimulator(graph, model, FC, dataset_name=DATASET)
    return sim.calibrate_rate(1.5)


def elastic_run(rate, control=None, num_chips=1, arrival="ramp", seed=0):
    config = dataclasses.replace(FC, num_chips=num_chips)
    return run_serving(dataset=DATASET, num_requests=NUM_REQUESTS,
                       rate_rps=rate, arrival=arrival, peak_factor=6.0,
                       config=config, control=control, seed=seed)


# --------------------------------------------------------------------------- #
# Policy units (no simulation)
# --------------------------------------------------------------------------- #
class TestThresholdPolicy:
    def test_scales_up_after_patience(self):
        policy = ThresholdPolicy(up_delay_fraction=0.5, patience=2)
        hot = _observation(backlog_cost_s=2.0, active_chips=2)  # delay 1.0
        assert policy.desired_chips(hot, 2) == 2   # first strike
        assert policy.desired_chips(hot, 2) == 3   # second strike fires

    def test_scales_down_only_when_idle_and_cool(self):
        policy = ThresholdPolicy(down_delay_fraction=0.1,
                                 down_utilization=0.6, patience=1)
        cool_busy = _observation(backlog_cost_s=0.0, utilization=0.9)
        assert policy.desired_chips(cool_busy, 3) == 3  # busy: no scale-down
        cool_idle = _observation(backlog_cost_s=0.0, utilization=0.2)
        assert policy.desired_chips(cool_idle, 3) == 2

    def test_dead_band_resets_counters(self):
        policy = ThresholdPolicy(patience=2)
        hot = _observation(backlog_cost_s=2.0, active_chips=2)
        mid = _observation(backlog_cost_s=0.6, active_chips=2,
                           utilization=0.9)  # delay 0.3: inside the band
        assert policy.desired_chips(hot, 2) == 2
        assert policy.desired_chips(mid, 2) == 2   # resets the streak
        assert policy.desired_chips(hot, 2) == 2   # needs two again
        assert policy.desired_chips(hot, 2) == 3

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(up_delay_fraction=0.1, down_delay_fraction=0.5)
        with pytest.raises(ValueError):
            ThresholdPolicy(patience=0)


class TestPIDPolicy:
    def test_positive_error_scales_up(self):
        policy = PIDPolicy(setpoint_fraction=0.25, kp=2.0, ki=0.0, kd=0.0)
        hot = _observation(backlog_cost_s=2.0, active_chips=2)  # delay frac 1.0
        assert policy.desired_chips(hot, 2) > 2

    def test_step_is_clamped(self):
        policy = PIDPolicy(kp=100.0, max_step=2)
        hot = _observation(backlog_cost_s=10.0, active_chips=1)
        assert policy.desired_chips(hot, 4) == 6

    def test_integral_windup_is_clamped(self):
        policy = PIDPolicy(kp=0.0, ki=1.0, kd=0.0, integral_limit=2.0,
                           max_step=10)
        hot = _observation(backlog_cost_s=10.0, active_chips=1)
        for _ in range(50):
            policy.desired_chips(hot, 4)
        # integral is capped, so the delta stays bounded at ki * limit
        assert policy.desired_chips(hot, 4) <= 4 + 2


class TestEWMAPolicy:
    def test_sizes_fleet_to_predicted_demand(self):
        policy = EWMAPolicy(alpha=1.0, target_utilization=0.5)
        obs = _observation(arrivals=100, interval_s=0.1,
                           cost_per_request_s=1e-3)  # 1000 rps * 1ms = 1 chip
        assert policy.desired_chips(obs, 1) == 2  # 1 chip-load / 0.5 target

    def test_smooths_rate_spikes(self):
        policy = EWMAPolicy(alpha=0.1, target_utilization=1.0)
        calm = _observation(arrivals=10, interval_s=0.1,
                            cost_per_request_s=1e-3)
        policy.desired_chips(calm, 1)
        spike = _observation(arrivals=10_000, interval_s=0.1,
                             cost_per_request_s=1e-3)
        # one spiky interval moves the EWMA only 10% of the way
        assert policy.desired_chips(spike, 1) <= 11


class TestPolicyFactory:
    def test_builds_each_registered_policy(self):
        for name in ("threshold", "pid", "ewma"):
            assert build_autoscale_policy(name).name == name

    def test_params_override_defaults(self):
        policy = build_autoscale_policy("threshold", {"patience": 5})
        assert policy.patience == 5

    def test_unknown_name_and_params_fail_loudly(self):
        with pytest.raises(ValueError, match="unknown autoscale policy"):
            build_autoscale_policy("magic")
        with pytest.raises(ValueError, match="bad parameters"):
            build_autoscale_policy("pid", {"warp": 9})


class TestControlConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControlConfig(autoscale="nope")
        with pytest.raises(ValueError):
            ControlConfig(min_chips=0)
        with pytest.raises(ValueError):
            ControlConfig(min_chips=4, max_chips=2)
        with pytest.raises(ValueError):
            ControlConfig(control_interval_s=0.0)
        with pytest.raises(ValueError):
            ControlConfig(admission_rate_rps=-1.0)

    def test_active_only_when_a_lever_is_armed(self):
        assert not ControlConfig().active
        assert ControlConfig(autoscale="threshold").active
        assert ControlConfig(admission=True).active
        assert ControlConfig(degrade=True).active


class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        bucket = TokenBucket(rate_rps=10.0, burst=2)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)       # burst exhausted
        assert bucket.try_acquire(0.1)           # 0.1s * 10rps = 1 token
        assert not bucket.try_acquire(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_rps=100.0, burst=2)
        bucket.try_acquire(0.0)
        for _ in range(2):                       # long idle only banks 2
            assert bucket.try_acquire(100.0)
        assert not bucket.try_acquire(100.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_rps=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_rps=1.0, burst=0.5)


class TestDegradationLadder:
    def test_rungs_get_monotonically_cheaper(self):
        ladder = default_degradation_ladder(num_hops=2, fanout=8,
                                            max_levels=3)
        assert [r.level for r in ladder] == [1, 2, 3]
        scales = [r.cost_scale for r in ladder]
        assert all(0 < s < 1 for s in scales)
        assert scales == sorted(scales, reverse=True)

    def test_fanout_halves_before_hops_drop(self):
        ladder = default_degradation_ladder(num_hops=2, fanout=2,
                                            max_levels=3)
        assert (ladder[0].num_hops, ladder[0].fanout) == (2, 1)
        assert (ladder[1].num_hops, ladder[1].fanout) == (1, 1)

    def test_nothing_cheaper_means_no_rungs(self):
        assert default_degradation_ladder(num_hops=1, fanout=1) == []


# --------------------------------------------------------------------------- #
# Burst-ramp workload
# --------------------------------------------------------------------------- #
class TestRampWorkload:
    def test_mean_rate_matches_and_peak_is_hotter(self):
        times = ramp_arrival_times(4000, rate_rps=1000.0, seed=0,
                                   peak_factor=6.0)
        mean_rate = (len(times) - 1) / (times[-1] - times[0])
        assert mean_rate == pytest.approx(1000.0, rel=0.15)
        # arrivals concentrate inside the peak plateau (middle fifth)
        duration = 4.0  # expected: num / rate
        in_peak = ((times >= 0.4 * duration) & (times < 0.6 * duration)).sum()
        # the peak plateau holds peak_factor*p/mean_multiple = 37% of
        # arrivals in 20% of the time; assert well above the time share
        assert in_peak / len(times) > 1.5 * 0.2

    def test_deterministic_under_seed(self):
        a = ramp_arrival_times(500, 100.0, seed=7)
        b = ramp_arrival_times(500, 100.0, seed=7)
        assert (a == b).all()
        c = ramp_arrival_times(500, 100.0, seed=8)
        assert (a != c).any()

    def test_workload_config_validates_ramp_shape(self):
        with pytest.raises(ValueError):
            WorkloadConfig(arrival="ramp", peak_factor=0.5)
        with pytest.raises(ValueError):
            WorkloadConfig(arrival="ramp", ramp_fraction=0.4,
                           peak_fraction=0.4)


# --------------------------------------------------------------------------- #
# Autoscaling end-to-end (the acceptance criterion)
# --------------------------------------------------------------------------- #
class TestAutoscaling:
    def test_threshold_beats_fixed_min_on_slo_and_fixed_max_on_cost(
            self, one_chip_rate):
        fixed_min = elastic_run(one_chip_rate, num_chips=1)
        fixed_max = elastic_run(one_chip_rate, num_chips=6)
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=6)
        elastic = elastic_run(one_chip_rate, control=control)
        assert fixed_min.slo_violation_rate > 0.3   # the ramp really overloads
        assert fixed_max.slo_violation_rate < fixed_min.slo_violation_rate
        # the autoscaler materially closes the violation gap ...
        assert elastic.slo_violation_rate < 0.7 * fixed_min.slo_violation_rate
        # ... while paying for far fewer chip-seconds than fixed max
        assert elastic.control.chip_seconds_s < fixed_max.chip_seconds_s
        assert elastic.control.scale_ups >= 1
        assert elastic.control.scale_downs >= 1

    @pytest.mark.parametrize("policy", ["threshold", "pid", "ewma"])
    def test_every_policy_scales_up_the_ramp_and_back_down(
            self, policy, one_chip_rate):
        control = ControlConfig(autoscale=policy, min_chips=1, max_chips=6)
        report = elastic_run(one_chip_rate, control=control)
        stats = report.control
        assert stats.policy == policy
        assert stats.scale_ups >= 1
        assert stats.scale_downs >= 1
        assert stats.peak_chips > 1
        assert stats.final_chips <= stats.peak_chips
        # every request still completes exactly once (no admission armed)
        assert report.completed == NUM_REQUESTS
        assert len({r.request_id for r in report.records}) == NUM_REQUESTS

    def test_fleet_respects_min_max_band(self, one_chip_rate):
        control = ControlConfig(autoscale="pid", min_chips=2, max_chips=3)
        report = elastic_run(one_chip_rate, control=control, num_chips=1)
        sizes = [s.active + s.warming for s in report.control.samples]
        assert all(2 <= size <= 3 for size in sizes)
        assert report.control.initial_chips == 2  # clamped up from 1

    def test_warmup_chips_consume_time_but_serve_nothing(self, one_chip_rate):
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=6)
        report = elastic_run(one_chip_rate, control=control)
        stats = report.control
        assert stats.warmup_s > 0
        assert stats.warmup_chip_seconds_s > 0
        ready_s = {e.chip_id: e.time_s for e in stats.timeline
                   if e.action == "ready"}
        added_s = {e.chip_id: e.time_s for e in stats.timeline
                   if e.action == "add"}
        assert ready_s  # at least one chip warmed up
        for chip_id, t_ready in ready_s.items():
            assert t_ready == pytest.approx(added_s[chip_id] + stats.warmup_s)
            # nothing started on the chip before it was ready
            for record in report.records:
                if record.chip_id == chip_id:
                    assert record.service_start_s >= t_ready

    def test_drained_chips_finish_their_work_before_retiring(
            self, one_chip_rate):
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=6)
        report = elastic_run(one_chip_rate, control=control)
        retired_s = {e.chip_id: e.time_s for e in report.control.timeline
                     if e.action == "retire"}
        assert retired_s  # the ramp's descent retired at least one chip
        for record in report.records:
            if record.chip_id in retired_s:
                assert record.completion_time_s <= retired_s[record.chip_id]


# --------------------------------------------------------------------------- #
# Admission control and degradation end-to-end
# --------------------------------------------------------------------------- #
class TestAdmission:
    @pytest.fixture(scope="class")
    def overload(self):
        """2x-overload traffic against a fixed 2-chip fleet."""
        config = dataclasses.replace(FC, num_chips=2)
        graph = load_dataset(DATASET, seed=0)
        model = build_model("GCN", input_length=graph.feature_length)
        sim = ServingSimulator(graph, model, config, dataset_name=DATASET)
        rate = sim.calibrate_rate(2.0)
        return dict(dataset=DATASET, num_requests=NUM_REQUESTS,
                    rate_rps=rate, arrival="poisson", config=config, seed=0)

    def test_admission_keeps_admitted_p99_within_slo_at_2x(self, overload):
        baseline = run_serving(**overload)
        admitted = run_serving(control=ControlConfig(admission=True),
                               **overload)
        assert baseline.p99_latency_s > baseline.slo_s  # 2x really overloads
        assert admitted.p99_latency_s <= admitted.slo_s
        acct = admitted.control.admission[""]
        assert acct.shed > 0
        assert acct.admitted == admitted.completed
        assert acct.offered == acct.admitted + acct.shed

    def test_degradation_trades_sheds_for_degraded_answers(self, overload):
        # a generous explicit contract keeps the token bucket non-binding,
        # so the SLO-budget gate (the degradable one) does all the work
        generous = 4 * overload["rate_rps"]
        shed_only = run_serving(
            control=ControlConfig(admission=True,
                                  admission_rate_rps=generous), **overload)
        with_ladder = run_serving(
            control=ControlConfig(admission=True, admission_rate_rps=generous,
                                  degrade=True), **overload)
        a, b = shed_only.control.admission[""], \
            with_ladder.control.admission[""]
        assert b.degraded_total > 0
        assert b.shed < a.shed
        assert with_ladder.p99_latency_s <= with_ladder.slo_s
        # degraded records are tagged so the quality loss is reportable
        assert with_ladder.degraded_requests == b.degraded_total
        levels = {r.degrade_level for r in with_ladder.records}
        assert levels - {0}

    def test_degrade_only_mode_never_sheds(self, overload):
        report = run_serving(control=ControlConfig(degrade=True), **overload)
        acct = report.control.admission[""]
        assert acct.shed == 0
        assert report.completed == NUM_REQUESTS
        assert report.degraded_requests > 0

    def test_degraded_results_never_enter_the_result_cache(self, overload):
        spec = dict(overload)
        spec["config"] = dataclasses.replace(spec["config"], cache_size=4096)
        report = run_serving(control=ControlConfig(degrade=True), **spec)
        degraded_targets = {r.target_vertex for r in report.records
                            if r.degrade_level > 0}
        full = {r.target_vertex for r in report.records
                if r.degrade_level == 0 and not r.cache_hit}
        # a cache hit can only follow a full-fidelity completion
        for record in report.records:
            if record.cache_hit:
                assert record.target_vertex in full or \
                    record.target_vertex not in degraded_targets

    def test_token_bucket_polices_explicit_rate(self, overload):
        control = ControlConfig(admission=True,
                                admission_rate_rps=overload["rate_rps"] / 4,
                                admission_burst=8)
        report = run_serving(control=control, **overload)
        acct = report.control.admission[""]
        assert acct.shed_rate_limited > 0
        # roughly three quarters of the offered load is over the contract
        assert acct.shed_rate == pytest.approx(0.75, abs=0.15)


# --------------------------------------------------------------------------- #
# Determinism and bookkeeping
# --------------------------------------------------------------------------- #
class TestDeterminismAndAccounting:
    def test_elastic_runs_reproduce_bit_for_bit(self, one_chip_rate):
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=6, admission=True, degrade=True)
        first = elastic_run(one_chip_rate, control=control)
        second = elastic_run(one_chip_rate, control=control)
        assert [e.as_dict() for e in first.control.timeline] \
            == [e.as_dict() for e in second.control.timeline]
        assert [s.as_dict() for s in first.control.samples] \
            == [s.as_dict() for s in second.control.samples]
        assert [r.completion_time_s for r in first.records] \
            == [r.completion_time_s for r in second.records]
        assert first.control.chip_seconds_s == second.control.chip_seconds_s

    def test_chip_seconds_cover_every_provisioned_chip(self, one_chip_rate):
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=6)
        report = elastic_run(one_chip_rate, control=control)
        per_chip = [c.provisioned_s for c in report.chips]
        assert all(p is not None and p >= 0 for p in per_chip)
        assert sum(per_chip) == pytest.approx(report.control.chip_seconds_s)
        # an elastic fleet can never out-provision max_chips for the full span
        assert report.control.chip_seconds_s <= \
            6 * report.makespan_s * 1.001 + report.control.control_interval_s

    def test_timeline_text_renders_one_line_per_sample(self, one_chip_rate):
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=6)
        report = elastic_run(one_chip_rate, control=control)
        text = report.control.timeline_text()
        assert len(text.splitlines()) == len(report.control.samples)
        assert "#" in text


# --------------------------------------------------------------------------- #
# Multi-tenant elasticity
# --------------------------------------------------------------------------- #
class TestMultiTenantControl:
    def _tenants(self):
        from repro.serving import TenantConfig
        spec = dict(model="GCN", dataset=DATASET, num_requests=200,
                    num_hops=1, fanout=4, batch_policy="size",
                    max_batch_size=16, cache_size=0, arrival="ramp",
                    peak_factor=6.0)
        return [TenantConfig(name="a", weight=2.0, **spec),
                TenantConfig(name="b", weight=1.0, **spec)]

    def _run(self, control=None):
        from repro.serving import run_multi_tenant
        return run_multi_tenant(self._tenants(), FleetConfig(num_chips=1),
                                utilization_target=1.5,
                                include_isolation_baseline=False,
                                control=control)

    def test_shared_fleet_scales_and_reports_per_tenant_admission(self):
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=6, admission=True, degrade=True)
        report = self._run(control)
        stats = report.control
        assert stats is not None
        assert stats.scale_ups >= 1
        assert set(stats.admission) == {"a", "b"}
        for name in ("a", "b"):
            acct = stats.admission[name]
            assert acct.offered == 200
            assert acct.admitted == report.reports[name].completed
            # admitted traffic meets its SLO budget
            rep = report.reports[name]
            if rep.completed:
                assert rep.p99_latency_s <= rep.slo_s

    def test_elastic_multi_tenant_is_deterministic(self):
        control = ControlConfig(autoscale="threshold", min_chips=1,
                                max_chips=6, admission=True)
        first, second = self._run(control), self._run(control)
        assert [e.as_dict() for e in first.control.timeline] \
            == [e.as_dict() for e in second.control.timeline]
        for name in first.tenants:
            assert [r.completion_time_s for r in first.reports[name].records] \
                == [r.completion_time_s for r in second.reports[name].records]

    def test_fixed_runs_carry_no_control_block(self):
        report = self._run(control=None)
        assert report.control is None
        for name in report.tenants:
            assert report.reports[name].completed == 200


# --------------------------------------------------------------------------- #
# CLI flags and --json export
# --------------------------------------------------------------------------- #
class TestControlCLI:
    SERVE = ["serve", "--dataset", "IB", "--requests", "128", "--chips", "1",
             "--hops", "1", "--fanout", "4", "--cache-size", "0",
             "--arrival", "ramp", "--utilization", "1.5"]

    def test_autoscale_flags_print_control_tables(self, capsys):
        from repro.__main__ import main
        assert main(self.SERVE + ["--autoscale", "threshold",
                                  "--min-chips", "1",
                                  "--max-chips", "4"]) == 0
        out = capsys.readouterr().out
        for needle in ("control plane: summary", "scaling timeline",
                       "fleet-size timeline", "chip_seconds_ms"):
            assert needle in out

    def test_admission_and_degrade_flags(self, capsys):
        from repro.__main__ import main
        assert main(self.SERVE + ["--admission", "--degrade"]) == 0
        out = capsys.readouterr().out
        assert "admission / degradation" in out
        assert "shed_overload" in out

    def test_tuning_flags_without_arming_flag_fail_loudly(self, capsys):
        from repro.__main__ import main
        assert main(self.SERVE + ["--min-chips", "2", "--max-chips", "4"]) == 2
        err = capsys.readouterr().err
        assert "nothing arms it" in err

    def test_admission_only_keeps_the_configured_fleet_size(self):
        # admission/degrade without autoscaling must not clamp the fleet
        # into the (unused) autoscaler band
        config = dataclasses.replace(FC, num_chips=10)
        report = run_serving(dataset=DATASET, num_requests=64, config=config,
                             control=ControlConfig(admission=True), seed=0)
        assert report.num_chips == 10
        assert report.control.final_chips == 10
        assert report.control.timeline == []

    def test_json_to_file_round_trips(self, tmp_path, capsys):
        import json
        from repro.__main__ import main
        path = tmp_path / "report.json"
        assert main(self.SERVE + ["--autoscale", "ewma",
                                  "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "serving_report"
        assert payload["completed"] == 128
        assert payload["control"]["policy"] == "ewma"
        assert len(payload["records"]) == payload["completed"]
        # tables were still printed alongside the file
        assert "traffic summary" in capsys.readouterr().out

    def test_json_dash_replaces_tables_on_stdout(self, capsys):
        import json
        from repro.__main__ import main
        assert main(self.SERVE + ["--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # pure JSON, no tables mixed in
        assert payload["kind"] == "serving_report"
        assert payload["control"] is None

    def test_multi_tenant_json(self, tmp_path):
        import json
        from repro.__main__ import main
        spec = tmp_path / "tenants.json"
        spec.write_text(json.dumps({"tenants": [
            {"name": "a", "dataset": "IB", "num_requests": 64, "num_hops": 1,
             "fanout": 4, "max_batch_size": 16},
            {"name": "b", "dataset": "IB", "num_requests": 64, "num_hops": 1,
             "fanout": 4, "max_batch_size": 16},
        ]}))
        path = tmp_path / "mt.json"
        assert main(["serve", "--tenants", str(spec), "--chips", "2",
                     "--no-isolation", "--admission",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "multi_tenant_report"
        assert set(payload["reports"]) == {"a", "b"}
        assert set(payload["control"]["admission"]) == {"a", "b"}


# --------------------------------------------------------------------------- #
# Probe-service memoisation
# --------------------------------------------------------------------------- #
class TestProbeMemo:
    def test_probe_is_memoised_and_clearable(self):
        clear_probe_cache()
        assert len(fleet_module._PROBE_CACHE) == 0
        graph = load_dataset(DATASET, seed=0)
        model = build_model("GCN", input_length=graph.feature_length)
        sim = ServingSimulator(graph, model, FC, dataset_name=DATASET)
        first = sim.probe_service_time_s
        assert len(fleet_module._PROBE_CACHE) == 1
        # a fresh simulator with identical shape reuses the cached probe
        sim2 = ServingSimulator(graph, model, FC, dataset_name=DATASET)
        assert sim2.probe_service_time_s == first
        assert len(fleet_module._PROBE_CACHE) == 1
        # a different batch shape is a different key
        wide = dataclasses.replace(FC, max_batch_size=8)
        sim3 = ServingSimulator(graph, model, wide, dataset_name=DATASET)
        sim3.probe_service_time_s
        assert len(fleet_module._PROBE_CACHE) == 2
        clear_probe_cache()
        assert len(fleet_module._PROBE_CACHE) == 0
