"""k-hop subgraph extraction: structure, fan-out caps, determinism."""

import numpy as np
import pytest

from repro.graphs import Graph, load_dataset
from repro.serving import SubgraphSampler


@pytest.fixture(scope="module")
def graph():
    return load_dataset("IB", seed=0)


class TestSubgraphSampler:
    def test_target_is_local_vertex_zero(self, graph):
        sampler = SubgraphSampler(graph, num_hops=2, fanout=4)
        sample = sampler.extract(17)
        assert sample.target_vertex == 17
        assert sample.vertices[0] == 17
        assert sample.graph.num_vertices == len(sample.vertices)

    def test_fanout_caps_subgraph_in_degrees(self, graph):
        fanout = 3
        sampler = SubgraphSampler(graph, num_hops=2, fanout=fanout)
        sample = sampler.extract(0)
        in_degrees = sample.graph.csc.in_degrees()
        assert int(in_degrees.max()) <= fanout

    def test_size_bounded_by_fanout_expansion(self, graph):
        hops, fanout = 2, 4
        sampler = SubgraphSampler(graph, num_hops=hops, fanout=fanout)
        bound = sum(fanout ** h for h in range(hops + 1))  # 1 + f + f^2
        for target in (0, 5, 100):
            assert sampler.extract(target).num_vertices <= bound

    def test_features_sliced_from_base_graph(self, graph):
        sampler = SubgraphSampler(graph, num_hops=1, fanout=4)
        sample = sampler.extract(42)
        assert sample.graph.feature_length == graph.feature_length
        for local, global_id in enumerate(sample.vertices):
            assert np.array_equal(sample.graph.features[local],
                                  graph.features[global_id])

    def test_deterministic_per_target_regardless_of_order(self, graph):
        first = SubgraphSampler(graph, num_hops=2, fanout=4, seed=1)
        second = SubgraphSampler(graph, num_hops=2, fanout=4, seed=1)
        a = first.extract(9)
        second.extract(3)       # different extraction history
        b = second.extract(9)
        assert a.vertices == b.vertices
        assert a.graph.num_edges == b.graph.num_edges

    def test_different_seed_can_change_sampling(self, graph):
        # pick a hub so the fanout cap actually bites
        hub = int(np.argmax(graph.csc.in_degrees()))
        a = SubgraphSampler(graph, num_hops=1, fanout=2, seed=0).extract(hub)
        b = SubgraphSampler(graph, num_hops=1, fanout=2, seed=99).extract(hub)
        assert a.vertices != b.vertices

    def test_memoisation_returns_same_object(self, graph):
        sampler = SubgraphSampler(graph, num_hops=2, fanout=4)
        assert sampler.extract(7) is sampler.extract(7)

    def test_zero_hops_is_single_vertex(self, graph):
        sample = SubgraphSampler(graph, num_hops=0, fanout=4).extract(11)
        assert sample.num_vertices == 1
        assert sample.num_edges == 0

    def test_out_of_range_target_rejected(self, graph):
        sampler = SubgraphSampler(graph)
        with pytest.raises(ValueError):
            sampler.extract(graph.num_vertices)

    def test_invalid_parameters_rejected(self, graph):
        with pytest.raises(ValueError):
            SubgraphSampler(graph, num_hops=-1)
        with pytest.raises(ValueError):
            SubgraphSampler(graph, fanout=0)
