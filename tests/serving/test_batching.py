"""Batch formation: overlap signatures, grouping, continuous joins, budgets.

Covers the :mod:`repro.serving.batching` subsystem end to end -- signature
determinism, greedy overlap grouping (including the FIFO-degradation
contract on zero-overlap workloads), the continuous-join lifecycle with its
join-window and staleness budgets, the one-clock formation-timestamp
invariant, the fused-size WFQ cost model, and the simulation-level
acceptance criteria: on a skewed-popularity workload the ``overlap`` policy
beats ``fifo`` on both p99 latency and chip-seconds, and ``continuous``
never violates its budgets.
"""

import dataclasses

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.serving import (
    ALL_BATCH_POLICIES,
    BATCH_POLICIES,
    Batch,
    ContinuousBatcher,
    FIFOBatcher,
    FleetConfig,
    OverlapBatcher,
    Request,
    SIGNATURE_HASHES,
    SubgraphSampler,
    TimeoutBatcher,
    WFQScheduler,
    build_batch_policy,
    clear_probe_cache,
    estimate_jaccard,
    run_serving,
)
from repro.serving.control import ControlConfig, ControlPlane, TenantBinding
from repro.serving.fleet import ServingSimulator
from repro.graphs.datasets import load_dataset
from repro.models.model_zoo import build_model


def _req(i, t, target=None):
    return Request(request_id=i, target_vertex=target if target is not None
                   else i, arrival_time_s=t)


def _sig_fn(mapping):
    """Signature function from an explicit target -> vector mapping."""
    def signature(request):
        return np.asarray(mapping[request.target_vertex], dtype=np.uint64)
    return signature


def _distinct_sigs(num, length=SIGNATURE_HASHES):
    """Pairwise fully-distinct signatures for targets 0..num-1."""
    return {v: np.full(length, 1000 + v, dtype=np.uint64)
            for v in range(num)}


def _cluster_graph():
    """Two 5-vertex star clusters joined to nothing: targets in the same
    cluster share their hub neighbourhood, across clusters nothing."""
    edges = []
    for hub, leaves in ((0, range(1, 5)), (5, range(6, 10))):
        for leaf in leaves:
            edges.append((hub, leaf))
    return Graph.from_edge_list(edges, num_vertices=10, feature_length=4,
                                undirected=True, name="clusters")


# --------------------------------------------------------------------------- #
# Signatures
# --------------------------------------------------------------------------- #
class TestSignatures:
    def test_deterministic_across_samplers(self):
        graph = _cluster_graph()
        a = SubgraphSampler(graph, num_hops=1, fanout=8, seed=3)
        b = SubgraphSampler(graph, num_hops=1, fanout=8, seed=3)
        assert np.array_equal(a.signature(1), b.signature(1))

    def test_identical_targets_identical_signatures(self):
        sampler = SubgraphSampler(_cluster_graph(), num_hops=1, fanout=8)
        assert estimate_jaccard(sampler.signature(2),
                                sampler.signature(2)) == 1.0

    def test_same_cluster_overlaps_more_than_cross_cluster(self):
        sampler = SubgraphSampler(_cluster_graph(), num_hops=2, fanout=8)
        same = estimate_jaccard(sampler.signature(1), sampler.signature(2))
        cross = estimate_jaccard(sampler.signature(1), sampler.signature(6))
        assert same > cross

    def test_signature_is_read_only_and_sized(self):
        sampler = SubgraphSampler(_cluster_graph(), num_hops=1, fanout=8)
        sig = sampler.signature(0)
        assert sig.shape == (SIGNATURE_HASHES,)
        with pytest.raises(ValueError):
            sig[0] = 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_jaccard(np.zeros(4, dtype=np.uint64),
                             np.zeros(8, dtype=np.uint64))


# --------------------------------------------------------------------------- #
# Fused-size cost model and union fusion
# --------------------------------------------------------------------------- #
class TestFusion:
    def test_fused_size_dedups_shared_vertices(self):
        sampler = SubgraphSampler(_cluster_graph(), num_hops=1, fanout=8)
        # leaves 1 and 2 both sample hub 0: union is {1, 2, 0}
        fused, naive = sampler.fused_size([(1, None, None), (2, None, None)])
        assert fused == 3
        assert naive == 4

    def test_fused_size_counts_duplicate_requests_naively(self):
        sampler = SubgraphSampler(_cluster_graph(), num_hops=1, fanout=8)
        fused, naive = sampler.fused_size([(1, None, None), (1, None, None)])
        assert fused == 2        # the one sample's {1, 0}
        assert naive == 4        # both requests would stream it standalone

    def test_fuse_builds_the_union_graph(self):
        sampler = SubgraphSampler(_cluster_graph(), num_hops=1, fanout=8)
        samples = [sampler.extract(1), sampler.extract(2)]
        fused = sampler.fuse(samples)
        assert fused.num_vertices == 3
        # each 1-hop sample carries one in-edge (hub -> leaf); the shared
        # hub vertex is deduped but both leaves keep their own edge
        assert fused.num_edges == 2
        assert fused.memoize_workloads is False

    def test_fuse_disjoint_is_a_disjoint_union(self):
        sampler = SubgraphSampler(_cluster_graph(), num_hops=1, fanout=8)
        samples = [sampler.extract(1), sampler.extract(6)]
        fused = sampler.fuse(samples)
        assert fused.num_vertices == 4
        assert fused.num_edges == samples[0].num_edges + samples[1].num_edges


# --------------------------------------------------------------------------- #
# Overlap formation
# --------------------------------------------------------------------------- #
class TestOverlapBatcher:
    def _drive(self, batcher, num=12, spacing=0.1):
        """Feed an arrival stream, firing due timers; returns emitted batches."""
        emitted = []
        for i in range(num):
            t = spacing * i
            while True:        # fire every deadline that passed before t
                deadline = batcher.next_deadline(t)
                if deadline is None or deadline > t:
                    break
                batch = batcher.flush_due(deadline)
                if batch is not None:
                    emitted.append(batch)
            assert batcher.try_join(_req(i, t), t) is None
            batch = batcher.add(_req(i, t), t)
            if batch is not None:
                emitted.append(batch)
        emitted.extend(batcher.drain(spacing * num))
        return emitted

    def test_zero_overlap_degrades_to_fifo_grouping(self):
        """Disjoint signatures: overlap selects in arrival order, so batch
        *membership* is exactly FIFO's (formation under cap-driven load
        waits on the larger formation pool, so only timing may differ)."""
        sigs = _distinct_sigs(40)
        fifo = self._drive(FIFOBatcher(max_batch_size=4, timeout_s=0.5))
        over = self._drive(OverlapBatcher(max_batch_size=4, timeout_s=0.5,
                                          signature_fn=_sig_fn(sigs)))
        assert [[r.request_id for r in b.requests] for b in fifo] \
            == [[r.request_id for r in b.requests] for b in over]

    def test_zero_overlap_timeout_driven_is_bitwise_fifo(self):
        """When the timeout (not a size cap) drives formation, a disjoint
        workload gets byte-identical batches -- membership and clocks."""
        sigs = _distinct_sigs(40)
        fifo = self._drive(FIFOBatcher(max_batch_size=8, timeout_s=0.35))
        over = self._drive(OverlapBatcher(max_batch_size=8, timeout_s=0.35,
                                          signature_fn=_sig_fn(sigs)))
        assert len(fifo) > 1
        assert [[r.request_id for r in b.requests] for b in fifo] \
            == [[r.request_id for r in b.requests] for b in over]
        assert [b.created_time_s for b in fifo] \
            == [b.created_time_s for b in over]

    def test_groups_duplicates_ahead_of_arrival_order(self):
        sigs = _distinct_sigs(10)
        batcher = OverlapBatcher(max_batch_size=2, timeout_s=10.0,
                                 signature_fn=_sig_fn(sigs))
        # arrival order: 0, 1, 0-again; the group anchored on the first
        # request picks its duplicate over the earlier-arriving target 1
        batcher.add(_req(0, 0.0, target=0), 0.0)
        batcher.add(_req(1, 0.1, target=1), 0.1)
        batcher.add(_req(2, 0.2, target=0), 0.2)
        batch = batcher.flush(0.3)
        assert [r.request_id for r in batch.requests] == [0, 2]
        leftover = batcher.flush(0.4)
        assert [r.request_id for r in leftover.requests] == [1]

    def test_min_overlap_yields_single_request_batches_when_disjoint(self):
        sigs = _distinct_sigs(8)
        batcher = OverlapBatcher(max_batch_size=4, timeout_s=10.0,
                                 signature_fn=_sig_fn(sigs),
                                 min_overlap=0.5)
        for i in range(4):
            batcher.add(_req(i, 0.01 * i), 0.01 * i)
        batches = batcher.drain(1.0)
        assert [b.size for b in batches] == [1, 1, 1, 1]

    def test_pool_overflow_forces_a_flush(self):
        sigs = _distinct_sigs(64)
        batcher = OverlapBatcher(max_batch_size=2, timeout_s=10.0,
                                 signature_fn=_sig_fn(sigs), pool_factor=2)
        batches = []
        for i in range(9):
            batch = batcher.add(_req(i, 0.01 * i), 0.01 * i)
            if batch is not None:
                batches.append(batch)
        # pool cap is 4: overflow flushes emit max-size groups
        assert len(batches) >= 2
        assert all(b.size == 2 for b in batches)
        assert batcher.pending_count < 4

    def test_deadline_tracks_oldest_pending(self):
        sigs = _distinct_sigs(10)
        batcher = OverlapBatcher(max_batch_size=1, timeout_s=0.5,
                                 signature_fn=_sig_fn(sigs))
        batcher.add(_req(0, 1.0, target=0), 1.0)
        batcher.add(_req(1, 1.2, target=1), 1.2)
        assert batcher.next_deadline(1.2) == pytest.approx(1.5)
        batch = batcher.flush(1.5)  # singleton group anchored on request 0
        assert [r.request_id for r in batch.requests] == [0]
        # the leftover's own arrival now defines the deadline
        assert batcher.next_deadline(1.5) == pytest.approx(1.7)

    def test_requires_signature_fn(self):
        with pytest.raises(ValueError):
            OverlapBatcher(signature_fn=None)
        with pytest.raises(ValueError):
            build_batch_policy("overlap")


# --------------------------------------------------------------------------- #
# Continuous joins
# --------------------------------------------------------------------------- #
class TestContinuousBatcher:
    def _batcher(self, **kwargs):
        defaults = dict(max_batch_size=4, timeout_s=0.5,
                        signature_fn=_sig_fn(_distinct_sigs(32)),
                        join_window_s=1.0, staleness_s=2.0)
        defaults.update(kwargs)
        return ContinuousBatcher(**defaults)

    def test_late_arrival_joins_open_batch(self):
        batcher = self._batcher()
        batcher.add(_req(0, 0.0), 0.0)
        batch = batcher.flush(0.1)
        assert batch.size == 1
        joined = batcher.try_join(_req(1, 0.2), 0.2)
        assert joined is batch
        assert batch.size == 2
        assert batch.late_joins == 1
        assert batcher.late_joins == 1
        assert batch.created_time_s == 0.1   # joins never restamp formation

    def test_join_window_boundary_inclusive(self):
        batcher = self._batcher(join_window_s=1.0)
        batcher.add(_req(0, 0.0), 0.0)
        batch = batcher.flush(0.0)
        # exactly at the boundary: accepted
        assert batcher.try_join(_req(1, 1.0), 1.0) is batch
        # just beyond: the batch has expired
        assert batcher.try_join(_req(2, 1.0001), 1.0001) is None
        assert batcher.open_batches == 0

    def test_staleness_budget_blocks_joins(self):
        batcher = self._batcher(join_window_s=10.0, staleness_s=0.5)
        batcher.add(_req(0, 0.0), 0.0)
        batch = batcher.flush(0.2)
        # oldest member at exactly the budget: accepted
        assert batcher.try_join(_req(1, 0.5), 0.5) is batch
        # past the budget: sealed for joins (and counted as a reject)
        assert batcher.try_join(_req(2, 0.6), 0.6) is None
        assert batcher.late_join_rejects == 1

    def test_service_start_seals_the_batch(self):
        batcher = self._batcher()
        batcher.add(_req(0, 0.0), 0.0)
        batch = batcher.flush(0.1)
        batcher.on_service_start(batch)
        assert batcher.try_join(_req(1, 0.2), 0.2) is None

    def test_full_batch_takes_no_joins(self):
        batcher = self._batcher(max_batch_size=1)
        batcher.add(_req(0, 0.0), 0.0)
        batch = batcher.flush(0.1)
        assert batch.size == 1
        assert batcher.try_join(_req(1, 0.2), 0.2) is None

    def test_min_overlap_binds_joins_too(self):
        """A batch formed under a purity floor never refills with
        non-overlapping strangers."""
        batcher = self._batcher(min_overlap=0.5)
        batcher.add(_req(0, 0.0, target=0), 0.0)
        batch = batcher.flush(0.1)
        assert batch.size == 1
        # disjoint signature: below the floor, no join
        assert batcher.try_join(_req(1, 0.2, target=9), 0.2) is None
        # identical target: similarity 1.0, joins
        assert batcher.try_join(_req(2, 0.3, target=0), 0.3) is batch

    def test_join_prefers_highest_similarity(self):
        sigs = _distinct_sigs(32)
        batcher = self._batcher(signature_fn=_sig_fn(sigs))
        batcher.add(_req(0, 0.0, target=0), 0.0)
        first = batcher.flush(0.0)
        batcher.add(_req(1, 0.1, target=7), 0.1)
        second = batcher.flush(0.1)
        joined = batcher.try_join(_req(2, 0.2, target=7), 0.2)
        assert joined is second
        assert first.size == 1

    def test_join_log_records_budgets(self):
        batcher = self._batcher(join_window_s=1.0, staleness_s=2.0)
        batcher.add(_req(0, 0.0), 0.0)
        batcher.flush(0.25)
        batcher.try_join(_req(1, 0.75), 0.75)
        (event,) = batcher.join_log
        assert event.batch_age_s == pytest.approx(0.5)
        assert event.oldest_wait_s == pytest.approx(0.75)

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            self._batcher(join_window_s=0.0)
        with pytest.raises(ValueError):
            self._batcher(staleness_s=0.0)


# --------------------------------------------------------------------------- #
# One-clock formation timestamps (regression)
# --------------------------------------------------------------------------- #
class TestFormationClock:
    @pytest.mark.parametrize("make", [
        lambda: TimeoutBatcher(max_batch_size=8, timeout_s=0.5),
        lambda: OverlapBatcher(max_batch_size=8, timeout_s=0.5,
                               signature_fn=_sig_fn(_distinct_sigs(8))),
        lambda: ContinuousBatcher(max_batch_size=8, timeout_s=0.5,
                                  signature_fn=_sig_fn(_distinct_sigs(8)),
                                  join_window_s=1.0, staleness_s=2.0),
    ])
    def test_late_firing_timer_stamps_event_loop_clock(self, make):
        """A timeout flush must carry the flush-event clock, not the enqueue
        clock (request arrival) and not the armed deadline."""
        batcher = make()
        batcher.add(_req(0, 1.0), 1.0)
        assert batcher.next_deadline(1.0) == pytest.approx(1.5)
        # the event loop was busy: the timer fires late, at t=1.73
        batch = batcher.flush_due(1.73)
        assert batch is not None
        assert batch.created_time_s == pytest.approx(1.73)

    def test_size_cap_stamps_the_completing_arrival(self):
        batcher = TimeoutBatcher(max_batch_size=2, timeout_s=100.0)
        batcher.add(_req(0, 0.0), 0.0)
        batch = batcher.add(_req(1, 0.3), 0.3)
        assert batch.created_time_s == pytest.approx(0.3)


# --------------------------------------------------------------------------- #
# Registry / config plumbing
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builds_every_policy(self):
        sig = _sig_fn(_distinct_sigs(4))
        for policy in ALL_BATCH_POLICIES:
            batcher = build_batch_policy(policy, signature_fn=sig)
            assert batcher.policy == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            build_batch_policy("nearest-neighbour")

    def test_fleet_config_accepts_formation_policies(self):
        for policy in BATCH_POLICIES:
            assert FleetConfig(batch_policy=policy).batch_policy == policy

    def test_fleet_config_validates_overlap_knobs(self):
        with pytest.raises(ValueError):
            FleetConfig(min_overlap=1.5)
        with pytest.raises(ValueError):
            FleetConfig(join_window_s=0.0)
        with pytest.raises(ValueError):
            FleetConfig(staleness_s=-1.0)
        with pytest.raises(ValueError):
            FleetConfig(overlap_k=-1)
        with pytest.raises(ValueError):
            FleetConfig(pool_factor=0)

    def test_signature_hops_resolution(self):
        assert FleetConfig(num_hops=2).signature_hops == 1
        assert FleetConfig(num_hops=2, overlap_k=5).signature_hops == 2
        assert FleetConfig(num_hops=0).signature_hops == 0

    def test_wfq_reprice_updates_queued_batch(self):
        scheduler = WFQScheduler({"a": 1.0}, quantum_s=1.0)
        batch = Batch(batch_id=7, requests=[_req(0, 0.0)], created_time_s=0.0)
        scheduler.enqueue("a", batch, 1.0)
        assert scheduler.reprice("a", 7, 3.0) is True
        name, released, cost = scheduler.next_batch()
        assert (name, released.batch_id, cost) == ("a", 7, 3.0)
        assert scheduler.reprice("a", 7, 1.0) is False  # already released

    def test_admit_damps_degradation_by_overlap(self):
        """With high measured overlap the ladder's savings shrink, so a
        request that a zero-overlap fleet would degrade gets shed."""
        def plane():
            p = ControlPlane(ControlConfig(admission=True, degrade=True,
                                           admission_rate_rps=1e9,
                                           admission_slo_margin=1.0))
            p.bind([TenantBinding(name="", slo_s=1.0, num_hops=2, fanout=8)],
                   initial_chips=1, probe_service_s=0.1,
                   capacity_per_chip_rps=10.0)
            return p
        # delay 0, service 1.6: full fidelity misses the 1.0 budget; level-1
        # (cost_scale ~0.6) fits it -- unless overlap damping is applied
        undamped = plane().admit("", 0.0, 0.0, 1.6, overlap_ratio=0.0)
        assert undamped.admitted and undamped.level == 1
        damped = plane().admit("", 0.0, 0.0, 1.6, overlap_ratio=0.9)
        assert damped.level != 1


# --------------------------------------------------------------------------- #
# Simulation-level acceptance
# --------------------------------------------------------------------------- #
#: Saturated, cache-free, Zipf-skewed single-tenant scenario: the fleet is
#: the bottleneck, so formation quality shows up in both the tail and the
#: chip-seconds bill.
_ACCEPT = dict(dataset="IB", model_name="GCN", num_requests=400,
               popularity_skew=1.2, utilization_target=3.0, seed=0)
_FLEET = dict(num_chips=2, max_batch_size=8, cache_size=0)


def _accept_run(policy, **overrides):
    clear_probe_cache()
    config = FleetConfig(batch_policy=policy, **_FLEET)
    return run_serving(config=config, **{**_ACCEPT, **overrides})


class TestAcceptance:
    def test_overlap_beats_fifo_on_p99_and_chip_seconds(self):
        fifo = _accept_run("fifo")
        overlap = _accept_run("overlap")
        assert fifo.completed == overlap.completed == 400
        assert overlap.batching.overlap_ratio > fifo.batching.overlap_ratio
        assert overlap.p99_latency_s < fifo.p99_latency_s
        assert overlap.chip_seconds_s < fifo.chip_seconds_s

    def test_continuous_joins_within_budgets(self):
        """Short timeout flushes underfilled batches; continuous tops them
        up with late joins -- every one inside both budgets -- and beats
        FIFO in the same regime."""
        clear_probe_cache()
        graph = load_dataset("IB", seed=0)
        model = build_model("GCN", input_length=graph.feature_length)
        config = FleetConfig(batch_policy="continuous", num_chips=2,
                             max_batch_size=32, batch_timeout_s=5e-7,
                             cache_size=0)
        sim = ServingSimulator(graph, model, config, dataset_name="IB")
        rate = sim.calibrate_rate(1.2)
        from repro.serving import RequestGenerator, WorkloadConfig
        workload = WorkloadConfig(num_requests=400, rate_rps=rate,
                                  popularity_skew=1.2, seed=0)
        requests = RequestGenerator(graph.num_vertices, workload).generate()
        report = sim.run(requests, rate_rps=rate)
        assert report.batching.late_joins > 0
        log = sim.batcher.join_log
        assert len(log) == report.batching.late_joins
        for event in log:
            assert event.batch_age_s <= sim.join_window_s + 1e-12
            assert event.oldest_wait_s <= sim.staleness_s + 1e-12

        fifo_config = dataclasses.replace(config, batch_policy="fifo")
        clear_probe_cache()
        fifo = ServingSimulator(graph, model, fifo_config,
                                dataset_name="IB").run(requests,
                                                       rate_rps=rate)
        assert report.p99_latency_s < fifo.p99_latency_s
        assert report.chip_seconds_s < fifo.chip_seconds_s

    def test_overlap_grouping_is_deterministic(self):
        first = _accept_run("overlap")
        second = _accept_run("overlap")
        assert [r.request_id for r in first.records] \
            == [r.request_id for r in second.records]
        assert [r.latency_s for r in first.records] \
            == [r.latency_s for r in second.records]
        assert first.batching.as_dict() == second.batching.as_dict()

    def test_overlap_ratio_reported_for_every_policy(self):
        report = _accept_run("fifo")
        assert report.batching is not None
        assert 0.0 < report.batching.overlap_ratio < 1.0
        payload = report.to_dict(include_records=False)
        assert payload["batching"]["policy"] == "fifo"

    def test_single_request_batches_under_overlap_min_overlap(self):
        """A zero-skew workload with a similarity floor serves correctly
        from (mostly) singleton batches."""
        clear_probe_cache()
        config = FleetConfig(batch_policy="overlap", min_overlap=0.99,
                             **_FLEET)
        report = run_serving(config=config,
                             **{**_ACCEPT, "popularity_skew": 0.0,
                                "num_requests": 60,
                                "utilization_target": 0.5})
        assert report.completed == 60
        assert report.batching.mean_batch_size < 2.0
