"""Request-trace codec, capture hooks and bit-for-bit replay.

Three layers of guarantees:

1. **Codec properties** (hypothesis): save/load round-trips any request
   stream -- every arrival process, multi-tenant tags, degradation
   stamps, the empty trace -- and the loader rejects every corruption
   mode (truncation, payload bit-flips, bad magic, version drift,
   unsorted or out-of-range columns) with :class:`TraceFormatError`.
2. **Capture semantics**: the arrival hook records exactly the offered
   stream, capturing never perturbs the report, and re-capturing a
   replay writes a byte-identical trace file.
3. **Replay contract** (the PR's acceptance criterion): a run captured
   with ``--trace-capture`` and replayed with ``--replay`` produces a
   bit-for-bit identical report, single- and multi-tenant, through the
   library API and the CLI alike.
"""

import gzip
import json
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import main
from repro.serving import (
    ARRIVAL_PROCESSES,
    FleetConfig,
    Request,
    RequestGenerator,
    RequestTrace,
    TenantConfig,
    TraceFormatError,
    TraceWriter,
    WorkloadConfig,
    clear_probe_cache,
    load_request_trace,
    run_multi_tenant,
    run_serving,
    save_request_trace,
    trace_stats,
)
from repro.serving.trace import TRACE_MAGIC, TRACE_VERSION


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
@st.composite
def request_streams(draw):
    """Arbitrary valid request streams: sorted arrivals, optional tenant
    tags, optional degradation stamps."""
    n = draw(st.integers(min_value=0, max_value=32))
    multi = draw(st.booleans())
    tenant_pool = ("alpha", "beta", "gamma") if multi else ("",)
    gaps = draw(st.lists(
        st.floats(min_value=0.0, max_value=1e-3, allow_nan=False,
                  allow_infinity=False),
        min_size=n, max_size=n))
    times = np.concatenate([[0.0], np.cumsum(gaps)])[:n]
    requests = []
    for i in range(n):
        degraded = draw(st.booleans())
        requests.append(Request(
            request_id=i,
            target_vertex=draw(st.integers(min_value=0, max_value=100_000)),
            arrival_time_s=float(times[i]),
            tenant=draw(st.sampled_from(tenant_pool)),
            degrade_level=draw(st.integers(min_value=1, max_value=3))
            if degraded else 0,
            degrade_hops=draw(st.integers(min_value=0, max_value=4))
            if degraded else None,
            degrade_fanout=draw(st.integers(min_value=1, max_value=64))
            if degraded else None,
        ))
    return requests


# --------------------------------------------------------------------------- #
# Codec round-trip properties
# --------------------------------------------------------------------------- #
class TestCodecRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(requests=request_streams())
    def test_round_trip_identity(self, requests, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("trace") / "t.bin")
        meta = {"kind": "test", "rate_rps": 123.5, "nested": {"a": [1, 2]}}
        save_request_trace(path, RequestTrace.from_requests(requests, meta))
        loaded = load_request_trace(path)
        assert loaded.to_requests() == list(requests)
        assert loaded.meta == meta
        assert loaded.num_requests == len(requests)

    @pytest.mark.parametrize("arrival", [a for a in ARRIVAL_PROCESSES
                                         if a != "trace"])
    def test_round_trips_every_arrival_process(self, arrival, tmp_path):
        cfg = WorkloadConfig(num_requests=100, rate_rps=5e3, arrival=arrival,
                             popularity_skew=1.1, seed=9)
        requests = RequestGenerator(2_000, cfg).generate()
        path = str(tmp_path / "t.bin")
        save_request_trace(path, RequestTrace.from_requests(requests))
        assert load_request_trace(path).to_requests() == requests

    def test_empty_trace_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.bin")
        save_request_trace(path, RequestTrace.from_requests([]))
        loaded = load_request_trace(path)
        assert loaded.num_requests == 0
        assert loaded.to_requests() == []
        assert loaded.duration_s == 0.0
        assert loaded.mean_rate_rps == 0.0
        assert not loaded.multi_tenant

    def test_save_is_deterministic(self, tmp_path):
        requests = RequestGenerator(
            500, WorkloadConfig(num_requests=50, rate_rps=1e3)).generate()
        trace = RequestTrace.from_requests(requests, {"seed": 1})
        a, b = str(tmp_path / "a.bin"), str(tmp_path / "b.bin")
        save_request_trace(a, trace)
        save_request_trace(b, trace)
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_tenant_properties(self, tmp_path):
        requests = [
            Request(0, 1, 0.0, tenant="beta"),
            Request(1, 2, 1e-4, tenant="alpha"),
        ]
        path = str(tmp_path / "mt.bin")
        save_request_trace(path, RequestTrace.from_requests(requests))
        loaded = load_request_trace(path)
        assert loaded.multi_tenant
        assert loaded.tenant_names == ("alpha", "beta")


# --------------------------------------------------------------------------- #
# Malformed files
# --------------------------------------------------------------------------- #
def _valid_trace_bytes(tmp_path, n=20):
    requests = RequestGenerator(
        300, WorkloadConfig(num_requests=n, rate_rps=1e3)).generate()
    path = str(tmp_path / "valid.bin")
    save_request_trace(path, RequestTrace.from_requests(requests))
    with open(path, "rb") as handle:
        return path, handle.read()


class TestMalformedFiles:
    def test_truncation_detected(self, tmp_path):
        path, raw = _valid_trace_bytes(tmp_path)
        for cut in (10, len(raw) // 2, len(raw) - 3):
            clipped = str(tmp_path / f"cut{cut}.bin")
            with open(clipped, "wb") as handle:
                handle.write(raw[:cut])
            with pytest.raises(TraceFormatError):
                load_request_trace(clipped)

    def test_payload_corruption_detected_by_crc(self, tmp_path):
        path, raw = _valid_trace_bytes(tmp_path)
        frame = bytearray(gzip.decompress(raw))
        # flip one payload byte past the header, then re-frame cleanly:
        # gzip's own CRC passes, the header CRC must catch it
        frame[-5] ^= 0xFF
        evil = str(tmp_path / "corrupt.bin")
        with open(evil, "wb") as handle:
            handle.write(gzip.compress(bytes(frame)))
        with pytest.raises(TraceFormatError, match="CRC"):
            load_request_trace(evil)

    def test_version_mismatch_rejected(self, tmp_path):
        path, raw = _valid_trace_bytes(tmp_path)
        frame = bytearray(gzip.decompress(raw))
        offset = len(TRACE_MAGIC)
        frame[offset:offset + 2] = np.uint16(TRACE_VERSION + 1).tobytes()
        evil = str(tmp_path / "future.bin")
        with open(evil, "wb") as handle:
            handle.write(gzip.compress(bytes(frame)))
        with pytest.raises(TraceFormatError, match="version"):
            load_request_trace(evil)

    def test_bad_magic_rejected(self, tmp_path):
        evil = str(tmp_path / "magic.bin")
        with open(evil, "wb") as handle:
            handle.write(gzip.compress(b"NOTATRCE" + b"\x00" * 32))
        with pytest.raises(TraceFormatError, match="magic"):
            load_request_trace(evil)

    def test_json_span_trace_gets_pointed_hint(self, tmp_path):
        evil = str(tmp_path / "spans.json")
        with open(evil, "w") as handle:
            json.dump({"traceEvents": []}, handle)
        with pytest.raises(TraceFormatError, match="trace-report"):
            load_request_trace(evil)

    def test_random_bytes_rejected(self, tmp_path):
        evil = str(tmp_path / "noise.bin")
        with open(evil, "wb") as handle:
            handle.write(b"\x00\x01\x02\x03 definitely not a trace")
        with pytest.raises(TraceFormatError):
            load_request_trace(evil)

    def test_unsorted_arrivals_rejected(self, tmp_path):
        requests = [Request(0, 1, 2.0), Request(1, 2, 1.0)]
        trace = RequestTrace.from_requests(requests)
        path = str(tmp_path / "unsorted.bin")
        save_request_trace(path, trace)  # writer stores columns verbatim
        with pytest.raises(TraceFormatError, match="sorted"):
            load_request_trace(path)

    def test_out_of_range_tenant_index_rejected(self, tmp_path):
        trace = RequestTrace.from_requests([Request(0, 1, 0.0)])
        trace.columns["tenant"][0] = 7
        path = str(tmp_path / "tenantidx.bin")
        save_request_trace(path, trace)
        with pytest.raises(TraceFormatError, match="tenant"):
            load_request_trace(path)


# --------------------------------------------------------------------------- #
# Capture semantics + bit-for-bit replay (the acceptance criterion)
# --------------------------------------------------------------------------- #
def _report_json(report):
    return json.dumps(report.to_dict(), sort_keys=True, default=float)


class TestCaptureReplay:
    DATASET = "IB"
    CONFIG = dict(num_chips=2, cache_size=64)

    def test_capturing_never_changes_the_report(self):
        clear_probe_cache()
        plain = run_serving(dataset=self.DATASET, num_requests=64,
                            config=FleetConfig(**self.CONFIG), seed=3)
        clear_probe_cache()
        captured = run_serving(dataset=self.DATASET, num_requests=64,
                               config=FleetConfig(**self.CONFIG), seed=3,
                               capture=TraceWriter())
        assert _report_json(plain) == _report_json(captured)

    def test_capture_records_the_offered_stream(self):
        capture = TraceWriter()
        clear_probe_cache()
        run_serving(dataset=self.DATASET, num_requests=48,
                    config=FleetConfig(**self.CONFIG), seed=3,
                    capture=capture)
        assert capture.num_recorded == 48
        times = [r.arrival_time_s for r in capture.requests]
        assert times == sorted(times)
        assert capture.meta["dataset"] == self.DATASET
        assert capture.meta["rate_rps"] > 0

    def test_single_tenant_replay_is_bit_for_bit(self, tmp_path):
        capture = TraceWriter()
        clear_probe_cache()
        original = run_serving(dataset=self.DATASET, num_requests=64,
                               config=FleetConfig(**self.CONFIG), seed=5,
                               capture=capture)
        path = str(tmp_path / "cap.bin")
        capture.write(path)
        clear_probe_cache()
        replayed = run_serving(dataset=self.DATASET, num_requests=1,
                               config=FleetConfig(**self.CONFIG), seed=5,
                               replay=load_request_trace(path))
        assert _report_json(original) == _report_json(replayed)

    def test_replay_recapture_writes_identical_trace(self, tmp_path):
        capture = TraceWriter()
        clear_probe_cache()
        run_serving(dataset=self.DATASET, num_requests=48,
                    config=FleetConfig(**self.CONFIG), seed=5,
                    capture=capture)
        first = str(tmp_path / "first.bin")
        capture.write(first)
        recapture = TraceWriter()
        clear_probe_cache()
        run_serving(dataset=self.DATASET, num_requests=48,
                    config=FleetConfig(**self.CONFIG), seed=5,
                    replay=load_request_trace(first), capture=recapture)
        second = str(tmp_path / "second.bin")
        recapture.write(second)
        assert open(first, "rb").read() == open(second, "rb").read()

    def test_replay_of_degraded_run_reproduces_control_decisions(
            self, tmp_path):
        from repro.serving import ControlConfig
        control = ControlConfig(admission=True, degrade=True,
                                admission_rate_rps=200.0)
        capture = TraceWriter()
        clear_probe_cache()
        original = run_serving(dataset=self.DATASET, num_requests=96,
                               config=FleetConfig(**self.CONFIG), seed=2,
                               control=control, capture=capture)
        path = str(tmp_path / "deg.bin")
        capture.write(path)
        clear_probe_cache()
        replayed = run_serving(dataset=self.DATASET, num_requests=1,
                               config=FleetConfig(**self.CONFIG), seed=2,
                               control=control,
                               replay=load_request_trace(path))
        assert _report_json(original) == _report_json(replayed)

    def test_multi_tenant_replay_is_bit_for_bit(self, tmp_path):
        tenants = [
            TenantConfig(name="alpha", dataset="IB", num_requests=40),
            TenantConfig(name="beta", dataset="IB", model="GIN",
                         num_requests=24, arrival="bursty"),
        ]
        fleet = FleetConfig(num_chips=2, seed=4)
        capture = TraceWriter()
        clear_probe_cache()
        original = run_multi_tenant(tenants, fleet, capture=capture)
        path = str(tmp_path / "mt.bin")
        trace = capture.write(path)
        assert trace.tenant_names == ("alpha", "beta")
        clear_probe_cache()
        replayed = run_multi_tenant(tenants, fleet,
                                    replay=load_request_trace(path))
        assert _report_json(original) == _report_json(replayed)

    def test_replay_rejects_wrong_tenancy_mode(self, tmp_path):
        single = RequestTrace.from_requests(
            [Request(0, 1, 0.0)], meta={"rate_rps": 10.0})
        multi = RequestTrace.from_requests([Request(0, 1, 0.0, tenant="a")])
        with pytest.raises(ValueError, match="multi-tenant"):
            run_serving(dataset=self.DATASET, replay=multi)
        with pytest.raises(ValueError, match="single-tenant"):
            run_multi_tenant([TenantConfig(name="a", dataset="IB",
                                           num_requests=4)],
                             FleetConfig(num_chips=1), replay=single,
                             include_isolation_baseline=False)

    def test_replay_rejects_unknown_tenants_and_foreign_targets(self):
        foreign = RequestTrace.from_requests(
            [Request(0, 999_999, 0.0, tenant="alpha")])
        with pytest.raises(ValueError, match="not in the tenant spec"):
            run_multi_tenant([TenantConfig(name="beta", dataset="IB",
                                           num_requests=4)],
                             FleetConfig(num_chips=1), replay=foreign,
                             include_isolation_baseline=False)
        single_foreign = RequestTrace.from_requests(
            [Request(0, 999_999, 0.0)], meta={"rate_rps": 10.0})
        with pytest.raises(ValueError, match="outside this graph"):
            run_serving(dataset=self.DATASET, replay=single_foreign)


# --------------------------------------------------------------------------- #
# trace-stats analysis
# --------------------------------------------------------------------------- #
class TestTraceStats:
    def test_uniform_arrivals_score_unbursty(self):
        requests = [Request(i, i % 7, i * 1e-3) for i in range(200)]
        stats = trace_stats(RequestTrace.from_requests(requests),
                            include_overlap=False)
        assert stats["arrivals"]["cv2_interarrival"] == pytest.approx(0.0)
        assert stats["arrivals"]["index_of_dispersion"] < 0.5

    def test_burst_scores_overdispersed(self):
        # two tight bursts separated by a long silence
        times = [i * 1e-6 for i in range(100)] \
            + [1.0 + i * 1e-6 for i in range(100)]
        requests = [Request(i, 0, t) for i, t in enumerate(times)]
        stats = trace_stats(RequestTrace.from_requests(requests),
                            include_overlap=False)
        assert stats["arrivals"]["index_of_dispersion"] > 5.0

    def test_zipf_fit_recovers_exponent(self):
        # exact zipf-1 counts: target r appears 240/r times
        requests = []
        i = 0
        for rank in range(1, 9):
            for _ in range(240 // rank):
                requests.append(Request(i, rank, i * 1e-4))
                i += 1
        stats = trace_stats(RequestTrace.from_requests(requests),
                            include_overlap=False)
        assert stats["popularity"]["zipf_exponent"] == pytest.approx(
            1.0, abs=0.05)
        assert stats["popularity"]["zipf_r2"] > 0.99

    def test_overlap_histogram_counts_scored_pairs(self):
        requests = RequestGenerator(
            2_000, WorkloadConfig(num_requests=80, rate_rps=1e3,
                                  popularity_skew=1.2, seed=2)).generate()
        trace = RequestTrace.from_requests(
            requests, meta={"dataset": "IB", "num_hops": 2, "fanout": 8,
                            "seed": 0})
        stats = trace_stats(trace, max_targets=16, max_pairs=64)
        overlap = stats["overlap"]
        assert overlap is not None
        assert overlap["signature_targets"] == 16
        assert sum(c for _, _, c in overlap["histogram"]) == overlap["pairs"]
        # deterministic: same trace, same histogram
        again = trace_stats(trace, max_targets=16, max_pairs=64)
        assert again["overlap"] == overlap

    def test_empty_trace_stats(self):
        stats = trace_stats(RequestTrace.from_requests([]),
                            include_overlap=False)
        assert stats["num_requests"] == 0
        assert stats["popularity"]["unique_targets"] == 0

    def test_degraded_requests_counted(self):
        requests = [Request(0, 1, 0.0),
                    Request(1, 2, 1e-4, degrade_level=2, degrade_hops=1,
                            degrade_fanout=4)]
        stats = trace_stats(RequestTrace.from_requests(requests),
                            include_overlap=False)
        assert stats["degraded"]["requests"] == 1
        assert stats["degraded"]["rate"] == pytest.approx(0.5)


# --------------------------------------------------------------------------- #
# CLI flows
# --------------------------------------------------------------------------- #
SERVE_FAST = ["serve", "--dataset", "IB", "--requests", "48", "--chips", "2"]


class TestTraceCLI:
    def test_capture_then_replay_bit_for_bit(self, tmp_path, capsys):
        trace = str(tmp_path / "cap.bin")
        first, second = str(tmp_path / "1.json"), str(tmp_path / "2.json")
        assert main(SERVE_FAST + ["--trace-capture", trace,
                                  "--json", first]) == 0
        assert "wrote request trace" in capsys.readouterr().out
        assert main(["serve", "--dataset", "IB", "--chips", "2",
                     "--replay", trace, "--json", second]) == 0
        with open(first) as a, open(second) as b:
            assert json.load(a) == json.load(b)

    def test_trace_stats_runs_on_capture(self, tmp_path, capsys):
        trace = str(tmp_path / "cap.bin")
        assert main(SERVE_FAST + ["--trace-capture", trace]) == 0
        capsys.readouterr()
        assert main(["trace-stats", trace]) == 0
        out = capsys.readouterr().out
        for needle in ("request trace: 48 requests", "burstiness",
                       "zipf exponent", "overlap potential"):
            assert needle in out

    def test_trace_stats_json_output(self, tmp_path, capsys):
        trace = str(tmp_path / "cap.bin")
        assert main(SERVE_FAST + ["--trace-capture", trace]) == 0
        capsys.readouterr()
        assert main(["trace-stats", trace, "--no-overlap",
                     "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_requests"] == 48
        assert payload["overlap"] is None

    def test_replay_conflicts_exit_2(self, tmp_path, capsys):
        trace = str(tmp_path / "cap.bin")
        assert main(SERVE_FAST + ["--trace-capture", trace]) == 0
        capsys.readouterr()
        assert main(["serve", "--replay", trace,
                     "--arrival", "trace"]) == 2
        assert "--arrival trace" in capsys.readouterr().err
        assert main(["serve", "--replay", trace,
                     "--trace-file", trace]) == 2
        assert "--trace-file" in capsys.readouterr().err

    def test_replay_of_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"\x1f\x8b not actually gzip")
        assert main(["serve", "--replay", str(bad)]) == 2
        assert "error: cannot read request trace" in capsys.readouterr().err
        assert main(["trace-stats", str(bad)]) == 2
        assert "error: cannot read request trace" in capsys.readouterr().err

    def test_multi_tenant_cli_replay_bit_for_bit(self, tmp_path, capsys):
        spec = tmp_path / "tenants.json"
        spec.write_text(json.dumps({"tenants": [
            {"name": "alpha", "dataset": "IB", "num_requests": 32},
            {"name": "beta", "dataset": "IB", "model": "GIN",
             "num_requests": 16},
        ]}))
        trace = str(tmp_path / "mt.bin")
        first, second = str(tmp_path / "1.json"), str(tmp_path / "2.json")
        base = ["serve", "--tenants", str(spec), "--chips", "2"]
        assert main(base + ["--trace-capture", trace, "--json", first]) == 0
        capsys.readouterr()
        assert main(base + ["--replay", trace, "--json", second]) == 0
        with open(first) as a, open(second) as b:
            assert json.load(a) == json.load(b)
        # replaying a multi-tenant capture without the spec is an error
        assert main(["serve", "--dataset", "IB", "--replay", trace]) == 2
        assert "--tenants" in capsys.readouterr().err
