"""Batching policies: size caps, timeout deadlines, SLO-aware budgets."""

import pytest

from repro.serving import (
    Request,
    SizeCappedBatcher,
    SLOAwareBatcher,
    TimeoutBatcher,
    build_batcher,
)


def _req(i, t):
    return Request(request_id=i, target_vertex=i, arrival_time_s=t)


class TestSizeCappedBatcher:
    def test_flushes_exactly_at_size_cap(self):
        batcher = SizeCappedBatcher(max_batch_size=4)
        for i in range(3):
            assert batcher.add(_req(i, i * 0.1), now=i * 0.1) is None
        batch = batcher.add(_req(3, 0.3), now=0.3)
        assert batch is not None
        assert batch.size == 4
        assert batcher.pending_count == 0

    def test_never_deadline_based(self):
        batcher = SizeCappedBatcher(max_batch_size=4)
        batcher.add(_req(0, 0.0), now=0.0)
        assert batcher.next_deadline(1e9) is None
        assert batcher.flush_due(1e9) is None

    def test_explicit_flush_drains_pending(self):
        batcher = SizeCappedBatcher(max_batch_size=4)
        batcher.add(_req(0, 0.0), now=0.0)
        batch = batcher.flush(0.5)
        assert batch.size == 1
        assert batcher.flush(0.6) is None  # nothing left

    def test_batch_ids_increment(self):
        batcher = SizeCappedBatcher(max_batch_size=1)
        first = batcher.add(_req(0, 0.0), now=0.0)
        second = batcher.add(_req(1, 0.1), now=0.1)
        assert (first.batch_id, second.batch_id) == (0, 1)


class TestTimeoutBatcher:
    def test_deadline_is_oldest_arrival_plus_timeout(self):
        batcher = TimeoutBatcher(max_batch_size=8, timeout_s=0.5)
        batcher.add(_req(0, 1.0), now=1.0)
        batcher.add(_req(1, 1.2), now=1.2)
        assert batcher.next_deadline(1.2) == pytest.approx(1.5)

    def test_flush_due_respects_deadline(self):
        batcher = TimeoutBatcher(max_batch_size=8, timeout_s=0.5)
        batcher.add(_req(0, 1.0), now=1.0)
        assert batcher.flush_due(1.3) is None
        batch = batcher.flush_due(1.5)
        assert batch is not None and batch.size == 1

    def test_size_cap_still_applies(self):
        batcher = TimeoutBatcher(max_batch_size=2, timeout_s=100.0)
        batcher.add(_req(0, 0.0), now=0.0)
        batch = batcher.add(_req(1, 0.01), now=0.01)
        assert batch is not None and batch.size == 2

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            TimeoutBatcher(timeout_s=0.0)


class TestSLOAwareBatcher:
    def test_budget_shrinks_with_service_estimate(self):
        batcher = SLOAwareBatcher(max_batch_size=8, slo_s=1.0, safety_factor=1.0,
                                  ewma_alpha=1.0)
        batcher.add(_req(0, 0.0), now=0.0)
        lazy_deadline = batcher.next_deadline(0.0)
        batcher.observe_service_time(0.9)      # slow chips -> flush sooner
        tight_deadline = batcher.next_deadline(0.0)
        assert tight_deadline < lazy_deadline
        assert tight_deadline == pytest.approx(0.1)

    def test_exhausted_budget_flushes_immediately(self):
        batcher = SLOAwareBatcher(max_batch_size=8, slo_s=0.1, safety_factor=2.0)
        batcher.observe_service_time(0.2)      # 2x estimate > SLO: no headroom
        batcher.add(_req(0, 3.0), now=3.0)
        assert batcher.next_deadline(3.0) == pytest.approx(3.0)
        assert batcher.flush_due(3.0) is not None

    def test_ewma_tracks_observations(self):
        batcher = SLOAwareBatcher(slo_s=1.0, ewma_alpha=0.5)
        batcher.observe_service_time(0.2)
        batcher.observe_service_time(0.4)
        assert batcher.service_estimate_s == pytest.approx(0.3)

    def test_default_estimate_before_feedback(self):
        batcher = SLOAwareBatcher(slo_s=1.0)
        assert batcher.service_estimate_s == pytest.approx(0.25)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SLOAwareBatcher(slo_s=0.0)
        with pytest.raises(ValueError):
            SLOAwareBatcher(slo_s=1.0, ewma_alpha=0.0)


class TestBuildBatcher:
    def test_builds_every_policy(self):
        assert build_batcher("size").policy == "size"
        assert build_batcher("timeout").policy == "timeout"
        assert build_batcher("slo").policy == "slo"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            build_batcher("greedy")

    def test_invalid_size_cap_rejected(self):
        with pytest.raises(ValueError):
            build_batcher("size", max_batch_size=0)
