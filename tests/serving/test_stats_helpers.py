"""Unit tests for the small helpers in :mod:`repro.serving.stats`.

``percentile`` and ``timeline_text`` feed every report table and CLI plot,
and ``ControlPlane.finalize`` closes the chip-seconds books that the
autoscaling cost/benefit headline rests on -- so their edge cases (empty
inputs, single samples, warm-up clipping) get pinned here directly instead
of only through end-to-end runs.
"""

import pytest

from repro.serving import (
    ControlConfig,
    ControlPlane,
    TenantBinding,
    percentile,
)
from repro.serving.stats import ControlSample, ControlStats


class TestPercentile:
    def test_empty_input_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile((), 99) == 0.0

    def test_single_value_at_every_q(self):
        for q in (0, 25, 50, 99, 100):
            assert percentile([7.5], q) == 7.5

    def test_q_zero_is_min_and_q_hundred_is_max(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_q_outside_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)


def _control_stats(samples=()):
    return ControlStats(policy="fixed", min_chips=1, max_chips=4,
                        control_interval_s=0.1, warmup_s=0.05,
                        initial_chips=2, samples=list(samples))


class TestTimelineText:
    def test_empty_samples_render_empty(self):
        assert _control_stats().timeline_text() == ""

    def test_one_sample_renders_bar_and_numbers(self):
        sample = ControlSample(time_s=0.002, active=3, warming=1, draining=2,
                               desired_chips=4, queue_depth=17,
                               arrival_rate_rps=100.0, utilization=0.5,
                               est_queue_delay_s=0.001, violations=0, shed=0)
        text = _control_stats([sample]).timeline_text()
        assert text.count("\n") == 0  # one sample, one line
        assert "###~--" in text      # 3 active + 1 warming + 2 draining
        assert "chips=3+1" in text
        assert "queue=  17" in text
        assert "delay=" in text


class _FakeChipStats:
    provisioned_s = 0.0


class _FakeChip:
    """Duck-typed stand-in for fleet.Chip in finalize()."""

    def __init__(self, state, added_s, ready_s, retired_s=None):
        self.state = state
        self.added_s = added_s
        self.ready_s = ready_s
        self.retired_s = retired_s
        self.stats = _FakeChipStats()


class TestFinalizeChipSeconds:
    def _plane(self):
        plane = ControlPlane(ControlConfig(autoscale="threshold",
                                           min_chips=1, max_chips=4))
        binding = TenantBinding(name="", slo_s=1.0, num_hops=2, fanout=8)
        plane.bind([binding], initial_chips=2, probe_service_s=0.01,
                   capacity_per_chip_rps=100.0)
        return plane

    def test_books_cover_warmup_and_retirement(self):
        plane = self._plane()
        chips = [
            # ready at t=1, never retired: provisioned to end, 1s of warm-up
            _FakeChip("active", added_s=0.0, ready_s=1.0),
            # retired at t=6: provisioned 4s, 1s of warm-up
            _FakeChip("retired", added_s=2.0, ready_s=3.0, retired_s=6.0),
            # retired mid-warm-up: warm-up clipped to the 1s it existed
            _FakeChip("retired", added_s=7.0, ready_s=9.0, retired_s=8.0),
        ]
        stats = plane.finalize(end_s=10.0, chips=chips)
        assert stats.chip_seconds_s == pytest.approx(10.0 + 4.0 + 1.0)
        assert stats.warmup_chip_seconds_s == pytest.approx(1.0 + 1.0 + 1.0)
        assert stats.final_chips == 1
        assert chips[0].stats.provisioned_s == pytest.approx(10.0)
        assert chips[1].stats.provisioned_s == pytest.approx(4.0)

    def test_warming_chips_count_toward_final_fleet(self):
        plane = self._plane()
        chips = [_FakeChip("active", 0.0, 0.5),
                 _FakeChip("warming", 9.0, 11.0)]
        stats = plane.finalize(end_s=10.0, chips=chips)
        assert stats.final_chips == 2
        # the warming chip's warm-up is clipped at end-of-run
        assert stats.warmup_chip_seconds_s == pytest.approx(0.5 + 1.0)
