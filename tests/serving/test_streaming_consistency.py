"""Differential consistency suite for streaming graph updates.

:class:`~repro.graphs.delta.DeltaGraph` claims its lazily materialised
snapshot is bit-for-bit the arrays a :class:`~repro.graphs.csc.CSCGraph`
rebuilt from scratch at the same version would carry -- before *and* after
compaction -- and :class:`~repro.serving.streaming.StreamState` claims its
targeted invalidation keeps every derived cache coherent while queries are
in flight.  This suite proves both claims differentially:

* a plain-Python **reference oracle** replays the same mutation history
  into sets/lists and rebuilds a canonical CSC graph from scratch; the
  delta graph's arrays must equal the rebuild exactly, for
  hypothesis-generated random interleavings of edge inserts, feature
  writes, vertex inserts and compactions;
* a memoising :class:`~repro.serving.sampler.SubgraphSampler` riding the
  mutating graph (``targeted`` invalidation) must produce bit-identical
  samples, minhash signatures, fused graphs and ``fused_size`` counts to a
  cold sampler on the from-scratch rebuild -- i.e. invalidation is
  provably indistinguishable from never having cached at all;
* per-cache **kill tests**: for each of the five derived caches (result
  cache, per-chip feature caches, sampler sample/signature memos, halo
  caches, shard-plan ownership) invalidation ``"none"`` must produce a
  counted stale serve and ``"targeted"`` must not -- each invalidation
  path is load-bearing, not decorative;
* end-to-end: a mutating :func:`~repro.serving.fleet.run_serving` run
  under ``targeted`` serves zero stale results, is bit-for-bit
  deterministic, and every non-degraded served result matches a fresh
  recomputation at its service-time graph version.

Regression tests for the two latent cache-keying bugs the streaming work
surfaced (the identity-only ``workloads_for`` memo key and the
version-blind probe-cache key) live at the bottom.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import DeltaGraph, graphs_equal, load_dataset, to_csc
from repro.graphs.csc import CSCGraph
from repro.graphs.generators import power_law_graph
from repro.serving.cache import LRUCache
from repro.serving.fleet import FleetConfig, run_serving
from repro.serving.sampler import SubgraphSampler
from repro.serving.sharding import ShardingConfig
from repro.serving.stats import ConsistencyStats
from repro.serving.streaming import (StreamState, UpdateEvent, UpdateStream,
                                     feature_row, generate_update_stream)
from repro.serving.workload import Request


# --------------------------------------------------------------------------- #
# Reference oracle: the same mutation history, replayed from scratch
# --------------------------------------------------------------------------- #
class ReferenceGraph:
    """Plain-Python twin of a mutation history; rebuilds canonical CSC.

    Deliberately shares no code with :class:`DeltaGraph`: edges live in a
    set, features in a list of rows, and :meth:`build` assembles the
    canonical arrays (per-column ascending sources, contiguous features)
    the slow way.  Any representational shortcut the delta overlay takes
    must still land on exactly these arrays.
    """

    def __init__(self, base: CSCGraph):
        self.edges = set()
        for dst in range(base.num_vertices):
            for src in base.row[base.colptr[dst]:base.colptr[dst + 1]]:
                self.edges.add((int(src), int(dst)))
        self.features = [base.features[v].copy()
                         for v in range(base.num_vertices)]

    def add_edge(self, src, dst):
        self.edges.add((int(src), int(dst)))

    def add_vertex(self, row):
        self.features.append(np.asarray(row, dtype=np.float64).copy())
        return len(self.features) - 1

    def write_features(self, vertex, row):
        self.features[int(vertex)] = np.asarray(row, dtype=np.float64).copy()

    def build(self) -> CSCGraph:
        n = len(self.features)
        columns = [[] for _ in range(n)]
        for src, dst in self.edges:
            columns[dst].append(src)
        colptr = np.zeros(n + 1, dtype=np.int64)
        rows = []
        for dst in range(n):
            sources = sorted(columns[dst])
            colptr[dst + 1] = colptr[dst] + len(sources)
            rows.extend(sources)
        return CSCGraph(colptr, np.asarray(rows, dtype=np.int64),
                        np.vstack(self.features), name="rebuilt")


def _apply_op(delta: DeltaGraph, ref: ReferenceGraph, op, rng):
    """Apply one (kind, a, b) op to both sides; returns False for no-ops."""
    kind, a, b = op
    n = delta.num_vertices
    if kind == "edge":
        src, dst = a % n, b % n
        applied = delta.add_edge(src, dst)
        ref.add_edge(src, dst)
        return applied
    if kind == "feature":
        vertex = a % n
        row = feature_row(delta.feature_length, b)
        delta.write_features(vertex, row)
        ref.write_features(vertex, row)
        return True
    if kind == "vertex":
        row = feature_row(delta.feature_length, b)
        new = delta.add_vertex(row)
        assert ref.add_vertex(row) == new
        dst = a % n
        delta.add_edge(new, dst)
        ref.add_edge(new, dst)
        return True
    assert kind == "compact"
    delta.compact()
    return True


def _assert_samplers_agree(delta: DeltaGraph, rebuilt: CSCGraph,
                           live: SubgraphSampler, targets):
    """The memoising sampler on the mutating graph must be bit-identical
    to a cold sampler on the from-scratch rebuild."""
    cold = SubgraphSampler(rebuilt, num_hops=live.num_hops,
                           fanout=live.fanout, seed=live.seed)
    assert np.array_equal(delta.colptr, rebuilt.colptr)
    assert np.array_equal(delta.row, rebuilt.row)
    assert np.array_equal(delta.features, rebuilt.features)
    assert graphs_equal(delta.as_csc(), rebuilt)
    samples_live, samples_cold = [], []
    for target in targets:
        a = live.extract(target)
        b = cold.extract(target)
        assert np.array_equal(a.vertex_array, b.vertex_array)
        assert np.array_equal(a.graph.csr.indptr, b.graph.csr.indptr)
        assert np.array_equal(a.graph.csr.indices, b.graph.csr.indices)
        assert np.array_equal(a.graph.features, b.graph.features)
        assert np.array_equal(live.signature(target), cold.signature(target))
        samples_live.append(a)
        samples_cold.append(b)
    shapes = [(t, None, None) for t in targets]
    assert live.fused_size(shapes) == cold.fused_size(shapes)
    fused_live = live.fuse(samples_live)
    fused_cold = cold.fuse(samples_cold)
    assert graphs_equal(fused_live, fused_cold)


@st.composite
def mutation_scripts(draw):
    seed = draw(st.integers(min_value=0, max_value=31))
    num_vertices = draw(st.integers(min_value=4, max_value=24))
    num_edges = draw(st.integers(min_value=4, max_value=60))
    ops = draw(st.lists(
        st.tuples(st.sampled_from(("edge", "feature", "vertex", "compact")),
                  st.integers(min_value=0, max_value=2 ** 31 - 1),
                  st.integers(min_value=0, max_value=2 ** 31 - 1)),
        min_size=1, max_size=24))
    compact_every = draw(st.sampled_from((0, 3, 64)))
    return seed, num_vertices, num_edges, ops, compact_every


@settings(max_examples=40, deadline=None)
@given(mutation_scripts())
def test_random_interleavings_match_from_scratch_rebuild(script):
    """Tentpole property: under any interleaving of mutations, queries and
    compactions, the delta overlay and a targeted-invalidation sampler are
    bit-for-bit indistinguishable from rebuilding everything from scratch."""
    seed, num_vertices, num_edges, ops, compact_every = script
    base = to_csc(power_law_graph(num_vertices, num_edges, feature_length=4,
                                  seed=seed))
    delta = DeltaGraph(base, compact_every=compact_every)
    ref = ReferenceGraph(base)
    live = SubgraphSampler(delta, num_hops=2, fanout=4, seed=seed)
    rng = np.random.default_rng(seed)
    # warm the memo so invalidation has something to keep honest
    for target in range(0, delta.num_vertices, 3):
        live.extract(target)
        live.signature(target)
    for i, op in enumerate(ops):
        version_before = delta.version
        applied = _apply_op(delta, ref, op, rng)
        if op[0] == "edge" and not applied:
            assert delta.version == version_before  # duplicate: full no-op
        # differential check at every step for the touched neighbourhood,
        # full sweep at the end (keeps the example cheap but airtight)
        targets = [int(rng.integers(0, delta.num_vertices)) for _ in range(3)]
        _assert_samplers_agree(delta, ref.build(), live, targets)
    version = delta.version
    delta.compact()
    assert delta.version == version  # compaction is not a mutation
    _assert_samplers_agree(delta, ref.build(), live,
                           list(range(delta.num_vertices)))


def test_compaction_is_invisible_mid_stream():
    """Auto-compaction (compact_every) at arbitrary points must never be
    observable through the sampler -- same arrays, same samples, same
    version trajectory as the never-compacting twin."""
    base = to_csc(power_law_graph(30, 90, feature_length=4, seed=7))
    eager = DeltaGraph(base, compact_every=2)
    never = DeltaGraph(base, compact_every=0)
    rng = np.random.default_rng(11)
    for _ in range(40):
        kind = rng.choice(["edge", "feature", "vertex"])
        if kind == "edge":
            src = int(rng.integers(0, eager.num_vertices))
            dst = int(rng.integers(0, eager.num_vertices))
            assert eager.add_edge(src, dst) == never.add_edge(src, dst)
        elif kind == "feature":
            vertex = int(rng.integers(0, eager.num_vertices))
            row = feature_row(4, int(rng.integers(0, 2 ** 31 - 1)))
            eager.write_features(vertex, row)
            never.write_features(vertex, row)
        else:
            row = feature_row(4, int(rng.integers(0, 2 ** 31 - 1)))
            assert eager.add_vertex(row) == never.add_vertex(row)
        assert eager.version == never.version
        assert np.array_equal(eager.colptr, never.colptr)
        assert np.array_equal(eager.row, never.row)
        assert np.array_equal(eager.features, never.features)
    assert eager.compactions > 0 and never.compactions == 0


# --------------------------------------------------------------------------- #
# Per-cache kill tests: every invalidation path is load-bearing
# --------------------------------------------------------------------------- #
class _FakeChip:
    def __init__(self, capacity=64):
        self.feature_cache = LRUCache(capacity)


def _stream_state(policy, *, with_result_cache=True, chips=0, seed=3):
    base = to_csc(power_law_graph(24, 80, feature_length=4, seed=seed))
    delta = DeltaGraph(base)
    sampler = SubgraphSampler(delta, num_hops=2, fanout=4, seed=seed)
    stream = UpdateStream(events=(), policy=policy)
    stats = ConsistencyStats(policy=policy)
    state = StreamState(
        delta, sampler, stream, stats,
        result_cache=LRUCache(64) if with_result_cache else None,
        chips=[_FakeChip() for _ in range(chips)])
    return delta, sampler, state, stats


def _edge_event(update_id, src, dst):
    return UpdateEvent(update_id=update_id, kind="edge", arrival_time_s=0.0,
                       src=src, dst=dst)


def _feature_event(update_id, vertex, feature_seed=9):
    return UpdateEvent(update_id=update_id, kind="feature",
                       arrival_time_s=0.0, src=vertex,
                       feature_seed=feature_seed)


@pytest.mark.parametrize("policy", ["none", "targeted"])
def test_result_cache_kill(policy):
    """A cached result whose sampled neighbourhood mutates is a stale serve
    under ``none`` and an invalidated entry under ``targeted``."""
    delta, sampler, state, stats = _stream_state(policy)
    target = 0
    sample = sampler.extract(target)
    state.result_cache.put(target, object())
    state.register_result(target, now=0.0)
    # mutate a vertex inside the cached result's dependency set
    dirty = int(sample.vertex_array[-1])
    state.apply(1.0, _feature_event(0, dirty))
    state.on_result_hit(target, now=2.0)
    if policy == "none":
        assert stats.stale_results == 1
        assert stats.stale_beyond_budget == 1
        assert stats.invalidations["result"] == 0
    else:
        assert stats.stale_results == 0
        assert stats.stale_beyond_budget == 0
        assert stats.invalidations["result"] == 1
        assert state.result_cache.peek(target) is None


@pytest.mark.parametrize("policy", ["none", "targeted"])
def test_feature_cache_kill(policy):
    """A per-chip feature-cache entry outlives a feature write under
    ``none`` (stale stamp on hit) and is dropped under ``targeted``."""
    delta, sampler, state, stats = _stream_state(policy, chips=2)
    vertex = 5
    stamp = delta.feature_version(vertex)
    for chip in state.chips:
        chip.feature_cache.put(vertex, stamp)
    state.apply(1.0, _feature_event(0, vertex))
    if policy == "none":
        cached = state.chips[0].feature_cache.peek(vertex)
        assert cached is not None
        state.on_feature_hit(vertex, cached, now=2.0)
        assert stats.stale_features == 1
        assert stats.invalidations["feature"] == 0
    else:
        assert all(chip.feature_cache.peek(vertex) is None
                   for chip in state.chips)
        assert stats.invalidations["feature"] == 2
        assert stats.stale_features == 0


@pytest.mark.parametrize("policy", ["none", "targeted"])
def test_sampler_memo_kill(policy):
    """A memoised sample whose neighbourhood gains an edge disagrees with a
    fresh extraction under ``none`` (check_batch counts it) and is
    re-extracted identically under ``targeted``."""
    delta, sampler, state, stats = _stream_state(policy,
                                                 with_result_cache=False)
    target = 0
    sampler.extract(target)
    sampler.signature(target)
    # insert an in-edge on the target itself: its 1-hop list must change
    fresh_src = next(v for v in range(delta.num_vertices)
                     if not delta.has_edge(v, target))
    state.apply(1.0, _edge_event(0, fresh_src, target))

    class _Batch:
        requests = [Request(request_id=0, target_vertex=target,
                            arrival_time_s=1.5)]

    state.check_batch(_Batch, now=1.5)
    memo = sampler.extract(target)
    fresh = sampler.extract_fresh(target)
    if policy == "none":
        assert stats.stale_samples == 1
        assert not np.array_equal(memo.vertex_array, fresh.vertex_array)
        assert sampler.invalidated_samples == 0
    else:
        assert stats.stale_samples == 0 and stats.stale_signatures == 0
        assert np.array_equal(memo.vertex_array, fresh.vertex_array)
        assert sampler.invalidated_samples >= 1  # the memo entry was dropped
        assert np.array_equal(sampler.signature(target),
                              sampler.signature_fresh(target))


@pytest.mark.parametrize("policy", ["none", "targeted"])
def test_halo_cache_kill(policy):
    """Sharded execution: a ghost-feature halo entry outlives a feature
    write under ``none`` and is invalidated under ``targeted``."""
    report = run_serving(
        dataset="IB", num_requests=96, rate_rps=2000.0, seed=4,
        config=FleetConfig(
            num_chips=2, cache_size=0,
            sharding=ShardingConfig(num_shards=2, partitioner="hash",
                                    seed=4)),
        update_rate=0.5, update_mix="feature=1.0", invalidation=policy)
    consistency = report.consistency
    assert consistency is not None
    if policy == "none":
        assert consistency.stale_halo > 0
        assert consistency.invalidations["halo"] == 0
    else:
        assert consistency.stale_halo == 0
        assert consistency.invalidations["halo"] > 0


@pytest.mark.parametrize("policy", ["none", "targeted"])
def test_shard_plan_kill(policy):
    """A streaming vertex insert lands outside the frozen shard plan: under
    ``targeted`` ownership is extended eagerly (counted as a shard_plan
    invalidation, zero misses); under ``none`` the executor discovers the
    hole lazily and counts a shard-plan miss."""
    report = run_serving(
        dataset="IB", num_requests=96, rate_rps=2000.0, seed=4,
        config=FleetConfig(
            num_chips=2, cache_size=0,
            sharding=ShardingConfig(num_shards=2, partitioner="hash",
                                    seed=4)),
        update_rate=0.5, update_mix="vertex=1.0", invalidation=policy)
    consistency = report.consistency
    assert consistency is not None
    assert consistency.vertex_updates > 0
    if policy == "none":
        assert consistency.shard_plan_misses > 0
        assert consistency.invalidations["shard_plan"] == 0
    else:
        assert consistency.shard_plan_misses == 0
        assert consistency.invalidations["shard_plan"] \
            == consistency.vertex_updates


# --------------------------------------------------------------------------- #
# End-to-end: served results stay consistent while the graph mutates
# --------------------------------------------------------------------------- #
def _mutating_run(invalidation, seed=6, **kwargs):
    return run_serving(dataset="IB", num_requests=160, rate_rps=3000.0,
                       seed=seed, config=FleetConfig(num_chips=2),
                       update_rate=0.2, invalidation=invalidation, **kwargs)


def test_targeted_run_serves_zero_stale_results():
    report = _mutating_run("targeted")
    consistency = report.consistency
    assert consistency is not None
    assert consistency.updates_applied > 0
    assert consistency.checks > 0
    assert consistency.stale_serves == 0
    assert consistency.stale_beyond_budget == 0
    assert consistency.final_version > 0


def test_none_run_counts_stale_serves():
    """The kill switch: with invalidation off the same run must detect
    staleness -- proving the consistency tracker itself works."""
    report = _mutating_run("none")
    consistency = report.consistency
    assert consistency is not None
    assert consistency.stale_serves > 0
    assert consistency.stale_beyond_budget > 0
    assert consistency.total_invalidations == 0


def test_flush_run_serves_zero_stale_results():
    report = _mutating_run("flush")
    consistency = report.consistency
    assert consistency is not None
    assert consistency.stale_serves == 0
    assert consistency.total_invalidations > 0


def test_mutating_run_is_deterministic():
    """Two identical mutating runs must agree bit-for-bit, including every
    consistency counter (run-to-run nondeterminism here would make the
    whole differential story unfalsifiable)."""
    a = _mutating_run("targeted")
    b = _mutating_run("targeted")
    assert a.to_dict() == b.to_dict()


def test_static_run_report_is_untouched_by_streaming_plumbing():
    """updates=None runs carry no consistency block and match a pre-streaming
    run exactly (the duck-typed hook must be invisible when unarmed)."""
    report = run_serving(dataset="IB", num_requests=64, rate_rps=1000.0,
                         seed=6, config=FleetConfig(num_chips=2))
    assert report.consistency is None
    assert "consistency" not in report.to_dict()


# --------------------------------------------------------------------------- #
# Regression: the two latent cache-keying bugs streaming surfaced
# --------------------------------------------------------------------------- #
def test_workloads_for_keys_on_graph_version():
    """Bug #1: the workloads memo keyed on id(graph) only, so a mutating
    DeltaGraph (stable identity, changing structure) was served the stale
    flattening forever."""
    from repro.models.model_zoo import build_model, workloads_for

    base = load_dataset("IB", seed=0, scale_factor=16)
    delta = DeltaGraph(base)
    model = build_model("GCN", input_length=delta.feature_length)
    before = workloads_for(model, delta)
    # unmutated: the memo serves the same flattening objects back
    assert workloads_for(model, delta)[0] is before[0]
    # mutated: the stable identity must no longer satisfy the memo
    delta.add_vertex(feature_row(delta.feature_length, 1))
    after = workloads_for(model, delta)
    assert after[0] is not before[0]
    assert after[0].graph.num_vertices == delta.num_vertices
    # and the new version memoises in its own right
    assert workloads_for(model, delta)[0] is after[0]


def test_probe_cache_keys_on_graph_version():
    """Bug #2: the calibration probe memo keyed on the graph's identity but
    not its version, so recalibrating after mutations replayed the stale
    service time."""
    from repro.core import HyGCNConfig
    from repro.serving.fleet import _PROBE_CACHE, probe_batch_service_time_s
    from repro.models.model_zoo import build_model

    base = load_dataset("IB", seed=0, scale_factor=16)
    delta = DeltaGraph(base)
    sampler = SubgraphSampler(delta, num_hops=1, fanout=4, seed=0)
    model = build_model("GCN", input_length=delta.feature_length)
    keys_before = set(_PROBE_CACHE.keys())
    probe_batch_service_time_s(HyGCNConfig(), sampler, model, "IB", 8,
                               delta.num_vertices, 0)
    first_keys = set(_PROBE_CACHE.keys()) - keys_before
    delta.add_edge(0, 1)
    probe_batch_service_time_s(HyGCNConfig(), sampler, model, "IB", 8,
                               delta.num_vertices, 0)
    second_keys = set(_PROBE_CACHE.keys()) - keys_before - first_keys
    # a mutated graph must probe under a fresh key, not reuse the stale one
    assert first_keys and second_keys


def test_probe_leaves_no_memo_residue_on_mutable_samplers():
    """Probe hygiene: on a mutating run the calibration probe must not leave
    entries in the run sampler's memo -- a cold vs. warm process-wide probe
    cache would otherwise change the run's invalidation accounting."""
    from repro.core import HyGCNConfig
    from repro.serving.fleet import clear_probe_cache, \
        probe_batch_service_time_s
    from repro.models.model_zoo import build_model

    base = load_dataset("IB", seed=0, scale_factor=16)
    delta = DeltaGraph(base)
    sampler = SubgraphSampler(delta, num_hops=2, fanout=4, seed=0)
    model = build_model("GCN", input_length=delta.feature_length)
    clear_probe_cache()
    probe_batch_service_time_s(HyGCNConfig(), sampler, model, "IB", 8,
                               delta.num_vertices, 0)
    assert len(sampler._memo) == 0
    assert len(sampler._sig_memo) == 0
    assert sampler._vertex_keys == {}
