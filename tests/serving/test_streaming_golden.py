"""Golden fixtures for mutating (streaming-update) serving runs.

``test_streaming_consistency.py`` proves the streaming machinery correct
differentially *within one build*; this pins what it produces *across*
builds: a committed v2 request trace (format
:data:`~repro.serving.trace.TRACE_VERSION_UPDATES`, carrying the update
stream alongside the requests) must stay loadable, replaying it must keep
producing bit-for-bit the committed mixed update+query report JSON, and
re-running the capturing configuration must keep writing byte-for-byte
the committed trace file.  Any change to the delta overlay, the
invalidation matrix, the consistency tracker, the event loop interleaving
or the trace codec that shifts numbers fails here explicitly instead of
sliding through as a silent behaviour change.

When a change *intentionally* alters the numbers, regenerate with::

    PYTHONPATH=src python tests/serving/test_streaming_golden.py

and commit both fixture diffs alongside the change that explains them.
"""

import gzip
import json
import os

from repro.graphs import load_dataset
from repro.models.model_zoo import clear_workloads_cache
from repro.serving.fleet import FleetConfig, clear_probe_cache, run_serving
from repro.serving.streaming import clear_update_stream_cache
from repro.serving.trace import (TRACE_VERSION_UPDATES, TraceWriter,
                                 load_request_trace)

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
TRACE_FIXTURE = os.path.join(FIXTURE_DIR, "streaming_trace_ib_seed9.bin")
REPORT_FIXTURE = os.path.join(FIXTURE_DIR, "streaming_report_ib_seed9.json")

DATASET = "IB"
NUM_REQUESTS = 96
RATE_RPS = 60.0
SEED = 9
CONFIG = dict(num_chips=2, cache_size=64)
UPDATE_RATE = 0.25
UPDATE_MIX = "edge=0.6,feature=0.3,vertex=0.1"
INVALIDATION = "targeted"


def _clear_caches():
    clear_probe_cache()
    clear_workloads_cache()
    clear_update_stream_cache()
    load_dataset.cache_clear()


def _capture_run(capture=None):
    return run_serving(dataset=DATASET, num_requests=NUM_REQUESTS,
                       rate_rps=RATE_RPS, config=FleetConfig(**CONFIG),
                       seed=SEED, update_rate=UPDATE_RATE,
                       update_mix=UPDATE_MIX, invalidation=INVALIDATION,
                       capture=capture)


def _replay_committed_trace():
    """Replay the committed mutating trace -> report JSON."""
    _clear_caches()
    report = run_serving(dataset=DATASET, config=FleetConfig(**CONFIG),
                         seed=SEED,
                         replay=load_request_trace(TRACE_FIXTURE))
    return json.dumps(report.to_dict(), sort_keys=True, indent=2,
                      default=float)


def test_committed_streaming_trace_replays_to_golden_report():
    with open(REPORT_FIXTURE) as handle:
        expected = handle.read()
    assert _replay_committed_trace() == expected.rstrip("\n"), (
        "replaying the committed streaming trace diverged from the "
        "committed report; if the change is intentional, regenerate via "
        "`PYTHONPATH=src python tests/serving/test_streaming_golden.py`"
    )


def test_committed_report_contains_consistency_block():
    """The committed payload itself must carry the streaming accounting --
    a silent loss of the consistency block would otherwise still replay
    'bit-for-bit'."""
    with open(REPORT_FIXTURE) as handle:
        payload = json.load(handle)
    consistency = payload["consistency"]
    assert consistency["policy"] == INVALIDATION
    assert consistency["updates_applied"] > 0
    assert consistency["stale_serves"] == 0
    assert consistency["stale_beyond_budget"] == 0
    assert consistency["total_invalidations"] > 0


def test_committed_streaming_trace_metadata_is_stable():
    trace = load_request_trace(TRACE_FIXTURE)
    assert trace.num_requests == NUM_REQUESTS
    assert trace.num_updates == int(round(UPDATE_RATE * NUM_REQUESTS))
    assert not trace.multi_tenant
    assert trace.meta["dataset"] == DATASET
    assert trace.meta["seed"] == SEED
    assert trace.meta["update_rate"] == UPDATE_RATE
    assert trace.meta["update_mix"] == UPDATE_MIX
    assert trace.meta["invalidation"] == INVALIDATION
    # the on-disk frame itself must carry the v2 format stamp
    from repro.serving.trace import TRACE_MAGIC
    with open(TRACE_FIXTURE, "rb") as handle:
        frame = gzip.decompress(handle.read())
    version = int.from_bytes(frame[len(TRACE_MAGIC):len(TRACE_MAGIC) + 2],
                             "little")
    assert version == TRACE_VERSION_UPDATES


def test_recapture_reproduces_committed_streaming_trace_bytes():
    """The mutating capture path is pinned too: re-running the capturing
    configuration writes byte-for-byte the committed v2 trace."""
    capture = TraceWriter()
    _clear_caches()
    _capture_run(capture)
    rebuilt = os.path.join(FIXTURE_DIR, "_rebuilt_streaming.bin")
    try:
        capture.write(rebuilt)
        with open(TRACE_FIXTURE, "rb") as a, open(rebuilt, "rb") as b:
            assert a.read() == b.read(), (
                "the streaming capture no longer reproduces the committed "
                "trace; if the change is intentional, regenerate via "
                "`PYTHONPATH=src python "
                "tests/serving/test_streaming_golden.py`"
            )
    finally:
        if os.path.exists(rebuilt):
            os.remove(rebuilt)


if __name__ == "__main__":
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    capture = TraceWriter()
    _clear_caches()
    _capture_run(capture)
    capture.write(TRACE_FIXTURE)
    print(f"wrote {TRACE_FIXTURE} ({os.path.getsize(TRACE_FIXTURE)} bytes)")
    report_json = _replay_committed_trace()
    with open(REPORT_FIXTURE, "w") as handle:
        handle.write(report_json + "\n")
    print(f"wrote {REPORT_FIXTURE} ({len(report_json)} bytes)")
