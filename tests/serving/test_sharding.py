"""Tests for sharded multi-chip serving (:mod:`repro.serving.sharding`).

Covers the partitioner properties (exclusive ownership, halo/owned
disjointness, edge-cut recomputation, per-seed determinism), the
interconnect cost model, the three acceptance criteria of the subsystem
(1-shard bit-for-bit equality with the unsharded simulator, traced ==
untraced bit-for-bit, locality beating hash on edge-cut AND p99 on a
4-shard group under zipf-1.2 traffic) and the CLI arming-flag contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import main
from repro.graphs import erdos_renyi_graph, power_law_graph
from repro.graphs.partition import build_shard_plan
from repro.serving import (
    PARTITIONERS,
    FleetConfig,
    Instrumentation,
    InterconnectConfig,
    ShardingConfig,
    ShardingStats,
    TenantConfig,
    clear_probe_cache,
    clear_shard_plan_cache,
    run_multi_tenant,
    run_serving,
    shard_plan_for,
)
from repro.serving.sharding import _SHARD_PLAN_CACHE


def _fresh():
    clear_probe_cache()
    clear_shard_plan_cache()


def _serve(num_chips, sharding, *, requests=40, observe=None, skew=1.2,
           rate=200.0):
    _fresh()
    cfg = FleetConfig(num_chips=num_chips, sharding=sharding, seed=0)
    return run_serving(dataset="IB", model_name="GCN", num_requests=requests,
                       rate_rps=rate, popularity_skew=skew, config=cfg,
                       seed=0, observe=observe, utilization_target=0.7)


# --------------------------------------------------------------------------- #
# Partitioner properties
# --------------------------------------------------------------------------- #
_graphs = st.builds(
    erdos_renyi_graph,
    st.sampled_from([24, 40, 64]),
    st.sampled_from([96, 160]),
    feature_length=st.just(4),
    seed=st.integers(min_value=0, max_value=3),
)


class TestPartitionerProperties:
    @settings(max_examples=20, deadline=None)
    @given(graph=_graphs, num_shards=st.integers(min_value=1, max_value=5),
           name=st.sampled_from(sorted(PARTITIONERS)),
           seed=st.integers(min_value=0, max_value=7))
    def test_every_vertex_owned_by_exactly_one_shard(self, graph, num_shards,
                                                     name, seed):
        owner = PARTITIONERS[name](graph, num_shards, seed)
        plan = build_shard_plan(graph, owner, partitioner=name, seed=seed)
        assert owner.shape == (graph.num_vertices,)
        assert owner.min() >= 0 and owner.max() < num_shards
        assert int(plan.shard_sizes.sum()) == graph.num_vertices
        covered = np.concatenate([plan.owned(s)
                                  for s in range(plan.num_shards)])
        np.testing.assert_array_equal(np.sort(covered),
                                      np.arange(graph.num_vertices))

    @settings(max_examples=20, deadline=None)
    @given(graph=_graphs, num_shards=st.integers(min_value=2, max_value=5),
           name=st.sampled_from(sorted(PARTITIONERS)),
           seed=st.integers(min_value=0, max_value=7))
    def test_halo_sets_disjoint_from_owned_sets(self, graph, num_shards,
                                                name, seed):
        owner = PARTITIONERS[name](graph, num_shards, seed)
        plan = build_shard_plan(graph, owner)
        for s in range(plan.num_shards):
            assert np.intersect1d(plan.halo[s], plan.owned(s)).size == 0

    @settings(max_examples=20, deadline=None)
    @given(graph=_graphs, num_shards=st.integers(min_value=1, max_value=5),
           name=st.sampled_from(sorted(PARTITIONERS)),
           seed=st.integers(min_value=0, max_value=7))
    def test_edge_cut_identical_when_recomputed(self, graph, num_shards,
                                                name, seed):
        owner = PARTITIONERS[name](graph, num_shards, seed)
        plan = build_shard_plan(graph, owner)
        indptr = np.asarray(graph.csc.indptr)
        indices = np.asarray(graph.csc.indices)
        dst_owner = np.repeat(plan.owner, np.diff(indptr))
        recomputed = int(np.count_nonzero(plan.owner[indices] != dst_owner))
        assert plan.edge_cut == recomputed
        assert plan.num_edges == graph.num_edges
        # the halo sets are exactly the cut edges' foreign sources
        assert plan.halo_vertices == sum(
            np.unique(indices[(plan.owner[indices] != dst_owner)
                              & (dst_owner == s)]).size
            for s in range(plan.num_shards))

    @settings(max_examples=10, deadline=None)
    @given(num_shards=st.integers(min_value=2, max_value=4),
           name=st.sampled_from(sorted(PARTITIONERS)),
           seed=st.integers(min_value=0, max_value=7))
    def test_deterministic_per_seed(self, num_shards, name, seed):
        graph = power_law_graph(48, 6, feature_length=4, seed=1)
        first = PARTITIONERS[name](graph, num_shards, seed)
        second = PARTITIONERS[name](graph, num_shards, seed)
        np.testing.assert_array_equal(first, second)

    def test_hash_seed_changes_assignment(self):
        graph = erdos_renyi_graph(64, 256, feature_length=4, seed=0)
        a = PARTITIONERS["hash"](graph, 4, seed=0)
        b = PARTITIONERS["hash"](graph, 4, seed=1)
        assert not np.array_equal(a, b)

    def test_locality_respects_capacity(self):
        graph = power_law_graph(50, 5, feature_length=4, seed=2)
        owner = PARTITIONERS["locality"](graph, 4)
        sizes = np.bincount(owner, minlength=4)
        assert sizes.max() <= -(-graph.num_vertices // 4)

    def test_locality_beats_hash_on_edge_cut(self):
        graph = power_law_graph(128, 8, feature_length=4, seed=0)
        cuts = {}
        for name in PARTITIONERS:
            plan = build_shard_plan(graph, PARTITIONERS[name](graph, 4))
            cuts[name] = plan.edge_cut
        assert cuts["locality"] < cuts["hash"]

    def test_build_shard_plan_validates_owner(self):
        graph = erdos_renyi_graph(16, 32, feature_length=4, seed=0)
        with pytest.raises(ValueError, match="shape"):
            build_shard_plan(graph, np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError, match=">= 0"):
            build_shard_plan(graph,
                             np.full(graph.num_vertices, -1, dtype=np.int64))


# --------------------------------------------------------------------------- #
# Configs and the interconnect cost model
# --------------------------------------------------------------------------- #
class TestConfigs:
    def test_transfer_time_zero_bytes_is_free(self):
        assert InterconnectConfig().transfer_time_s(0) == 0.0
        assert InterconnectConfig().transfer_time_s(-5) == 0.0

    def test_transfer_time_worked_example(self):
        link = InterconnectConfig(link_gbps=1.0, latency_ns=100.0,
                                  message_bytes=100)
        # 250 bytes -> 3 messages of latency, 250 ns of serialisation
        assert link.transfer_time_s(250) == pytest.approx(
            (3 * 100.0 + 250.0) * 1e-9)

    def test_interconnect_validation(self):
        with pytest.raises(ValueError):
            InterconnectConfig(link_gbps=0.0)
        with pytest.raises(ValueError):
            InterconnectConfig(latency_ns=-1.0)
        with pytest.raises(ValueError):
            InterconnectConfig(message_bytes=0)

    def test_sharding_config_validation(self):
        with pytest.raises(ValueError):
            ShardingConfig(num_shards=0)
        with pytest.raises(ValueError):
            ShardingConfig(num_shards=2, partitioner="metis")
        with pytest.raises(ValueError):
            ShardingConfig(num_shards=2, halo_cache_mb=-1.0)

    def test_fleet_requires_one_chip_per_shard(self):
        with pytest.raises(ValueError, match="one chip per shard"):
            FleetConfig(num_chips=2, sharding=ShardingConfig(num_shards=4))

    def test_sharding_excludes_control_plane(self):
        from repro.serving import ControlConfig
        cfg = FleetConfig(num_chips=2, sharding=ShardingConfig(num_shards=2))
        with pytest.raises(ValueError, match="control plane"):
            _fresh()
            run_serving(dataset="IB", num_requests=4, rate_rps=100.0,
                        config=cfg, seed=0,
                        control=ControlConfig(autoscale="threshold"))

    def test_shard_plan_memoised(self):
        from repro.graphs import load_dataset
        _fresh()
        graph = load_dataset("IB", seed=0, scale_factor=16)
        cfg = ShardingConfig(num_shards=2)
        plan = shard_plan_for(graph, cfg)
        assert shard_plan_for(graph, cfg) is plan
        assert len(_SHARD_PLAN_CACHE) == 1
        clear_shard_plan_cache()
        assert not _SHARD_PLAN_CACHE

    def test_sharding_stats_empty_rates(self):
        stats = ShardingStats(num_shards=2, partitioner="hash")
        assert stats.halo_hit_rate == 0.0
        assert stats.load_imbalance == 0.0
        assert stats.edge_cut_fraction == 0.0
        assert "edge_cut_pct" in stats.summary()


# --------------------------------------------------------------------------- #
# Acceptance criteria
# --------------------------------------------------------------------------- #
class TestAcceptance:
    def test_one_shard_plan_matches_unsharded_report_bit_for_bit(self):
        unsharded = _serve(1, None)
        sharded = _serve(1, ShardingConfig(num_shards=1))
        expected = unsharded.to_dict()
        got = sharded.to_dict()
        # the sharded run carries its (degenerate) ShardingStats; every
        # other byte of the payload must be identical
        assert expected.pop("sharding") is None
        assert got.pop("sharding") is not None
        assert got == expected

    def test_traced_sharded_run_equals_untraced_bit_for_bit(self):
        plain = _serve(2, ShardingConfig(num_shards=2))
        observe = Instrumentation(trace=True, metrics=True)
        traced = _serve(2, ShardingConfig(num_shards=2), observe=observe)
        assert traced.to_dict() == plain.to_dict()
        assert any(e.get("cat") == "shard" for e in observe.events)

    def test_locality_beats_hash_on_edge_cut_and_p99(self):
        # identical zipf-1.2 traffic at a calibrated utilization: the
        # partitioners see the same arrival stream (same seed, rate
        # calibration is sharding-oblivious), so the tails differ only
        # through edge-cut-driven halo traffic
        reports = {}
        for name in ("hash", "locality"):
            reports[name] = _serve(
                4, ShardingConfig(num_shards=4, partitioner=name),
                requests=200, rate=None)
        hash_stats = reports["hash"].sharding
        locality_stats = reports["locality"].sharding
        assert locality_stats.edge_cut < hash_stats.edge_cut
        assert reports["locality"].p99_latency_s \
            < reports["hash"].p99_latency_s
        # the report stamps the sharded percentiles it serves
        assert locality_stats.p99_s == reports["locality"].p99_latency_s

    def test_sharded_report_accounting(self):
        report = _serve(2, ShardingConfig(num_shards=2), requests=60)
        stats = report.sharding
        assert stats.sharded_batches > 0
        assert stats.sub_batches >= stats.sharded_batches
        assert stats.halo_lookups >= stats.halo_hits
        feature_bytes = 136 * 8  # IB: feature_length 136, float64
        assert stats.halo_bytes_moved == \
            (stats.halo_lookups - stats.halo_hits) * feature_bytes
        assert stats.halo_bytes_saved == stats.halo_hits * feature_bytes
        assert len(stats.shard_busy_s) == 2
        # the leader's requests_served counts every batched request once;
        # the executor's per-shard split must cover the same population
        assert sum(stats.shard_requests) == report.chips[0].requests_served
        payload = report.to_dict()
        assert payload["sharding"]["num_shards"] == 2

    def test_halo_cache_saves_bytes(self):
        warm = _serve(2, ShardingConfig(num_shards=2, halo_cache_mb=8.0),
                      requests=80)
        cold = _serve(2, ShardingConfig(num_shards=2, halo_cache_mb=0.0),
                      requests=80)
        assert cold.sharding.halo_hits == 0
        assert cold.sharding.halo_bytes_saved == 0.0
        assert warm.sharding.halo_hits > 0
        assert warm.sharding.halo_bytes_saved > 0.0
        assert warm.sharding.halo_bytes_moved \
            < cold.sharding.halo_bytes_moved

    def test_member_chips_do_work(self):
        report = _serve(4, ShardingConfig(num_shards=4), requests=120)
        # the leader serves every batch; the members' busy time is the
        # sub-batch work the executor accounted to them
        busy = [c.busy_s for c in report.chips]
        assert busy[0] > 0.0
        assert any(b > 0.0 for b in busy[1:])


# --------------------------------------------------------------------------- #
# Multi-tenant sharding
# --------------------------------------------------------------------------- #
class TestMultiTenantSharding:
    def test_shared_fleet_sharded_run(self):
        _fresh()
        fleet = FleetConfig(num_chips=2,
                            sharding=ShardingConfig(num_shards=2), seed=0)
        tenants = [TenantConfig(name="a", dataset="IB", num_requests=25),
                   TenantConfig(name="b", dataset="IB", num_requests=25)]
        report = run_multi_tenant(tenants, fleet,
                                  include_isolation_baseline=False)
        stats = report.sharding
        assert stats is not None
        assert stats.sharded_batches > 0
        assert stats.p99_s > 0.0
        assert report.to_dict()["sharding"]["partitioner"] == "locality"

    def test_control_plane_rejected_on_sharded_fleet(self):
        from repro.serving import ControlConfig
        _fresh()
        fleet = FleetConfig(num_chips=2,
                            sharding=ShardingConfig(num_shards=2), seed=0)
        with pytest.raises(ValueError, match="control plane"):
            run_multi_tenant([TenantConfig(name="a", dataset="IB",
                                           num_requests=10)],
                             fleet, include_isolation_baseline=False,
                             control=ControlConfig(autoscale="threshold"))


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestShardingCLI:
    def test_tuning_flags_error_without_arming_flag(self, capsys):
        assert main(["serve", "--partitioner", "hash",
                     "--requests", "4"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_sharded_serve_prints_table(self, capsys):
        _fresh()
        code = main(["serve", "--dataset", "IB", "--shards", "2",
                     "--requests", "10", "--rate", "200", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded execution (docs/sharding.md)" in out
        assert "edge_cut_pct" in out

    def test_shards_overrides_chips(self, capsys):
        _fresh()
        code = main(["serve", "--dataset", "IB", "--shards", "2",
                     "--chips", "7", "--requests", "10", "--rate", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 chips" in out

    def test_shards_with_control_plane_exits_2(self, capsys):
        _fresh()
        assert main(["serve", "--dataset", "IB", "--shards", "2",
                     "--requests", "10", "--rate", "200",
                     "--autoscale", "threshold"]) == 2
        assert "control plane" in capsys.readouterr().err
