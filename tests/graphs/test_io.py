"""Tests for graph persistence (npz archives and edge-list files)."""

import numpy as np
import pytest

from repro.graphs import (
    erdos_renyi_graph,
    export_edge_list,
    import_edge_list,
    load_graph,
    save_graph,
)


@pytest.fixture
def graph():
    return erdos_renyi_graph(48, 192, feature_length=12, seed=3)


class TestNpzRoundTrip:
    def test_roundtrip_structure_and_features(self, graph, tmp_path):
        path = save_graph(graph, tmp_path / "graph.npz")
        loaded = load_graph(path)
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.num_edges == graph.num_edges
        assert loaded.name == graph.name
        np.testing.assert_array_equal(loaded.csr.indptr, graph.csr.indptr)
        np.testing.assert_array_equal(loaded.csr.indices, graph.csr.indices)
        np.testing.assert_allclose(loaded.features, graph.features)

    def test_extension_added_automatically(self, graph, tmp_path):
        path = save_graph(graph, tmp_path / "graph")
        assert str(path).endswith(".npz")
        loaded = load_graph(tmp_path / "graph")
        assert loaded.num_edges == graph.num_edges

    def test_creates_parent_directories(self, graph, tmp_path):
        path = save_graph(graph, tmp_path / "nested" / "dir" / "g.npz")
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "does_not_exist.npz")


class TestEdgeListRoundTrip:
    def test_export_then_import(self, graph, tmp_path):
        path = export_edge_list(graph, tmp_path / "edges.txt")
        imported = import_edge_list(path, num_vertices=graph.num_vertices,
                                    feature_length=4)
        assert imported.num_vertices == graph.num_vertices
        assert imported.num_edges == graph.num_edges
        # same adjacency structure
        np.testing.assert_array_equal(np.sort(imported.csr.indices),
                                      np.sort(graph.csr.indices))

    def test_header_and_comments_skipped(self, graph, tmp_path):
        path = export_edge_list(graph, tmp_path / "edges.txt", header=True)
        first_line = open(path).readline()
        assert first_line.startswith("#")
        imported = import_edge_list(path)
        assert imported.num_edges == graph.num_edges

    def test_vertex_count_inferred(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n1 2\n4 0\n")
        g = import_edge_list(path)
        assert g.num_vertices == 5
        assert g.num_edges == 3

    def test_undirected_import(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n")
        g = import_edge_list(path, undirected=True)
        assert g.num_edges == 2
