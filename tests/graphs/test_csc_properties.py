"""Property-based invariants of the array-native CSC core.

A :class:`~repro.graphs.csc.CSCGraph` is three contiguous arrays with a
handful of structural invariants (``colptr`` monotone and consistent with
``row``, per-column sources canonically sorted, features row-aligned).
Rather than enumerating cases by hand, these tests drive the conversion
shims and the samplers with a seeded random corpus of edge lists --
including the degenerate shapes (empty graphs, isolated vertices,
self-loops) that array code tends to get wrong at the boundaries -- and
assert the invariants hold for every member.  ``hypothesis`` generates
the corpus where available; the explicit edge-case tests below run
everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import CSCGraph, Graph, from_csc, graphs_equal, to_csc
from repro.serving.sampler import SubgraphSampler


def _edge_list_graphs(draw_edges, num_vertices, undirected, seed):
    graph = Graph.from_edge_list(draw_edges, num_vertices, feature_length=4,
                                 undirected=undirected, seed=seed)
    return graph, to_csc(graph)


@st.composite
def random_graphs(draw):
    num_vertices = draw(st.integers(min_value=1, max_value=40))
    num_edges = draw(st.integers(min_value=0, max_value=120))
    vertex = st.integers(min_value=0, max_value=num_vertices - 1)
    edges = draw(st.lists(st.tuples(vertex, vertex), min_size=0,
                          max_size=num_edges))
    undirected = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=7))
    return _edge_list_graphs(edges, num_vertices, undirected, seed)


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_csc_structural_invariants(pair):
    graph, csc = pair
    colptr, row = csc.colptr, csc.row
    # shape: one offset per vertex plus the terminator, rows cover all edges
    assert colptr.shape == (csc.num_vertices + 1,)
    assert colptr[0] == 0
    assert colptr[-1] == row.shape[0] == csc.num_edges
    assert np.all(np.diff(colptr) >= 0)
    # every source id is a valid vertex, canonically sorted per column
    if row.size:
        assert 0 <= row.min() and row.max() < csc.num_vertices
    for v in range(csc.num_vertices):
        segment = row[colptr[v]:colptr[v + 1]]
        assert np.all(np.diff(segment) > 0)  # sorted, no duplicate edges
        assert np.array_equal(segment, np.sort(graph.in_neighbors(v)))
    # contiguous int64 arrays are the layout contract
    assert colptr.flags["C_CONTIGUOUS"] and row.flags["C_CONTIGUOUS"]
    assert colptr.dtype == np.int64 and row.dtype == np.int64
    assert csc.features.shape[0] == csc.num_vertices


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_csc_round_trip(pair):
    graph, csc = pair
    # object -> CSC -> object -> CSC: every hop preserves the graph
    assert graphs_equal(csc, graph)
    assert graphs_equal(to_csc(from_csc(csc)), csc)
    back = from_csc(csc)
    assert not back.is_csc
    assert np.array_equal(back.csr.indptr, graph.csr.indptr)
    assert np.array_equal(back.csr.indices, graph.csr.indices)
    assert back.features is csc.features  # shims share, never copy
    # to_csc is idempotent: already-CSC graphs come back as-is
    assert to_csc(csc) is csc


@settings(max_examples=30, deadline=None)
@given(random_graphs(), st.integers(min_value=0, max_value=3),
       st.integers(min_value=1, max_value=8))
def test_sampling_deterministic_per_seed(pair, num_hops, fanout):
    _, csc = pair
    target = csc.num_vertices // 2
    a = SubgraphSampler(csc, num_hops=num_hops, fanout=fanout, seed=11)
    b = SubgraphSampler(csc, num_hops=num_hops, fanout=fanout, seed=11)
    sample_a, sample_b = a.extract(target), b.extract(target)
    assert sample_a.vertices == sample_b.vertices
    assert np.array_equal(sample_a.graph.csr.indptr,
                          sample_b.graph.csr.indptr)
    assert np.array_equal(sample_a.graph.csr.indices,
                          sample_b.graph.csr.indices)
    assert np.array_equal(a.signature(target), b.signature(target))


def test_sampling_diverges_across_seeds():
    """Different sampler seeds must be able to produce different samples."""
    graph = Graph.from_edge_list([(i, 0) for i in range(1, 64)], 64,
                                 feature_length=4, undirected=False)
    csc = to_csc(graph)
    samples = {
        SubgraphSampler(csc, num_hops=1, fanout=4, seed=s).extract(0).vertices
        for s in range(12)
    }
    assert len(samples) > 1


def test_empty_graph():
    csc = to_csc(Graph.from_edge_list([], 3, feature_length=4))
    assert csc.num_edges == 0
    assert np.array_equal(csc.colptr, np.zeros(4, dtype=np.int64))
    assert csc.row.size == 0
    sample = SubgraphSampler(csc, num_hops=2, fanout=4).extract(1)
    assert sample.vertices == (1,)
    assert sample.num_edges == 0
    assert graphs_equal(to_csc(from_csc(csc)), csc)


def test_isolated_vertex():
    csc = to_csc(Graph.from_edge_list([(0, 1)], 3, feature_length=4))
    assert csc.in_degrees()[2] == 0
    assert csc.in_neighbors(2).size == 0
    sample = SubgraphSampler(csc, num_hops=2, fanout=4).extract(2)
    assert sample.vertices == (2,)


def test_self_loop():
    csc = to_csc(Graph.from_edge_list([(0, 0), (0, 1)], 2, feature_length=4,
                                      undirected=False))
    assert 0 in csc.in_neighbors(0)
    sample = SubgraphSampler(csc, num_hops=3, fanout=4).extract(0)
    # the self-loop must not re-add the target or loop forever
    assert sample.vertices[0] == 0
    assert len(set(sample.vertices)) == len(sample.vertices)
    assert graphs_equal(to_csc(from_csc(csc)), csc)


def test_single_vertex_graph():
    csc = to_csc(Graph.from_edge_list([], 1, feature_length=4))
    sample = SubgraphSampler(csc, num_hops=2, fanout=2).extract(0)
    assert sample.vertices == (0,)
    assert isinstance(csc, CSCGraph)


def test_with_features_stays_csc():
    csc = to_csc(Graph.from_edge_list([(0, 1), (1, 2)], 3, feature_length=4))
    refit = csc.with_features(np.ones((3, 2)))
    assert refit.is_csc
    assert np.array_equal(refit.colptr, csc.colptr)
    assert np.array_equal(refit.row, csc.row)
    assert refit.feature_length == 2
    with pytest.raises(ValueError):
        csc.with_features(np.ones((2, 2)))
