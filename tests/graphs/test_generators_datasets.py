"""Tests for synthetic generators and the Table 4 dataset registry."""

import numpy as np
import pytest

from repro.graphs import (
    DATASETS,
    dataset_names,
    dataset_table,
    load_dataset,
    community_graph,
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
    star_graph,
)


class TestGenerators:
    def test_erdos_renyi_size(self):
        g = erdos_renyi_graph(100, 400, feature_length=8, seed=1)
        assert g.num_vertices == 100
        assert g.feature_length == 8
        assert 100 < g.num_edges <= 400

    def test_erdos_renyi_no_self_loops(self):
        g = erdos_renyi_graph(50, 300, feature_length=4, seed=2)
        for v in range(g.num_vertices):
            assert v not in g.neighbors(v)

    def test_erdos_renyi_rejects_tiny_graphs(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(1, 10, feature_length=4)

    def test_power_law_skew(self):
        g = power_law_graph(200, 2000, feature_length=4, skew=1.5, seed=3)
        degrees = np.sort(g.degrees())[::-1]
        # Hubs should dominate: top 10% of vertices should hold a large share.
        top = degrees[: len(degrees) // 10].sum()
        assert top > 0.3 * degrees.sum()

    def test_power_law_reproducible(self):
        g1 = power_law_graph(100, 500, feature_length=4, seed=7)
        g2 = power_law_graph(100, 500, feature_length=4, seed=7)
        assert g1.num_edges == g2.num_edges
        np.testing.assert_array_equal(g1.csr.indices, g2.csr.indices)

    def test_community_graph_intra_density(self):
        g = community_graph(200, 3000, feature_length=4, num_communities=4,
                            intra_fraction=1.0, seed=5)
        assert g.num_vertices == 200
        assert g.num_edges > 0

    def test_grid_graph_degrees(self):
        g = grid_graph(4, feature_length=4)
        assert g.num_vertices == 16
        degs = g.degrees()
        assert degs.max() == 4
        assert degs.min() == 2

    def test_star_graph(self):
        g = star_graph(10, feature_length=4)
        assert g.num_vertices == 11
        assert g.degree(0) == 10
        assert all(g.degree(v) == 1 for v in range(1, 11))

    def test_generators_validate_inputs(self):
        with pytest.raises(ValueError):
            grid_graph(1, feature_length=4)
        with pytest.raises(ValueError):
            star_graph(0, feature_length=4)
        with pytest.raises(ValueError):
            community_graph(10, 20, feature_length=4, num_communities=0)


class TestDatasetRegistry:
    def test_all_six_datasets_present(self):
        assert set(dataset_names()) == {"IB", "CR", "CS", "CL", "PB", "RD"}

    def test_table4_statistics_match_paper(self):
        assert DATASETS["CR"].num_vertices == 2708
        assert DATASETS["CR"].feature_length == 1433
        assert DATASETS["CS"].feature_length == 3703
        assert DATASETS["RD"].num_edges == 114_615_892
        assert DATASETS["CL"].num_vertices == 12_087
        assert DATASETS["PB"].num_vertices == 19_717
        assert DATASETS["IB"].num_edges == 28_624

    def test_load_dataset_respects_scale(self):
        g = load_dataset("CR", seed=0)
        spec = DATASETS["CR"]
        assert g.num_vertices == spec.scaled_vertices
        assert g.feature_length == spec.feature_length

    def test_load_dataset_scale_override(self):
        g = load_dataset("PB", scale_factor=8, seed=0)
        assert g.num_vertices == DATASETS["PB"].num_vertices // 8

    def test_load_dataset_feature_override(self):
        g = load_dataset("CS", feature_length=16, seed=0)
        assert g.feature_length == 16

    def test_load_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("XX")

    def test_scaled_average_degree_preserved(self):
        spec = DATASETS["CL"]
        g = load_dataset("CL", seed=0)
        scaled_target = spec.scaled_edges / spec.scaled_vertices
        # The generator drops self-loops and duplicates, so allow slack.
        assert g.num_edges / g.num_vertices >= 0.4 * scaled_target

    def test_dataset_table_rows(self):
        rows = dataset_table()
        assert len(rows) == 6
        assert all({"dataset", "num_vertices", "feature_length",
                    "num_edges", "storage_mb"} <= set(r) for r in rows)

    def test_storage_estimates_reasonable(self):
        # Cora is ~15MB in the paper; our 4-byte-feature estimate should be
        # within the same order of magnitude.
        assert 5 < DATASETS["CR"].storage_mb < 40
        assert DATASETS["RD"].storage_mb > 500
