"""Differential proof that the two sampler cores are interchangeable.

The array-native CSC core (:class:`repro.graphs.csc.CSCGraph` +
vectorized paths in :class:`repro.serving.sampler.SubgraphSampler` and
:class:`repro.graphs.sampling.NeighborSampler`) replaces the historical
object core's per-vertex Python walks.  Its contract is **bit-for-bit
equivalence**: for the same seed, every observable -- extracted
subgraphs, minhash signatures, fused sizes, fused graphs, sampled
graphs, and the entire end-to-end serving report JSON -- must be
identical on both cores.  These tests run every randomized scenario
through both cores and compare the raw arrays, so any divergence in the
determinism contract (phase-stream consumption, first-seen local-id
order, canonical CSR form) fails loudly here rather than as a silent
shift in downstream numbers.
"""

import json

import numpy as np
import pytest

from repro.graphs import (
    NeighborSampler,
    SamplingConfig,
    community_graph,
    erdos_renyi_graph,
    from_csc,
    graphs_equal,
    load_dataset,
    power_law_graph,
    to_csc,
)
from repro.models.model_zoo import build_model, clear_workloads_cache
from repro.serving.fleet import FleetConfig, ServingSimulator, clear_probe_cache
from repro.serving.sampler import SubgraphSampler
from repro.serving.workload import RequestGenerator, WorkloadConfig

GENERATORS = {
    "power_law": lambda seed: power_law_graph(500, 5000, 12, skew=1.2,
                                              seed=seed),
    "community": lambda seed: community_graph(400, 3200, 12,
                                              num_communities=8, seed=seed),
    "erdos_renyi": lambda seed: erdos_renyi_graph(300, 2400, 12, seed=seed),
}


def _core_pair(kind, seed):
    """(CSC-backed, object-backed) twins of one generator graph."""
    csc = GENERATORS[kind](seed)
    obj = from_csc(csc)
    assert csc.is_csc and not obj.is_csc
    return csc, obj


def _assert_same_graph(a, b):
    assert np.array_equal(a.csr.indptr, b.csr.indptr)
    assert np.array_equal(a.csr.indices, b.csr.indices)
    assert np.array_equal(a.features, b.features)


@pytest.mark.parametrize("kind", sorted(GENERATORS))
@pytest.mark.parametrize("seed", [0, 3])
def test_extract_and_signature_identical(kind, seed):
    csc, obj = _core_pair(kind, seed)
    for hops, fanout in [(0, 8), (1, 4), (2, 8), (2, 32), (3, 6)]:
        sampler_csc = SubgraphSampler(csc, num_hops=hops, fanout=fanout,
                                      seed=seed)
        sampler_obj = SubgraphSampler(obj, num_hops=hops, fanout=fanout,
                                      seed=seed)
        assert sampler_csc.array_core and not sampler_obj.array_core
        for target in range(0, csc.num_vertices, 29):
            sample_csc = sampler_csc.extract(target)
            sample_obj = sampler_obj.extract(target)
            assert sample_csc.vertices == sample_obj.vertices
            _assert_same_graph(sample_csc.graph, sample_obj.graph)
            assert np.array_equal(sampler_csc.signature(target),
                                  sampler_obj.signature(target))


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_fused_size_and_fuse_identical(kind):
    csc, obj = _core_pair(kind, seed=1)
    sampler_csc = SubgraphSampler(csc, num_hops=2, fanout=8, seed=1)
    sampler_obj = SubgraphSampler(obj, num_hops=2, fanout=8, seed=1)
    targets = list(range(0, csc.num_vertices, 17))
    for batch in (targets[:1], targets[:5], targets[:20]):
        shapes = [(t, None, None) for t in batch]
        assert sampler_csc.fused_size(shapes) == sampler_obj.fused_size(shapes)
        fused_csc = sampler_csc.fuse([sampler_csc.extract(t) for t in batch])
        fused_obj = sampler_obj.fuse([sampler_obj.extract(t) for t in batch])
        _assert_same_graph(fused_csc, fused_obj)


def test_fuse_mixed_shape_batches_identical():
    """Degraded (override-shape) samples fuse identically on both cores."""
    csc, obj = _core_pair("power_law", seed=2)
    sampler_csc = SubgraphSampler(csc, num_hops=2, fanout=8, seed=2)
    sampler_obj = SubgraphSampler(obj, num_hops=2, fanout=8, seed=2)
    shapes = [(5, 1, 4), (5, 2, 8), (40, 3, 2), (77, None, None)]
    assert sampler_csc.fused_size(shapes) == sampler_obj.fused_size(shapes)
    fused_csc = sampler_csc.fuse(
        [sampler_csc.extract(t, num_hops=h, fanout=f) for t, h, f in shapes])
    fused_obj = sampler_obj.fuse(
        [sampler_obj.extract(t, num_hops=h, fanout=f) for t, h, f in shapes])
    _assert_same_graph(fused_csc, fused_obj)


@pytest.mark.parametrize("config", [
    SamplingConfig(max_neighbors=4),
    SamplingConfig(sampling_factor=3),
    SamplingConfig(max_neighbors=6, sampling_factor=2),
    SamplingConfig(max_neighbors=4, strategy="strided"),
    SamplingConfig(sampling_factor=2, strategy="strided", seed=5),
])
def test_neighbor_sampler_identical(config):
    csc, obj = _core_pair("power_law", seed=4)
    sampled_csc = NeighborSampler(config).sample_graph(csc)
    sampled_obj = NeighborSampler(config).sample_graph(obj)
    assert sampled_csc.is_csc and not sampled_obj.is_csc
    _assert_same_graph(sampled_csc, sampled_obj)
    assert graphs_equal(sampled_csc, to_csc(sampled_obj))


def test_serve_report_json_identical():
    """The entire serving report is bit-for-bit identical across cores."""
    payloads = {}
    for core in ("csc", "obj"):
        clear_probe_cache()
        clear_workloads_cache()
        load_dataset.cache_clear()
        graph = load_dataset("IB", seed=0)
        if core == "obj":
            graph = from_csc(graph)
        model = build_model("GCN", input_length=graph.feature_length)
        simulator = ServingSimulator(
            graph, model, FleetConfig(batch_policy="overlap"),
            dataset_name="IB")
        workload = WorkloadConfig(num_requests=120, rate_rps=50.0,
                                  arrival="poisson", popularity_skew=0.8,
                                  seed=5)
        requests = RequestGenerator(graph.num_vertices, workload).generate()
        report = simulator.run(requests, rate_rps=50.0)
        payloads[core] = json.dumps(report.to_dict(), sort_keys=True)
    assert payloads["csc"] == payloads["obj"]
