"""Tests for interval-shard partitioning and neighbour sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    NeighborSampler,
    SamplingConfig,
    erdos_renyi_graph,
    partition_graph,
    power_law_graph,
    sample_graph,
)


def small_graph(seed=0):
    return erdos_renyi_graph(32, 128, feature_length=8, seed=seed)


class TestPartition:
    def test_partition_covers_all_vertices(self):
        g = small_graph()
        part = partition_graph(g, interval_size=8, shard_height=8)
        covered = np.concatenate([iv.vertices() for iv in part.intervals])
        np.testing.assert_array_equal(np.sort(covered), np.arange(g.num_vertices))

    def test_partition_preserves_all_edges(self):
        g = small_graph()
        part = partition_graph(g, interval_size=8, shard_height=8)
        assert part.total_edges() == g.num_edges

    def test_edges_fall_inside_their_shard(self):
        g = small_graph(seed=1)
        part = partition_graph(g, interval_size=8, shard_height=4)
        for shard in part.iter_shards():
            interval = part.intervals[shard.interval_index]
            for src, dst in shard.edges:
                assert shard.src_start <= src < shard.src_stop
                assert dst in interval

    def test_uneven_sizes(self):
        g = small_graph(seed=2)
        part = partition_graph(g, interval_size=10, shard_height=7)
        assert part.intervals[-1].stop == g.num_vertices
        assert part.total_edges() == g.num_edges

    def test_interval_membership(self):
        g = small_graph()
        part = partition_graph(g, interval_size=8, shard_height=8)
        interval = part.intervals[1]
        assert 8 in interval and 15 in interval and 16 not in interval

    def test_single_interval_whole_graph(self):
        g = small_graph()
        part = partition_graph(g, interval_size=g.num_vertices,
                               shard_height=g.num_vertices)
        assert part.num_intervals == 1
        assert part.num_row_blocks == 1
        assert part.shards_for_interval(0)[0].num_edges == g.num_edges

    def test_occupancy_between_zero_and_one(self):
        g = small_graph()
        part = partition_graph(g, interval_size=8, shard_height=8)
        assert 0.0 < part.occupancy() <= 1.0

    def test_nonempty_shards_subset(self):
        g = power_law_graph(64, 256, feature_length=4, seed=3)
        part = partition_graph(g, interval_size=16, shard_height=16)
        for i in range(part.num_intervals):
            nonempty = part.nonempty_shards_for_interval(i)
            assert all(not s.is_empty for s in nonempty)
            assert len(nonempty) <= len(part.shards_for_interval(i))

    def test_invalid_sizes_rejected(self):
        g = small_graph()
        with pytest.raises(ValueError):
            partition_graph(g, interval_size=0, shard_height=8)
        with pytest.raises(ValueError):
            partition_graph(g, interval_size=8, shard_height=0)

    def test_shard_density(self):
        g = small_graph()
        part = partition_graph(g, interval_size=8, shard_height=8)
        for shard in part.iter_shards():
            assert 0.0 <= shard.density(8) <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(interval=st.integers(1, 40), height=st.integers(1, 40), seed=st.integers(0, 5))
    def test_property_edges_conserved(self, interval, height, seed):
        g = erdos_renyi_graph(24, 96, feature_length=4, seed=seed)
        part = partition_graph(g, interval_size=interval, shard_height=height)
        assert part.total_edges() == g.num_edges


class TestSampling:
    def test_disabled_sampling_is_identity(self):
        g = small_graph()
        cfg = SamplingConfig()
        assert not cfg.enabled
        sampled = sample_graph(g, cfg)
        assert sampled is g

    def test_max_neighbors_cap(self):
        g = power_law_graph(64, 1024, feature_length=4, seed=1)
        sampler = NeighborSampler(SamplingConfig(max_neighbors=3, seed=0))
        for v in range(g.num_vertices):
            assert len(sampler.sample_neighbors(g.in_neighbors(v))) <= 3

    def test_sampling_factor_reduces_edges(self):
        g = power_law_graph(64, 1024, feature_length=4, seed=2)
        sampled = sample_graph(g, SamplingConfig(sampling_factor=4, seed=0))
        assert sampled.num_edges < g.num_edges
        # at least one neighbour is always kept per vertex with neighbours
        for v in range(g.num_vertices):
            if g.csc.in_degree(v) > 0:
                assert sampled.csc.in_degree(v) >= 1

    def test_sampled_neighbors_are_subset(self):
        g = small_graph(seed=4)
        sampler = NeighborSampler(SamplingConfig(max_neighbors=2, seed=1))
        for v in range(g.num_vertices):
            original = set(g.in_neighbors(v).tolist())
            sampled = set(sampler.sample_neighbors(g.in_neighbors(v)).tolist())
            assert sampled <= original

    def test_strided_strategy_deterministic(self):
        g = small_graph(seed=5)
        cfg = SamplingConfig(max_neighbors=2, strategy="strided")
        s1 = NeighborSampler(cfg).sample_graph(g)
        s2 = NeighborSampler(cfg).sample_graph(g)
        np.testing.assert_array_equal(s1.csr.indices, s2.csr.indices)

    def test_sampled_graph_shares_features(self):
        g = small_graph()
        sampled = sample_graph(g, SamplingConfig(max_neighbors=1, seed=0))
        assert sampled.features is g.features

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SamplingConfig(sampling_factor=0)
        with pytest.raises(ValueError):
            SamplingConfig(max_neighbors=0)
        with pytest.raises(ValueError):
            SamplingConfig(strategy="bogus")

    def test_sampled_degree_map(self):
        g = small_graph(seed=6)
        sampler = NeighborSampler(SamplingConfig(max_neighbors=2, seed=0))
        degmap = sampler.sampled_degree_map(g)
        assert set(degmap) == set(range(g.num_vertices))
        assert all(0 <= d <= 2 for d in degmap.values())

    @settings(max_examples=20, deadline=None)
    @given(factor=st.integers(1, 8), seed=st.integers(0, 3))
    def test_property_sampling_never_increases_edges(self, factor, seed):
        g = power_law_graph(48, 512, feature_length=4, seed=seed)
        sampled = sample_graph(g, SamplingConfig(sampling_factor=factor, seed=seed))
        assert sampled.num_edges <= g.num_edges


class TestEdgeShardGuards:
    """Division edge cases of EdgeShard.density / occupancy / is_empty."""

    def _shard(self, src_start, src_stop, edges):
        from repro.graphs.partition import EdgeShard
        return EdgeShard(interval_index=0, src_start=src_start,
                         src_stop=src_stop,
                         edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2))

    def test_density_counts_occupied_cells(self):
        shard = self._shard(0, 4, [(0, 0), (1, 1), (2, 0)])
        assert shard.density(interval_size=2) == pytest.approx(3 / 8)

    def test_density_zero_size_interval_is_zero(self):
        shard = self._shard(0, 4, [(0, 0)])
        assert shard.density(interval_size=0) == 0.0

    def test_density_zero_height_shard_is_zero(self):
        shard = self._shard(3, 3, [])
        assert shard.density(interval_size=8) == 0.0

    def test_is_empty(self):
        assert self._shard(0, 4, []).is_empty
        assert not self._shard(0, 4, [(1, 0)]).is_empty
        np.testing.assert_array_equal(
            self._shard(0, 4, []).source_vertices(),
            np.empty(0, dtype=np.int64))

    def test_occupancy_empty_graph_is_zero(self):
        empty = Graph.from_edge_list([], num_vertices=0, feature_length=4)
        part = partition_graph(empty, interval_size=4, shard_height=4)
        assert part.num_intervals == 0
        assert part.num_row_blocks == 0
        assert part.total_edges() == 0
        assert part.occupancy() == 0.0

    def test_occupancy_edgeless_graph_is_zero(self):
        edgeless = Graph.from_edge_list([], num_vertices=8, feature_length=4)
        part = partition_graph(edgeless, interval_size=4, shard_height=4)
        assert part.total_edges() == 0
        assert part.occupancy() == 0.0

    def test_occupancy_matches_hand_count(self):
        g = small_graph(seed=3)
        part = partition_graph(g, interval_size=8, shard_height=8)
        cells = sum(s.height * part.intervals[s.interval_index].size
                    for s in part.iter_shards())
        assert part.occupancy() == pytest.approx(g.num_edges / cells)
