"""Unit tests for the core graph data structures."""

import numpy as np
import pytest

from repro.graphs import CSRMatrix, CSCMatrix, Graph, merge_graphs


def triangle_graph(feature_length=4):
    edges = [(0, 1), (1, 2), (2, 0)]
    return Graph.from_edge_list(edges, 3, feature_length=feature_length, name="triangle")


class TestCSRMatrix:
    def test_from_edges_basic(self):
        csr = CSRMatrix.from_edges([(0, 1), (0, 2), (1, 2)], num_rows=3)
        assert csr.nnz == 3
        assert list(csr.row(0)) == [1, 2]
        assert list(csr.row(1)) == [2]
        assert list(csr.row(2)) == []

    def test_from_edges_deduplicates(self):
        csr = CSRMatrix.from_edges([(0, 1), (0, 1), (0, 1)], num_rows=2)
        assert csr.nnz == 1

    def test_from_edges_keeps_duplicates_when_asked(self):
        csr = CSRMatrix.from_edges([(0, 1), (0, 1)], num_rows=2, deduplicate=False)
        assert csr.nnz == 2

    def test_empty_matrix(self):
        csr = CSRMatrix.from_edges([], num_rows=4)
        assert csr.nnz == 0
        assert list(csr.degrees()) == [0, 0, 0, 0]

    def test_degrees(self):
        csr = CSRMatrix.from_edges([(0, 1), (0, 2), (2, 0)], num_rows=3)
        assert list(csr.degrees()) == [2, 0, 1]
        assert csr.degree(0) == 2

    def test_transpose_roundtrip(self):
        csr = CSRMatrix.from_edges([(0, 1), (0, 2), (1, 2), (2, 0)], num_rows=3)
        double_t = csr.transpose().transpose()
        np.testing.assert_array_equal(csr.to_dense(), double_t.to_dense())

    def test_transpose_is_dense_transpose(self):
        csr = CSRMatrix.from_edges([(0, 1), (1, 2), (2, 0), (2, 1)], num_rows=3)
        np.testing.assert_array_equal(csr.transpose().to_dense(), csr.to_dense().T)

    def test_invalid_indices_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_edges([(0, 5)], num_rows=3)
        with pytest.raises(ValueError):
            CSRMatrix.from_edges([(7, 0)], num_rows=3)

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 2, 1]), np.array([0, 1]), num_cols=2)

    def test_rectangular_matrix(self):
        csr = CSRMatrix.from_edges([(0, 3), (1, 4)], num_rows=2, num_cols=5)
        assert csr.num_rows == 2
        assert csr.num_cols == 5
        assert csr.to_dense().shape == (2, 5)


class TestCSCMatrix:
    def test_csc_column_is_in_neighbors(self):
        csr = CSRMatrix.from_edges([(0, 2), (1, 2), (2, 0)], num_rows=3)
        csc = CSCMatrix.from_csr(csr)
        assert sorted(csc.column(2)) == [0, 1]
        assert list(csc.column(0)) == [2]
        assert list(csc.column(1)) == []

    def test_in_degrees_sum_to_edges(self):
        csr = CSRMatrix.from_edges([(0, 1), (0, 2), (1, 2), (2, 1)], num_rows=3)
        csc = CSCMatrix.from_csr(csr)
        assert csc.in_degrees().sum() == csr.nnz

    def test_dense_views_are_transposes(self):
        csr = CSRMatrix.from_edges([(0, 1), (1, 0), (2, 1)], num_rows=3)
        csc = CSCMatrix.from_csr(csr)
        np.testing.assert_array_equal(csc.to_dense(), csr.to_dense())


class TestGraph:
    def test_from_edge_list_symmetrises(self):
        g = triangle_graph()
        assert g.num_vertices == 3
        assert g.num_edges == 6  # each undirected edge stored twice
        assert sorted(g.neighbors(0)) == [1, 2]

    def test_directed_edge_list(self):
        g = Graph.from_edge_list([(0, 1)], 2, undirected=False, feature_length=2)
        assert g.num_edges == 1
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == []

    def test_feature_shape_validation(self):
        csr = CSRMatrix.from_edges([(0, 1)], num_rows=2)
        with pytest.raises(ValueError):
            Graph(csr, np.zeros((3, 4)))
        with pytest.raises(ValueError):
            Graph(csr, np.zeros(2))

    def test_in_neighbors_match_neighbors_for_undirected(self):
        g = triangle_graph()
        for v in range(g.num_vertices):
            assert sorted(g.in_neighbors(v)) == sorted(g.neighbors(v))

    def test_stats(self):
        g = triangle_graph(feature_length=8)
        stats = g.stats()
        assert stats.num_vertices == 3
        assert stats.num_edges == 6
        assert stats.feature_length == 8
        assert stats.avg_degree == pytest.approx(2.0)
        assert stats.max_degree == 2
        assert stats.storage_bytes > 0
        assert set(stats.as_dict()) == {
            "num_vertices", "num_edges", "feature_length",
            "avg_degree", "max_degree", "storage_bytes",
        }

    def test_storage_accounting(self):
        g = triangle_graph(feature_length=10)
        expected = 3 * 10 * 4 + 6 * 4 + 4 * 4
        assert g.storage_bytes() == expected

    def test_with_features_shares_structure(self):
        g = triangle_graph()
        new = g.with_features(np.ones((3, 2)))
        assert new.num_edges == g.num_edges
        assert new.feature_length == 2

    def test_adjacency_dense_symmetric(self):
        g = triangle_graph()
        dense = g.adjacency_dense()
        np.testing.assert_array_equal(dense, dense.T)
        assert dense.sum() == g.num_edges


class TestMergeGraphs:
    def test_merge_counts(self):
        g1 = triangle_graph()
        g2 = triangle_graph()
        merged = merge_graphs([g1, g2])
        assert merged.num_vertices == 6
        assert merged.num_edges == 12

    def test_merge_keeps_components_disjoint(self):
        g1 = triangle_graph()
        g2 = triangle_graph()
        merged = merge_graphs([g1, g2])
        for v in range(3):
            assert all(u < 3 for u in merged.neighbors(v))
        for v in range(3, 6):
            assert all(u >= 3 for u in merged.neighbors(v))

    def test_merge_requires_matching_feature_length(self):
        g1 = triangle_graph(feature_length=4)
        g2 = triangle_graph(feature_length=8)
        with pytest.raises(ValueError):
            merge_graphs([g1, g2])

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_graphs([])
