"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestSimulateCommand:
    def test_basic_simulation(self, capsys):
        assert main(["simulate", "--model", "GCN", "--dataset", "IB"]) == 0
        out = capsys.readouterr().out
        assert "HyGCN: GCN on IB" in out
        assert "per-layer breakdown" in out

    def test_with_comparison(self, capsys):
        assert main(["simulate", "--model", "GIN", "--dataset", "IB", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "platform comparison" in out
        assert "PyG-CPU" in out and "PyG-GPU" in out

    def test_optimisations_can_be_disabled(self, capsys):
        assert main(["simulate", "--dataset", "IB", "--no-sparsity",
                     "--no-coordination", "--pipeline", "none"]) == 0
        assert "sparsity_reduction_pct" in capsys.readouterr().out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--model", "TPU"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--dataset", "XX"])


class TestSweepCommand:
    def test_sparsity_sweep(self, capsys):
        assert main(["sweep", "sparsity", "--datasets", "CR"]) == 0
        assert "sparsity sweep" in capsys.readouterr().out

    def test_ablation_sweep(self, capsys):
        assert main(["sweep", "ablation", "--datasets", "CR"]) == 0
        out = capsys.readouterr().out
        assert "cumulative optimisation ablation" in out
        assert "+memory coordination" in out

    def test_unknown_sweep_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "bogus"])


class TestInfoCommand:
    def test_info_prints_all_tables(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Table 5" in out
        assert "Table 6" in out and "Table 7" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
