"""Tests for the HBM DRAM model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import DRAMStats, HBMConfig, HBMModel, MemoryRequest


class TestHBMConfig:
    def test_peak_bandwidth_matches_table6(self):
        cfg = HBMConfig()
        # 8 channels x 32 B/cycle at 1 GHz = 256 GB/s
        assert cfg.peak_bandwidth_bytes_per_cycle == 256
        assert cfg.peak_bandwidth_gbps == 256

    def test_request_validation(self):
        with pytest.raises(ValueError):
            MemoryRequest("edges", 0, 0)
        with pytest.raises(ValueError):
            MemoryRequest("edges", -1, 64)


class TestRowBufferBehaviour:
    def test_sequential_accesses_hit_row_buffer(self):
        hbm = HBMModel()
        stats = hbm.service_stream("input_features", total_bytes=8192,
                                   access_granularity=64, sequential=True)
        assert stats.row_hit_rate > 0.9

    def test_random_accesses_miss_row_buffer(self):
        hbm = HBMModel()
        stats = hbm.service_stream("input_features", total_bytes=8192,
                                   access_granularity=64, sequential=False)
        assert stats.row_hit_rate == 0.0

    def test_row_misses_cost_more_cycles(self):
        cfg = HBMConfig()
        seq = HBMModel(cfg).service_stream("x", 1 << 16, sequential=True)
        rnd = HBMModel(cfg).service_stream("x", 1 << 16, sequential=False)
        assert rnd.busy_cycles > seq.busy_cycles
        assert rnd.bytes_transferred == seq.bytes_transferred

    def test_same_row_repeat_hits(self):
        hbm = HBMModel()
        reqs = [MemoryRequest("weights", 0, 64) for _ in range(10)]
        stats = hbm.service(reqs)
        assert stats.row_misses == 1
        assert stats.row_hits == 9


class TestParallelismAndUtilization:
    def test_interleaving_spreads_channels(self):
        cfg = HBMConfig()
        interleaved = HBMModel(cfg, interleave_low_bits=True)
        naive = HBMModel(cfg, interleave_low_bits=False)
        # A large sequential stream: interleaved map spreads across channels so
        # the critical-path busy time is lower.
        s1 = interleaved.service_stream("edges", 1 << 20, sequential=True)
        s2 = naive.service_stream("edges", 1 << 20, sequential=True)
        assert s1.busy_cycles < s2.busy_cycles

    def test_bandwidth_utilization_bounds(self):
        hbm = HBMModel()
        stats = hbm.service_stream("edges", 1 << 18, sequential=True)
        util = stats.bandwidth_utilization(hbm.config)
        assert 0.0 < util <= 1.0

    def test_utilization_lower_over_longer_elapsed_time(self):
        hbm = HBMModel()
        stats = hbm.service_stream("edges", 1 << 16, sequential=True)
        tight = stats.bandwidth_utilization(hbm.config)
        slack = stats.bandwidth_utilization(hbm.config,
                                            elapsed_cycles=stats.busy_cycles * 10)
        assert slack < tight

    def test_empty_request_list(self):
        stats = HBMModel().service([])
        assert stats.requests == 0
        assert stats.busy_cycles == 0
        assert stats.bandwidth_utilization(HBMConfig()) == 0.0


class TestEnergyAndStats:
    def test_energy_is_7pj_per_bit(self):
        hbm = HBMModel()
        stats = hbm.service([MemoryRequest("edges", 0, 100)])
        assert stats.energy_pj == pytest.approx(100 * 8 * 7.0)

    def test_stats_merge(self):
        a = DRAMStats(requests=1, bytes_transferred=64, row_hits=1, busy_cycles=10,
                      total_channel_cycles=10, energy_pj=5.0)
        b = DRAMStats(requests=2, bytes_transferred=128, row_misses=2, busy_cycles=20,
                      total_channel_cycles=30, energy_pj=7.0)
        m = a.merge(b)
        assert m.requests == 3
        assert m.bytes_transferred == 192
        assert m.busy_cycles == 30
        assert m.energy_pj == 12.0

    def test_reset_closes_rows(self):
        hbm = HBMModel()
        hbm.service([MemoryRequest("edges", 0, 64)])
        hbm.reset()
        stats = hbm.service([MemoryRequest("edges", 0, 64)])
        assert stats.row_misses == 1

    def test_streams_do_not_alias(self):
        hbm = HBMModel()
        hbm.service([MemoryRequest("edges", 0, 64)])
        stats = hbm.service([MemoryRequest("weights", 0, 64)])
        # different stream at the same offset must not get a spurious row hit
        assert stats.row_misses == 1

    @settings(max_examples=20, deadline=None)
    @given(total=st.integers(64, 1 << 16))
    def test_property_bytes_conserved(self, total):
        stats = HBMModel().service_stream("edges", total, sequential=True)
        assert stats.bytes_transferred == total
