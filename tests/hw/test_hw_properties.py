"""Property-based tests for the hardware substrate (buffers and HBM model)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import HBMConfig, HBMModel, MemoryRequest, ScratchpadBuffer


class TestBufferProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.text(min_size=1, max_size=6),
                              st.integers(0, 4096)),
                    min_size=1, max_size=30))
    def test_allocate_free_conservation(self, allocations):
        buffer = ScratchpadBuffer("test", 64 * 1024)
        for region, size in allocations:
            buffer.allocate(region, size)
        # used bytes equals the sum of the *latest* allocation per region
        latest = {}
        for region, size in allocations:
            latest[region] = size
        assert buffer.used_bytes == sum(latest.values())
        for region in latest:
            buffer.free(region)
        assert buffer.used_bytes == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 10_000), min_size=1, max_size=50))
    def test_traffic_accounting_is_additive(self, chunks):
        buffer = ScratchpadBuffer("test", 1024)
        for chunk in chunks:
            buffer.read(chunk)
            buffer.write(chunk)
        assert buffer.stats.bytes_read == sum(chunks)
        assert buffer.stats.bytes_written == sum(chunks)
        assert buffer.stats.total_accesses == 2 * len(chunks)


class TestHBMProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 8192), min_size=1, max_size=60),
        stream=st.sampled_from(["edges", "input_features", "weights"]),
    )
    def test_service_conserves_bytes_and_counts(self, sizes, stream):
        hbm = HBMModel()
        requests = [MemoryRequest(stream, i * 4096, size) for i, size in enumerate(sizes)]
        stats = hbm.service(requests)
        assert stats.requests == len(sizes)
        assert stats.bytes_transferred == sum(sizes)
        assert stats.row_hits + stats.row_misses == len(sizes)
        assert stats.busy_cycles > 0
        assert stats.energy_pj == pytest.approx(sum(sizes) * 8 * 7.0)

    @settings(max_examples=30, deadline=None)
    @given(total=st.integers(256, 1 << 18))
    def test_busy_cycles_bounded_by_bandwidth(self, total):
        # the critical-path busy time can never beat the per-channel bandwidth
        hbm = HBMModel()
        stats = hbm.service_stream("edges", total, sequential=True)
        cfg = hbm.config
        min_cycles = total / cfg.peak_bandwidth_bytes_per_cycle
        assert stats.busy_cycles >= min_cycles * 0.5  # channels overlap, latency adds
        assert stats.bandwidth_utilization(cfg) <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(chunk=st.sampled_from([64, 256, 2048]), count=st.integers(1, 64))
    def test_interleaved_map_never_slower_than_naive(self, chunk, count):
        requests = [MemoryRequest("edges", i * chunk, chunk) for i in range(count)]
        interleaved = HBMModel(HBMConfig(), interleave_low_bits=True).service(list(requests))
        naive = HBMModel(HBMConfig(), interleave_low_bits=False).service(list(requests))
        assert interleaved.busy_cycles <= naive.busy_cycles
