"""Tests for the energy and area/power models."""

import pytest

from repro.hw import (
    AreaPowerConfig,
    AreaPowerModel,
    EnergyBreakdown,
    EnergyModel,
    EnergyParams,
    PAPER_TABLE7,
)


class TestEnergyModel:
    def make_breakdown(self, **overrides):
        defaults = dict(
            simd_ops=1000,
            macs=2000,
            aggregation_buffer_bytes={"edge": 100, "input": 200},
            combination_buffer_bytes={"weight": 300, "output": 400},
            coordinator_buffer_bytes=500,
            dram_bytes=1000,
            cycles=10_000,
        )
        defaults.update(overrides)
        return EnergyModel().compute(**defaults)

    def test_component_energies(self):
        params = EnergyParams()
        bd = self.make_breakdown()
        assert bd.aggregation_compute_pj == pytest.approx(1000 * params.simd_op_pj)
        assert bd.combination_compute_pj == pytest.approx(2000 * params.mac_pj)
        assert bd.aggregation_buffers_pj == pytest.approx(300 * params.buffer_pj_per_byte)
        assert bd.combination_buffers_pj == pytest.approx(700 * params.buffer_pj_per_byte)
        assert bd.coordinator_buffers_pj == pytest.approx(500 * params.buffer_pj_per_byte)
        assert bd.dram_pj == pytest.approx(1000 * params.dram_pj_per_byte)

    def test_static_energy_scales_with_cycles(self):
        short = self.make_breakdown(cycles=1000)
        long = self.make_breakdown(cycles=100_000)
        assert long.static_pj > short.static_pj

    def test_totals_and_shares(self):
        bd = self.make_breakdown()
        shares = bd.engine_shares()
        assert bd.total_pj > 0
        assert bd.total_joules == pytest.approx(bd.total_pj * 1e-12)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_merge(self):
        a = self.make_breakdown()
        b = self.make_breakdown(macs=0, simd_ops=0)
        merged = a.merge(b)
        assert merged.total_pj == pytest.approx(a.total_pj + b.total_pj)

    def test_more_macs_more_combination_energy(self):
        low = self.make_breakdown(macs=100)
        high = self.make_breakdown(macs=1_000_000)
        assert high.combination_engine_pj > low.combination_engine_pj

    def test_dram_dominates_for_memory_bound(self):
        bd = self.make_breakdown(dram_bytes=10**7, macs=10, simd_ops=10)
        assert bd.dram_pj > bd.on_chip_pj


class TestAreaPowerModel:
    def test_default_matches_published_totals(self):
        model = AreaPowerModel()
        assert model.total_power_w() == pytest.approx(6.7, rel=0.02)
        assert model.total_area_mm2() == pytest.approx(7.8, rel=0.02)

    def test_default_breakdown_matches_table7(self):
        rows = {r["module"]: r for r in AreaPowerModel().breakdown_table()}
        assert rows["combination_compute"]["power_pct"] == pytest.approx(60.52, abs=1.5)
        assert rows["coordinator_buffer"]["area_pct"] == pytest.approx(34.64, abs=1.5)
        assert rows["aggregation_buffer"]["area_pct"] == pytest.approx(5.41, abs=1.5)

    def test_control_overhead_is_small(self):
        rows = {r["module"]: r for r in AreaPowerModel().breakdown_table()}
        assert rows["control"]["power_pct"] < 2.0
        assert rows["control"]["area_pct"] < 1.0

    def test_bigger_aggregation_buffer_more_area(self):
        small = AreaPowerModel(AreaPowerConfig(aggregation_buffer_bytes=2 << 20))
        big = AreaPowerModel(AreaPowerConfig(aggregation_buffer_bytes=32 << 20))
        assert big.total_area_mm2() > small.total_area_mm2()

    def test_fewer_pes_less_power(self):
        half = AreaPowerModel(AreaPowerConfig(num_systolic_modules=4))
        full = AreaPowerModel(AreaPowerConfig(num_systolic_modules=8))
        assert half.total_power_w() < full.total_power_w()

    def test_paper_table_fractions_sum_to_one(self):
        power = sum(v["power"] for v in PAPER_TABLE7.values())
        area = sum(v["area"] for v in PAPER_TABLE7.values())
        assert power == pytest.approx(1.0, abs=0.01)
        assert area == pytest.approx(1.0, abs=0.01)

    def test_breakdown_rows_have_expected_keys(self):
        for row in AreaPowerModel().breakdown_table():
            assert {"module", "power_w", "power_pct", "area_mm2", "area_pct"} <= set(row)
