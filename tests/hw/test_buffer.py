"""Tests for on-chip buffer models."""

import pytest

from repro.hw import BufferStats, DoubleBuffer, PingPongBuffer, ScratchpadBuffer


class TestScratchpadBuffer:
    def test_allocate_and_free(self):
        buf = ScratchpadBuffer("input", 1024)
        assert buf.allocate("shard0", 512)
        assert buf.used_bytes == 512
        assert buf.free_bytes == 512
        buf.free("shard0")
        assert buf.used_bytes == 0

    def test_overflow_counted_not_fatal(self):
        buf = ScratchpadBuffer("input", 100)
        assert not buf.allocate("big", 200)
        assert buf.stats.overflow_events == 1
        assert buf.occupancy > 1.0

    def test_reallocate_same_region_replaces(self):
        buf = ScratchpadBuffer("input", 1024)
        buf.allocate("a", 100)
        buf.allocate("a", 300)
        assert buf.used_bytes == 300

    def test_clear(self):
        buf = ScratchpadBuffer("input", 1024)
        buf.allocate("a", 100)
        buf.allocate("b", 200)
        buf.clear()
        assert buf.used_bytes == 0
        assert buf.region_bytes("a") == 0

    def test_traffic_accounting(self):
        buf = ScratchpadBuffer("weights", 1024)
        buf.read(256, accesses=4)
        buf.write(128, accesses=2)
        assert buf.stats.reads == 4
        assert buf.stats.writes == 2
        assert buf.stats.bytes_read == 256
        assert buf.stats.bytes_written == 128
        assert buf.stats.total_bytes == 384
        assert buf.stats.total_accesses == 6

    def test_reset_stats(self):
        buf = ScratchpadBuffer("weights", 1024)
        buf.read(256)
        buf.reset_stats()
        assert buf.stats.total_bytes == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ScratchpadBuffer("x", 0)

    def test_negative_allocation_rejected(self):
        buf = ScratchpadBuffer("x", 10)
        with pytest.raises(ValueError):
            buf.allocate("r", -1)

    def test_stats_merge(self):
        a = BufferStats(reads=1, writes=2, bytes_read=10, bytes_written=20)
        b = BufferStats(reads=3, writes=4, bytes_read=30, bytes_written=40, overflow_events=1)
        merged = a.merge(b)
        assert merged.reads == 4 and merged.writes == 6
        assert merged.total_bytes == 100
        assert merged.overflow_events == 1


class TestDoubleBuffer:
    def test_working_capacity_is_half(self):
        buf = DoubleBuffer("edge", 2048)
        assert buf.working_capacity == 1024
        assert buf.fits_working_set(1024)
        assert not buf.fits_working_set(1025)


class TestPingPongBuffer:
    def test_chunk_capacity_is_half(self):
        buf = PingPongBuffer("aggregation", 16 * 1024)
        assert buf.chunk_capacity == 8 * 1024
        assert buf.fits_chunk(8 * 1024)
        assert not buf.fits_chunk(8 * 1024 + 1)

    def test_swap_toggles_and_counts(self):
        buf = PingPongBuffer("aggregation", 1024)
        assert buf.active_chunk == 0
        assert buf.swap() == 1
        assert buf.swap() == 0
        assert buf.swaps == 2
