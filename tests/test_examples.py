"""Smoke tests: the example scripts run end to end on the public API."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing ``main``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "citation_classification.py",
            "recommendation_inference.py", "design_space_exploration.py",
            "online_serving.py", "multi_tenant_serving.py",
            "elastic_serving.py", "hetero_fleet.py"} <= names
    assert (EXAMPLES_DIR / "tenants.json").exists()
    assert (EXAMPLES_DIR / "fleet.json").exists()


def test_multi_tenant_example_runs(capsys):
    module = load_example("multi_tenant_serving.py")
    module.main(num_requests=48)
    out = capsys.readouterr().out
    assert "WFQ fairness" in out
    assert "cross-tenant isolation" in out


def test_elastic_serving_example_runs(capsys):
    module = load_example("elastic_serving.py")
    module.main(num_requests=400)
    out = capsys.readouterr().out
    assert "SLO violations vs. chip-seconds" in out
    assert "fleet-size timeline" in out
    assert "what each gate does to the tail" in out


def test_hetero_fleet_example_runs(capsys):
    module = load_example("hetero_fleet.py")
    module.main(num_requests=96)
    out = capsys.readouterr().out
    assert "chip-shape presets" in out
    assert "per-shape utilization" in out
    assert "seconds-per-fused-vertex" in out


def test_quickstart_runs(capsys):
    module = load_example("quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "HyGCN" in out
    assert "speedup over PyG-CPU" in out


def test_recommendation_example_helpers():
    module = load_example("recommendation_inference.py")
    graph = module.build_interaction_graph(num_entities=256, interactions=2048,
                                           embedding_length=32, seed=1)
    assert graph.num_vertices == 256
    assert graph.feature_length == 32
    # skewed: the hubs carry a disproportionate share of interactions
    degrees = graph.degrees()
    assert degrees.max() > 4 * degrees.mean()


def test_citation_example_prediction_head():
    module = load_example("citation_classification.py")
    import numpy as np
    predictions = module.predict_classes(np.random.default_rng(0).standard_normal((50, 16)),
                                         num_classes=7)
    assert predictions.shape == (50,)
    assert set(predictions.tolist()) <= set(range(7))


def test_design_space_example_candidates():
    module = load_example("design_space_exploration.py")
    configs = module.candidate_configs()
    assert len(configs) == len(module.DESIGN_POINTS)
    # the paper's Table 6 configuration is one of the candidates
    assert any(c.num_simd_cores == 32 and c.num_systolic_modules == 8
               and c.aggregation_buffer_bytes == 16 << 20 for c in configs)


def test_design_space_example_runs_on_small_mix():
    from repro.analysis import WorkloadMix, explore, pareto_front
    module = load_example("design_space_exploration.py")
    quick_mix = WorkloadMix(name="quick", entries=(("GCN", "IB"),))
    points = explore(module.candidate_configs()[:2], quick_mix)
    assert len(points) == 2
    assert all(p.time_ms > 0 and p.power_w > 0 for p in points)
    assert len(pareto_front(points)) >= 1
