"""Integration tests for the top-level HyGCN simulator."""

import pytest

from repro.core import HyGCNConfig, HyGCNSimulator, PipelineMode
from repro.graphs import community_graph, load_dataset, power_law_graph
from repro.models import MODEL_NAMES, build_diffpool, build_gcn, build_model


def small_graph(seed=0):
    return community_graph(256, 2048, feature_length=64, num_communities=16, seed=seed)


def small_config(**overrides):
    defaults = dict(
        input_buffer_bytes=4 * 1024,
        aggregation_buffer_bytes=64 * 1024,
    )
    defaults.update(overrides)
    return HyGCNConfig(**defaults)


class TestRunWorkload:
    def test_report_fields_populated(self):
        g = small_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        report = HyGCNSimulator(small_config()).run_workload(model.workloads(g)[0])
        assert report.total_cycles > 0
        assert report.aggregation_cycles > 0
        assert report.combination_cycles > 0
        assert report.num_edges == g.num_edges
        assert report.macs == g.num_vertices * 64 * 32
        assert report.dram_bytes > 0
        assert report.energy.total_pj > 0
        assert report.num_intervals >= 1
        assert 0.0 <= report.sparsity_reduction <= 1.0
        assert 0.0 <= report.bandwidth_utilization <= 1.0

    def test_pipeline_reduces_cycles(self):
        g = small_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        wl = model.workloads(g)[0]
        pipelined = HyGCNSimulator(small_config(pipeline_mode=PipelineMode.LATENCY)) \
            .run_workload(wl)
        serial = HyGCNSimulator(small_config(pipeline_mode=PipelineMode.NONE)) \
            .run_workload(wl)
        assert pipelined.total_cycles < serial.total_cycles

    def test_no_pipeline_spills_to_dram(self):
        g = small_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        wl = model.workloads(g)[0]
        pipelined = HyGCNSimulator(small_config(pipeline_mode=PipelineMode.LATENCY)) \
            .run_workload(wl)
        serial = HyGCNSimulator(small_config(pipeline_mode=PipelineMode.NONE)) \
            .run_workload(wl)
        assert serial.dram_bytes > pipelined.dram_bytes

    def test_sparsity_elimination_reduces_dram(self):
        g = small_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        wl = model.workloads(g)[0]
        on = HyGCNSimulator(small_config()).run_workload(wl)
        off = HyGCNSimulator(small_config(enable_sparsity_elimination=False)) \
            .run_workload(wl)
        assert on.dram_bytes < off.dram_bytes
        assert on.total_cycles <= off.total_cycles
        assert on.sparsity_reduction > 0
        assert off.sparsity_reduction == 0.0

    def test_memory_coordination_reduces_cycles(self):
        g = small_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        wl = model.workloads(g)[0]
        on = HyGCNSimulator(small_config()).run_workload(wl)
        off = HyGCNSimulator(small_config(enable_memory_coordination=False)) \
            .run_workload(wl)
        assert on.total_cycles < off.total_cycles
        # same data is moved either way
        assert on.dram_bytes == off.dram_bytes

    def test_energy_pipeline_lower_energy_higher_latency(self):
        g = small_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        wl = model.workloads(g)[0]
        lat = HyGCNSimulator(small_config(pipeline_mode=PipelineMode.LATENCY)) \
            .run_workload(wl)
        en = HyGCNSimulator(small_config(pipeline_mode=PipelineMode.ENERGY)) \
            .run_workload(wl)
        assert en.energy.combination_engine_pj < lat.energy.combination_engine_pj
        assert en.avg_vertex_latency_cycles > lat.avg_vertex_latency_cycles

    def test_stream_bytes_accounted(self):
        g = small_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        report = HyGCNSimulator(small_config()).run_workload(model.workloads(g)[0])
        streams = report.dram_bytes_by_stream
        assert set(streams) >= {"edges", "input_features", "weights", "output_features"}
        assert sum(streams.values()) == report.dram_bytes


class TestRunModel:
    def test_all_models_run_on_dataset(self):
        g = load_dataset("IB", seed=0)
        sim = HyGCNSimulator()
        for name in MODEL_NAMES:
            model = build_model(name, input_length=g.feature_length)
            report = sim.run_model(model, g, dataset_name="IB")
            assert report.total_cycles > 0
            assert report.total_energy_j > 0
            assert report.model_name == model.name
            assert report.dataset_name == "IB"

    def test_multi_layer_model_accumulates(self):
        g = small_graph()
        one = build_gcn(g.feature_length, hidden_sizes=(32,))
        two = build_gcn(g.feature_length, hidden_sizes=(32, 32))
        sim = HyGCNSimulator(small_config())
        assert sim.run_model(two, g).total_cycles > sim.run_model(one, g).total_cycles
        assert len(sim.run_model(two, g).layers) == 2

    def test_diffpool_includes_matmul_layer(self):
        g = small_graph()
        model = build_diffpool(g.feature_length, hidden_size=32, num_clusters=16)
        report = HyGCNSimulator(small_config()).run_model(model, g)
        assert report.layers[-1].name == "diffpool_matmuls"
        assert report.layers[-1].macs > 0
        assert len(report.layers) == 3

    def test_summary_keys(self):
        g = small_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        summary = HyGCNSimulator(small_config()).run_model(model, g).summary()
        assert {"model", "dataset", "cycles", "time_s", "energy_j",
                "dram_mb", "bandwidth_utilization"} <= set(summary)

    def test_speedup_and_energy_ratio_helpers(self):
        g = small_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        report = HyGCNSimulator(small_config()).run_model(model, g)
        assert report.speedup_over(report.execution_time_s * 10) == pytest.approx(10.0)
        assert report.energy_ratio_to(report.total_energy_j * 4) == pytest.approx(0.25)

    def test_gin_more_aggregation_heavy_than_gcn(self):
        # GIN aggregates at the full feature length with a two-layer MLP; its
        # total work on the same graph exceeds single-layer GCN's.
        g = small_graph()
        sim = HyGCNSimulator(small_config())
        gcn = sim.run_model(build_model("GCN", input_length=g.feature_length), g)
        gin = sim.run_model(build_model("GIN", input_length=g.feature_length), g)
        assert gin.total_cycles >= gcn.total_cycles
