"""Tests for the Coordinator, memory access handler and programming model."""

import numpy as np
import pytest

from repro.core import (
    ACCESS_PRIORITY,
    AggregationEngine,
    CombinationEngine,
    Coordinator,
    EdgeMVMProgram,
    HyGCNConfig,
    IntervalTiming,
    MemoryAccessHandler,
    PipelineMode,
)
from repro.hw import MemoryRequest
from repro.graphs import erdos_renyi_graph
from repro.models import build_gcn, build_graphsage


def gcn_workload(graph, hidden=32):
    return build_gcn(graph.feature_length, hidden_sizes=(hidden,)).workloads(graph)[0]


class TestMemoryAccessHandler:
    def make_interleaved_batch(self, per_stream=32, chunk=2048):
        batch = []
        for i in range(per_stream):
            for stream in ACCESS_PRIORITY:
                batch.append(MemoryRequest(stream, i * chunk, chunk))
        return batch

    def test_priority_ordering(self):
        handler = MemoryAccessHandler(HyGCNConfig(enable_memory_coordination=True))
        batch = self.make_interleaved_batch()
        ordered = handler._order_requests(batch)
        streams = [r.stream for r in ordered]
        # all edges come before all input features, etc.
        boundaries = [streams.index(s) for s in ACCESS_PRIORITY]
        assert boundaries == sorted(boundaries)
        for stream in ACCESS_PRIORITY:
            first = streams.index(stream)
            last = len(streams) - 1 - streams[::-1].index(stream)
            assert streams[first:last + 1] == [stream] * (last - first + 1)

    def test_uncoordinated_round_robin(self):
        handler = MemoryAccessHandler(HyGCNConfig(enable_memory_coordination=False))
        batch = self.make_interleaved_batch(per_stream=4)
        ordered = handler._order_requests(batch)
        # the first four requests are one from each stream
        assert {r.stream for r in ordered[:4]} == set(ACCESS_PRIORITY)

    def test_coordination_improves_service_time(self):
        coordinated = MemoryAccessHandler(HyGCNConfig(enable_memory_coordination=True))
        uncoordinated = MemoryAccessHandler(HyGCNConfig(enable_memory_coordination=False))
        batch = self.make_interleaved_batch(per_stream=64)
        res_c = coordinated.service_batch(list(batch))
        res_u = uncoordinated.service_batch(list(batch))
        # coordination exposes channel/bank parallelism: same bytes, fewer cycles
        assert res_c.stats.bytes_transferred == res_u.stats.bytes_transferred
        assert res_c.stats.row_hit_rate >= res_u.stats.row_hit_rate
        assert res_c.total_cycles < res_u.total_cycles

    def test_cycles_attributed_to_streams(self):
        handler = MemoryAccessHandler(HyGCNConfig())
        batch = self.make_interleaved_batch(per_stream=8)
        result = handler.service_batch(batch)
        assert set(result.cycles_by_stream) == set(ACCESS_PRIORITY)
        total_attr = sum(result.cycles_by_stream.values())
        assert total_attr == pytest.approx(result.total_cycles, abs=len(ACCESS_PRIORITY))
        assert result.cycles_for(("edges", "input_features")) <= result.total_cycles

    def test_empty_batch(self):
        handler = MemoryAccessHandler(HyGCNConfig())
        result = handler.service_batch([])
        assert result.total_cycles == 0
        assert result.cycles_by_stream == {}

    def test_total_stats_accumulate_and_reset(self):
        handler = MemoryAccessHandler(HyGCNConfig())
        handler.service_batch(self.make_interleaved_batch(per_stream=4))
        assert handler.total_stats.bytes_transferred > 0
        assert 0.0 < handler.bandwidth_utilization(10**6) <= 1.0
        handler.reset()
        assert handler.total_stats.bytes_transferred == 0


class TestCoordinator:
    def make_timings(self, agg, comb):
        return [IntervalTiming(i, a, c) for i, (a, c) in enumerate(zip(agg, comb))]

    def test_pipeline_overlaps_engines(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        wl = gcn_workload(g)
        coordinator = Coordinator(HyGCNConfig())
        timings = self.make_timings([100, 100, 100], [80, 80, 80])
        pipelined = coordinator.compose(wl, timings, PipelineMode.LATENCY)
        serial = coordinator.compose(wl, timings, PipelineMode.NONE)
        assert pipelined.total_cycles < serial.total_cycles
        assert serial.total_cycles == 300 + 240
        # perfect 2-stage pipeline: a0 + max pairs + c_last
        assert pipelined.total_cycles == 100 + 100 + 100 + 80

    def test_single_interval_pipeline_equals_serial(self):
        g = erdos_renyi_graph(16, 32, feature_length=8, seed=0)
        wl = gcn_workload(g)
        coordinator = Coordinator(HyGCNConfig())
        timings = self.make_timings([50], [20])
        assert coordinator.compose(wl, timings, PipelineMode.LATENCY).total_cycles == 70
        assert coordinator.compose(wl, timings, PipelineMode.NONE).total_cycles == 70

    def test_empty_timings(self):
        g = erdos_renyi_graph(16, 32, feature_length=8, seed=0)
        wl = gcn_workload(g)
        timing = Coordinator(HyGCNConfig()).compose(wl, [], PipelineMode.LATENCY)
        assert timing.total_cycles == 0

    def test_invalid_mode_rejected(self):
        g = erdos_renyi_graph(16, 32, feature_length=8, seed=0)
        wl = gcn_workload(g)
        with pytest.raises(ValueError):
            Coordinator(HyGCNConfig()).compose(wl, [], "bogus")

    def test_latency_mode_lower_vertex_latency_than_energy(self):
        g = erdos_renyi_graph(256, 2048, feature_length=64, seed=0)
        wl = gcn_workload(g, hidden=64)
        coordinator = Coordinator(HyGCNConfig())
        timings = self.make_timings([1000, 1000], [800, 800])
        lat = coordinator.compose(wl, timings, PipelineMode.LATENCY)
        en = coordinator.compose(wl, timings, PipelineMode.ENERGY)
        assert lat.avg_vertex_latency_cycles < en.avg_vertex_latency_cycles

    def test_buffer_traffic_recorded(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        wl = gcn_workload(g)
        cfg = HyGCNConfig()
        agg_tasks = AggregationEngine(cfg).process_layer(wl)
        coordinator = Coordinator(cfg)
        coordinator.record_buffer_traffic(wl, agg_tasks)
        assert coordinator.aggregation_buffer.stats.total_bytes > 0
        assert coordinator.aggregation_buffer.swaps == len(agg_tasks)


class TestEdgeMVMProgram:
    def test_trace_counts_edges_and_vertices(self):
        g = erdos_renyi_graph(32, 128, feature_length=8, seed=0)
        wl = gcn_workload(g)
        trace = EdgeMVMProgram(wl).trace()
        assert trace.edges_processed == g.num_edges
        assert trace.vertices_processed == g.num_vertices
        assert trace.mvms_executed == g.num_vertices
        assert trace.combination_macs == wl.combination_macs()

    def test_trace_respects_sampling(self):
        g = erdos_renyi_graph(64, 1024, feature_length=8, seed=1)
        wl = build_graphsage(g.feature_length, hidden_sizes=(8,),
                             sample_neighbors=2).workloads(g)[0]
        trace = EdgeMVMProgram(wl).trace()
        assert trace.edges_processed < g.num_edges
        assert trace.max_vertex_edges <= 2

    def test_run_matches_layer_forward(self):
        g = erdos_renyi_graph(32, 128, feature_length=8, seed=0)
        model = build_gcn(g.feature_length, hidden_sizes=(8,))
        wl = model.workloads(g)[0]
        program = EdgeMVMProgram(wl)
        np.testing.assert_allclose(program.run(), model.layers[0].forward(g, g.features))

    def test_edge_parallel_batches_cover_all_edges(self):
        g = erdos_renyi_graph(32, 128, feature_length=8, seed=0)
        wl = gcn_workload(g)
        batches = EdgeMVMProgram(wl).edge_parallel_batches(batch_size=16)
        total = sum(len(b) for b in batches)
        assert total == g.num_edges
        assert all(len(b) <= 16 for b in batches)

    def test_edge_parallel_batches_invalid_size(self):
        g = erdos_renyi_graph(8, 16, feature_length=4, seed=0)
        with pytest.raises(ValueError):
            EdgeMVMProgram(gcn_workload(g)).edge_parallel_batches(0)

    def test_avg_vertex_edges(self):
        g = erdos_renyi_graph(32, 128, feature_length=8, seed=0)
        trace = EdgeMVMProgram(gcn_workload(g)).trace()
        assert trace.avg_vertex_edges == pytest.approx(g.num_edges / g.num_vertices)
