"""Tests for the 32-bit fixed-point quantisation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quantization import (
    FixedPointFormat,
    compare_precision,
    dequantize,
    quantization_error,
    quantize,
    quantize_graph,
    quantize_model,
)
from repro.graphs import erdos_renyi_graph
from repro.models import build_gcn


class TestFixedPointFormat:
    def test_default_is_32_bit(self):
        fmt = FixedPointFormat()
        assert fmt.total_bits == 32
        assert fmt.bytes_per_value == 4
        assert fmt.scale == 2.0 ** -15

    def test_range(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=4)
        assert fmt.max_value == pytest.approx(127 / 16)
        assert fmt.min_value == pytest.approx(-8.0)

    def test_invalid_formats(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=1)
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=8, frac_bits=8)


class TestQuantizeRoundTrip:
    def test_roundtrip_error_bounded_by_half_lsb(self):
        fmt = FixedPointFormat()
        values = np.linspace(-100, 100, 1001)
        assert quantization_error(values, fmt) <= fmt.scale / 2 + 1e-12

    def test_saturation(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=0)
        codes = quantize(np.array([1000.0, -1000.0]), fmt)
        np.testing.assert_array_equal(codes, [127, -128])

    def test_zero_preserved(self):
        fmt = FixedPointFormat()
        assert dequantize(quantize(np.array([0.0]), fmt), fmt)[0] == 0.0

    def test_codes_are_integers(self):
        codes = quantize(np.random.default_rng(0).standard_normal(100))
        assert codes.dtype == np.int64

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1000, 1000), min_size=1, max_size=50))
    def test_property_roundtrip_bounded(self, values):
        fmt = FixedPointFormat()
        arr = np.array(values)
        in_range = np.clip(arr, fmt.min_value, fmt.max_value)
        error = np.max(np.abs(in_range - dequantize(quantize(in_range, fmt), fmt)))
        assert error <= fmt.scale / 2 + 1e-9


class TestModelQuantization:
    def test_quantize_graph_preserves_structure(self):
        g = erdos_renyi_graph(32, 128, feature_length=8, seed=0)
        q = quantize_graph(g)
        assert q.num_edges == g.num_edges
        assert q.name.endswith("[q32]")
        assert np.max(np.abs(q.features - g.features)) <= FixedPointFormat().scale

    def test_quantize_model_in_place(self):
        model = build_gcn(16, hidden_sizes=(8,))
        original = model.layers[0].combination.mlp.weights[0].copy()
        quantize_model(model)
        quantized = model.layers[0].combination.mlp.weights[0]
        assert np.max(np.abs(original - quantized)) <= FixedPointFormat().scale

    def test_32bit_inference_accuracy_preserved(self):
        # the paper's claim: 32-bit fixed point maintains GCN inference accuracy
        g = erdos_renyi_graph(64, 256, feature_length=32, seed=1)
        model = build_gcn(g.feature_length, hidden_sizes=(16,))
        abs_error, rel_error = compare_precision(model, g)
        assert rel_error < 1e-3

    def test_low_precision_degrades(self):
        g = erdos_renyi_graph(64, 256, feature_length=32, seed=1)
        model = build_gcn(g.feature_length, hidden_sizes=(16,))
        _, rel32 = compare_precision(model, g, FixedPointFormat(32, 15))
        model2 = build_gcn(g.feature_length, hidden_sizes=(16,))
        _, rel8 = compare_precision(model2, g, FixedPointFormat(8, 4))
        assert rel8 > rel32
