"""Property-based tests on core simulator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import HyGCNConfig, HyGCNSimulator, PipelineMode, SystolicArrayModel
from repro.core.coordinator import Coordinator, IntervalTiming
from repro.graphs import erdos_renyi_graph
from repro.models import build_gcn

SLOW = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestSystolicProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        vertices=st.integers(1, 2048),
        in_features=st.integers(1, 512),
        out_features=st.integers(1, 256),
        cooperative=st.booleans(),
    )
    def test_layer_cost_invariants(self, vertices, in_features, out_features, cooperative):
        array = SystolicArrayModel(8, 4, 128)
        cost = array.layer_cost(vertices, in_features, out_features, cooperative)
        # MAC count is exact
        assert cost.macs == vertices * in_features * out_features
        # cycles can never beat the peak-throughput bound
        assert cost.cycles >= cost.macs // array.total_pes
        # weight traffic is at least one full tile and a multiple of the tile size
        tile = in_features * out_features * 4
        assert cost.weight_buffer_read_bytes >= tile
        assert cost.weight_buffer_read_bytes % tile == 0

    @settings(max_examples=30, deadline=None)
    @given(vertices=st.integers(1, 4096), in_features=st.integers(1, 256),
           out_features=st.integers(1, 256))
    def test_cooperative_never_reads_more_weights(self, vertices, in_features, out_features):
        array = SystolicArrayModel(8, 4, 128)
        independent = array.layer_cost(vertices, in_features, out_features, False)
        cooperative = array.layer_cost(vertices, in_features, out_features, True)
        assert cooperative.weight_buffer_read_bytes <= independent.weight_buffer_read_bytes


class TestCoordinatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        agg=st.lists(st.integers(0, 10_000), min_size=1, max_size=12),
        comb=st.lists(st.integers(0, 10_000), min_size=1, max_size=12),
    )
    def test_pipeline_never_slower_than_serial(self, agg, comb):
        n = min(len(agg), len(comb))
        timings = [IntervalTiming(i, agg[i], comb[i]) for i in range(n)]
        graph = erdos_renyi_graph(16, 48, feature_length=8, seed=0)
        workload = build_gcn(graph.feature_length, hidden_sizes=(8,)).workloads(graph)[0]
        coordinator = Coordinator(HyGCNConfig())
        serial = coordinator.compose(workload, timings, PipelineMode.NONE)
        pipelined = coordinator.compose(workload, timings, PipelineMode.LATENCY)
        assert pipelined.total_cycles <= serial.total_cycles
        # both bounded below by the slower engine's total work
        lower_bound = max(sum(t.aggregation_cycles for t in timings),
                          sum(t.combination_cycles for t in timings))
        assert pipelined.total_cycles >= lower_bound


class TestSimulatorProperties:
    @SLOW
    @given(
        num_vertices=st.integers(24, 96),
        edge_factor=st.integers(2, 8),
        feature_length=st.sampled_from([8, 32, 96]),
        seed=st.integers(0, 3),
    )
    def test_report_invariants_hold_for_random_graphs(self, num_vertices, edge_factor,
                                                      feature_length, seed):
        graph = erdos_renyi_graph(num_vertices, num_vertices * edge_factor,
                                  feature_length=feature_length, seed=seed)
        model = build_gcn(graph.feature_length, hidden_sizes=(16,), seed=seed)
        report = HyGCNSimulator(HyGCNConfig(
            input_buffer_bytes=4 * 1024,
            aggregation_buffer_bytes=64 * 1024,
        )).run_workload(model.workloads(graph)[0])
        assert report.total_cycles > 0
        assert report.macs == graph.num_vertices * feature_length * 16
        assert report.num_edges == graph.num_edges
        assert 0.0 <= report.sparsity_reduction <= 1.0
        assert 0.0 <= report.bandwidth_utilization <= 1.0
        assert sum(report.dram_bytes_by_stream.values()) == report.dram_bytes
        # the pipeline composition can never be faster than either engine alone
        assert report.total_cycles >= max(0, report.combination_cycles // report.num_intervals)
