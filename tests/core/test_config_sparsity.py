"""Tests for the accelerator configuration and the sparsity eliminator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HyGCNConfig, PipelineMode, SparsityEliminator
from repro.core.sparsity import EffectualWindow


class TestHyGCNConfig:
    def test_table6_defaults(self):
        cfg = HyGCNConfig()
        assert cfg.num_simd_cores == 32
        assert cfg.simd_width == 16
        assert cfg.total_simd_lanes == 512
        assert cfg.num_systolic_modules == 8
        assert cfg.total_pes == 8 * 4 * 128
        assert cfg.aggregation_buffer_bytes == 16 << 20
        assert cfg.input_buffer_bytes == 128 << 10
        assert cfg.hbm.peak_bandwidth_gbps == 256

    def test_interval_and_shard_sizing(self):
        cfg = HyGCNConfig()
        # one ping-pong chunk = 8 MB; at 128 floats/vertex that is 16384 vertices
        assert cfg.interval_size(128) == (8 << 20) // (128 * 4)
        # input working set = 64 KB; at 128 floats/vertex that is 128 rows
        assert cfg.shard_height(128) == (64 << 10) // (128 * 4)

    def test_sizing_never_zero(self):
        cfg = HyGCNConfig()
        assert cfg.interval_size(10**9) >= 1
        assert cfg.shard_height(10**9) >= 1

    def test_invalid_pipeline_mode(self):
        with pytest.raises(ValueError):
            HyGCNConfig(pipeline_mode="bogus")

    def test_invalid_structural_parameter(self):
        with pytest.raises(ValueError):
            HyGCNConfig(num_simd_cores=0)
        with pytest.raises(ValueError):
            HyGCNConfig(aggregation_buffer_bytes=-1)

    def test_with_overrides(self):
        cfg = HyGCNConfig().with_overrides(enable_sparsity_elimination=False,
                                           aggregation_buffer_bytes=2 << 20)
        assert cfg.enable_sparsity_elimination is False
        assert cfg.aggregation_buffer_bytes == 2 << 20
        # original defaults untouched elsewhere
        assert cfg.num_simd_cores == 32

    def test_pipeline_modes_enumerated(self):
        assert set(PipelineMode.ALL) == {"none", "latency", "energy"}


class TestSparsityEliminator:
    def test_empty_rows_no_windows(self):
        report = SparsityEliminator(4).eliminate([], num_rows=100)
        assert report.windows == []
        assert report.loaded_rows == 0
        assert report.sparsity_reduction == 0.0 or report.total_rows == 100

    def test_single_row(self):
        report = SparsityEliminator(4).eliminate([10], num_rows=100)
        assert report.windows == [EffectualWindow(10, 11)]
        assert report.loaded_rows == 1
        assert report.eliminated_rows == 99

    def test_sliding_skips_empty_prefix(self):
        report = SparsityEliminator(4).eliminate([50, 51], num_rows=100)
        assert report.windows[0].start == 50

    def test_shrinking_trims_empty_suffix(self):
        # rows 0 and 1 effectual, window height 8: window shrinks to [0, 2)
        report = SparsityEliminator(8).eliminate([0, 1], num_rows=100)
        assert report.windows == [EffectualWindow(0, 2)]

    def test_multiple_windows(self):
        rows = [0, 1, 20, 21, 22]
        report = SparsityEliminator(4).eliminate(rows, num_rows=100)
        assert len(report.windows) == 2
        assert report.windows[0] == EffectualWindow(0, 2)
        assert report.windows[1] == EffectualWindow(20, 23)
        assert report.loaded_rows == 5
        assert report.residual_waste == 0

    def test_window_spanning_gap_has_residual_waste(self):
        # rows 0 and 3 fall in one height-4 window; rows 1-2 are wasted loads
        report = SparsityEliminator(4).eliminate([0, 3], num_rows=100)
        assert report.windows == [EffectualWindow(0, 4)]
        assert report.residual_waste == 2

    def test_duplicates_collapsed(self):
        report = SparsityEliminator(4).eliminate([5, 5, 5], num_rows=10)
        assert report.effectual_rows == 1

    def test_rows_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SparsityEliminator(4).windows_for_rows([200], num_rows=100)

    def test_invalid_window_height(self):
        with pytest.raises(ValueError):
            SparsityEliminator(0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            EffectualWindow(5, 5)

    def test_dense_rows_one_window_per_block(self):
        rows = list(range(100))
        report = SparsityEliminator(10).eliminate(rows, num_rows=100)
        assert report.loaded_rows == 100
        assert report.sparsity_reduction == 0.0

    def test_custom_baseline(self):
        report = SparsityEliminator(4).eliminate([0], num_rows=100, baseline_rows=10)
        assert report.total_rows == 10
        assert report.sparsity_reduction == pytest.approx(0.9)

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(st.integers(0, 199), min_size=0, max_size=60),
        height=st.integers(1, 50),
    )
    def test_property_windows_cover_all_effectual_rows(self, rows, height):
        report = SparsityEliminator(height).eliminate(rows, num_rows=200)
        covered = set()
        for w in report.windows:
            covered.update(range(w.start, w.stop))
        assert set(rows) <= covered
        # windows never load more than the baseline and never overlap
        assert report.loaded_rows <= 200
        sorted_windows = sorted(report.windows, key=lambda w: w.start)
        for a, b in zip(sorted_windows, sorted_windows[1:]):
            assert a.stop <= b.start

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(st.integers(0, 199), min_size=1, max_size=60),
        height=st.integers(1, 50),
    )
    def test_property_loaded_at_least_effectual(self, rows, height):
        report = SparsityEliminator(height).eliminate(rows, num_rows=200)
        assert report.loaded_rows >= report.effectual_rows
        assert 0.0 <= report.sparsity_reduction <= 1.0
