"""Tests for the LayerReport / SimulationReport result containers."""

import pytest

from repro.core.stats import LayerReport, SimulationReport
from repro.hw import DRAMStats, EnergyBreakdown


def make_layer(name="layer0", cycles=1000, agg=600, comb=400, dram_bytes=4096,
               energy_pj=2000.0, vertex_latency=50.0, sparsity=0.25):
    stats = DRAMStats(requests=4, bytes_transferred=dram_bytes, row_hits=2,
                      row_misses=2, busy_cycles=cycles // 2,
                      total_channel_cycles=cycles, energy_pj=dram_bytes * 56.0)
    energy = EnergyBreakdown(
        aggregation_compute_pj=energy_pj * 0.2,
        aggregation_buffers_pj=energy_pj * 0.1,
        combination_compute_pj=energy_pj * 0.4,
        combination_buffers_pj=energy_pj * 0.1,
        coordinator_buffers_pj=energy_pj * 0.1,
        dram_pj=energy_pj * 0.05,
        static_pj=energy_pj * 0.05,
    )
    return LayerReport(
        name=name,
        total_cycles=cycles,
        aggregation_cycles=agg,
        combination_cycles=comb,
        num_vertices=64,
        num_edges=256,
        simd_ops=10_000,
        macs=20_000,
        dram_stats=stats,
        dram_bytes_by_stream={"edges": dram_bytes // 2, "input_features": dram_bytes // 2},
        energy=energy,
        avg_vertex_latency_cycles=vertex_latency,
        sparsity_reduction=sparsity,
        loaded_feature_rows=48,
        baseline_feature_rows=64,
        num_intervals=2,
    )


class TestLayerReport:
    def test_derived_properties(self):
        layer = make_layer()
        assert layer.dram_bytes == 4096
        assert 0.0 <= layer.bandwidth_utilization <= 1.0

    def test_zero_cycles_bandwidth(self):
        layer = make_layer(cycles=0)
        assert layer.bandwidth_utilization == 0.0


class TestSimulationReport:
    def make_report(self, num_layers=3):
        report = SimulationReport(model_name="GCN", dataset_name="CR")
        for i in range(num_layers):
            report.layers.append(make_layer(name=f"layer{i}", cycles=1000 * (i + 1)))
        return report

    def test_totals_sum_layers(self):
        report = self.make_report()
        assert report.total_cycles == 1000 + 2000 + 3000
        assert report.total_dram_bytes == 3 * 4096
        assert report.aggregation_cycles == 3 * 600
        assert report.combination_cycles == 3 * 400

    def test_execution_time_uses_clock(self):
        report = self.make_report()
        assert report.execution_time_s == pytest.approx(6000 / 1e9)
        report.clock_ghz = 2.0
        assert report.execution_time_s == pytest.approx(6000 / 2e9)

    def test_energy_merge(self):
        report = self.make_report()
        assert report.total_energy_j == pytest.approx(3 * 2000.0 * 1e-12)

    def test_dram_stats_merge(self):
        report = self.make_report()
        assert report.dram_stats.requests == 12
        assert report.dram_stats.bytes_transferred == 3 * 4096

    def test_stream_bytes_aggregate(self):
        report = self.make_report()
        streams = report.dram_bytes_by_stream()
        assert streams["edges"] == 3 * 2048
        assert sum(streams.values()) == report.total_dram_bytes

    def test_average_metrics(self):
        report = self.make_report()
        assert report.avg_vertex_latency_cycles == pytest.approx(50.0)
        assert report.avg_sparsity_reduction == pytest.approx(0.25)

    def test_empty_report(self):
        report = SimulationReport(model_name="GCN", dataset_name="CR")
        assert report.total_cycles == 0
        assert report.avg_vertex_latency_cycles == 0.0
        assert report.avg_sparsity_reduction == 0.0
        assert report.bandwidth_utilization == 0.0

    def test_speedup_and_energy_ratio(self):
        report = self.make_report()
        assert report.speedup_over(report.execution_time_s * 2) == pytest.approx(2.0)
        assert report.energy_ratio_to(report.total_energy_j * 2) == pytest.approx(0.5)

    def test_summary_contents(self):
        summary = self.make_report().summary()
        assert summary["model"] == "GCN"
        assert summary["dataset"] == "CR"
        assert summary["cycles"] == 6000
