"""Tests for the Aggregation Engine, systolic arrays and Combination Engine."""

import numpy as np
import pytest

from repro.core import (
    AggregationEngine,
    CombinationEngine,
    HyGCNConfig,
    SystolicArrayModel,
)
from repro.graphs import community_graph, erdos_renyi_graph, power_law_graph
from repro.models import build_gcn, build_graphsage, build_gin


def gcn_workload(graph, hidden=32, seed=0):
    model = build_gcn(graph.feature_length, hidden_sizes=(hidden,), seed=seed)
    return model.workloads(graph)[0]


def small_config(**overrides):
    """A configuration scaled down so small test graphs span several intervals."""
    defaults = dict(
        input_buffer_bytes=2 * 1024,
        edge_buffer_bytes=32 * 1024,
        aggregation_buffer_bytes=4 * 1024,
        weight_buffer_bytes=256 * 1024,
        output_buffer_bytes=64 * 1024,
    )
    defaults.update(overrides)
    return HyGCNConfig(**defaults)


class TestAggregationEngine:
    def test_edges_conserved_across_intervals(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        engine = AggregationEngine(small_config())
        tasks = engine.process_layer(gcn_workload(g))
        assert sum(t.num_edges for t in tasks) == g.num_edges
        assert sum(t.num_vertices for t in tasks) == g.num_vertices

    def test_multiple_intervals_created_with_small_buffer(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        tasks = AggregationEngine(small_config()).process_layer(gcn_workload(g))
        assert len(tasks) > 1

    def test_sparsity_elimination_reduces_loaded_rows(self):
        g = community_graph(256, 1024, feature_length=16, num_communities=16, seed=1)
        wl = gcn_workload(g)
        with_opt = AggregationEngine(small_config()).process_layer(wl)
        without = AggregationEngine(
            small_config(enable_sparsity_elimination=False)).process_layer(wl)
        assert sum(t.loaded_rows for t in with_opt) < sum(t.loaded_rows for t in without)
        assert sum(t.input_feature_bytes for t in with_opt) < \
            sum(t.input_feature_bytes for t in without)

    def test_baseline_loads_all_rows_per_interval(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        cfg = small_config(enable_sparsity_elimination=False)
        tasks = AggregationEngine(cfg).process_layer(gcn_workload(g))
        for t in tasks:
            if t.num_edges:
                assert t.loaded_rows == g.num_vertices

    def test_compute_cycles_scale_with_lanes(self):
        g = erdos_renyi_graph(64, 512, feature_length=64, seed=0)
        wl = gcn_workload(g)
        few = AggregationEngine(small_config(num_simd_cores=4)).process_layer(wl)
        many = AggregationEngine(small_config(num_simd_cores=32)).process_layer(wl)
        assert sum(t.compute_cycles for t in few) > sum(t.compute_cycles for t in many)

    def test_sampling_reduces_edges(self):
        g = power_law_graph(128, 2048, feature_length=16, seed=2)
        model = build_graphsage(g.feature_length, hidden_sizes=(16,), sample_neighbors=2)
        wl = model.workloads(g)[0]
        engine = AggregationEngine(small_config())
        sampled_graph = engine.prepare_graph(wl)
        tasks = engine.process_layer(wl, graph=sampled_graph)
        assert sum(t.num_edges for t in tasks) < g.num_edges

    def test_dram_requests_use_expected_streams(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        tasks = AggregationEngine(small_config()).process_layer(gcn_workload(g))
        streams = {r.stream for t in tasks for r in t.dram_requests}
        assert streams <= {"edges", "input_features"}
        assert "input_features" in streams

    def test_dram_request_bytes_match_declared(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        tasks = AggregationEngine(small_config()).process_layer(gcn_workload(g))
        for t in tasks:
            assert t.dram_bytes == t.input_feature_bytes + t.edge_bytes

    def test_buffer_traffic_recorded(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        engine = AggregationEngine(small_config())
        engine.process_layer(gcn_workload(g))
        assert engine.input_buffer.stats.total_bytes > 0
        assert engine.edge_buffer.stats.total_bytes > 0

    def test_simd_ops_match_edge_and_vertex_counts(self):
        g = erdos_renyi_graph(32, 128, feature_length=8, seed=0)
        wl = gcn_workload(g)
        tasks = AggregationEngine(HyGCNConfig()).process_layer(wl)
        expected = (g.num_edges + g.num_vertices) * wl.in_feature_length
        assert sum(t.simd_ops for t in tasks) == expected


class TestSystolicArrayModel:
    def test_dimensions(self):
        arr = SystolicArrayModel(8, 4, 128)
        assert arr.pes_per_module == 512
        assert arr.total_pes == 4096
        assert arr.small_group_size() == 4
        assert arr.large_group_size() == 32

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SystolicArrayModel(0, 4, 128)

    def test_layer_cost_throughput_bound(self):
        arr = SystolicArrayModel(8, 4, 128)
        cost = arr.layer_cost(1024, 256, 128, cooperative=False)
        assert cost.macs == 1024 * 256 * 128
        assert cost.cycles >= cost.macs // arr.total_pes

    def test_cooperative_reads_fewer_weights(self):
        arr = SystolicArrayModel(8, 4, 128)
        ind = arr.layer_cost(1024, 256, 128, cooperative=False)
        coop = arr.layer_cost(1024, 256, 128, cooperative=True)
        assert coop.weight_buffer_read_bytes < ind.weight_buffer_read_bytes
        # the ratio approaches the number of modules
        assert ind.weight_buffer_read_bytes / coop.weight_buffer_read_bytes \
            == pytest.approx(8, rel=0.1)

    def test_cycles_similar_between_modes(self):
        arr = SystolicArrayModel(8, 4, 128)
        ind = arr.layer_cost(1024, 256, 128, cooperative=False)
        coop = arr.layer_cost(1024, 256, 128, cooperative=True)
        assert abs(ind.cycles - coop.cycles) <= arr.large_group_size() + arr.cols

    def test_group_cost_zero_vertices(self):
        arr = SystolicArrayModel(8, 4, 128)
        assert arr.group_cost(0, 16, 16, cooperative=False).cycles == 0
        assert arr.layer_cost(0, 16, 16, cooperative=True).macs == 0

    def test_cycles_per_vertex(self):
        arr = SystolicArrayModel(8, 4, 128)
        cost = arr.group_cost(32, 128, 128, cooperative=True)
        assert cost.cycles_per_vertex > 0

    def test_fewer_modules_same_total_pes_reads_fewer_weights(self):
        # Fig. 18g: coarser module granularity (same total arrays) reuses
        # weights across more vertices, lowering Weight Buffer traffic.
        fine = SystolicArrayModel(32, 1, 128)
        coarse = SystolicArrayModel(2, 16, 128)
        v, k, n = 2048, 256, 128
        assert coarse.layer_cost(v, k, n, False).weight_buffer_read_bytes < \
            fine.layer_cost(v, k, n, False).weight_buffer_read_bytes


class TestCombinationEngine:
    def make_tasks(self, graph, workload, config=None):
        cfg = config or small_config()
        agg = AggregationEngine(cfg)
        tasks = agg.process_layer(workload)
        return CombinationEngine(cfg), tasks

    def test_macs_match_workload(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        wl = gcn_workload(g, hidden=32)
        engine, agg_tasks = self.make_tasks(g, wl)
        comb = engine.process_layer(wl, agg_tasks)
        assert sum(t.macs for t in comb) == g.num_vertices * 16 * 32

    def test_weights_fetched_once_when_resident(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        wl = gcn_workload(g, hidden=32)
        engine, agg_tasks = self.make_tasks(g, wl)
        comb = engine.process_layer(wl, agg_tasks)
        fetches = [t.weight_dram_bytes for t in comb if t.weight_dram_bytes > 0]
        assert len(fetches) == 1

    def test_weights_refetched_when_not_resident(self):
        g = erdos_renyi_graph(64, 256, feature_length=64, seed=0)
        wl = gcn_workload(g, hidden=64)
        cfg = small_config(weight_buffer_bytes=1024)  # too small for 64x64 floats
        engine, agg_tasks = self.make_tasks(g, wl, cfg)
        comb = engine.process_layer(wl, agg_tasks)
        fetches = [t for t in comb if t.weight_dram_bytes > 0]
        assert len(fetches) == len(comb)

    def test_output_bytes(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        wl = gcn_workload(g, hidden=32)
        engine, agg_tasks = self.make_tasks(g, wl)
        comb = engine.process_layer(wl, agg_tasks)
        assert sum(t.output_dram_bytes for t in comb) == g.num_vertices * 32 * 4

    def test_output_requests_are_writes(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        wl = gcn_workload(g, hidden=32)
        engine, agg_tasks = self.make_tasks(g, wl)
        comb = engine.process_layer(wl, agg_tasks)
        for task in comb:
            for request in task.dram_requests:
                if request.stream == "output_features":
                    assert request.is_write

    def test_gin_two_layer_mlp_counted(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        model = build_gin(g.feature_length, hidden_sizes=((32, 32),))
        wl = model.workloads(g)[0]
        engine, agg_tasks = self.make_tasks(g, wl)
        comb = engine.process_layer(wl, agg_tasks)
        assert sum(t.macs for t in comb) == g.num_vertices * (16 * 32 + 32 * 32)

    def test_cooperative_mode_reduces_weight_buffer_reads(self):
        g = erdos_renyi_graph(256, 1024, feature_length=32, seed=0)
        wl = gcn_workload(g, hidden=64)
        engine, agg_tasks = self.make_tasks(g, wl)
        independent = engine.process_layer(wl, agg_tasks, cooperative=False)
        cooperative = engine.process_layer(wl, agg_tasks, cooperative=True)
        assert sum(t.weight_buffer_read_bytes for t in cooperative) < \
            sum(t.weight_buffer_read_bytes for t in independent)

    def test_activation_ops(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=0)
        wl = gcn_workload(g, hidden=32)
        engine, agg_tasks = self.make_tasks(g, wl)
        comb = engine.process_layer(wl, agg_tasks)
        assert sum(t.activation_ops for t in comb) == g.num_vertices * 32
