"""Tests for the BaselineReport container shared by the CPU/GPU models."""

import pytest

from repro.baselines import BaselineReport


def make_report(**overrides):
    defaults = dict(
        platform="PyG-CPU",
        model_name="GCN",
        dataset_name="CR",
        aggregation_time_s=0.6,
        combination_time_s=0.4,
        aggregation_dram_bytes=6 * 10**9,
        combination_dram_bytes=4 * 10**9,
        energy_j=100.0,
        peak_bandwidth_gbps=136.5,
    )
    defaults.update(overrides)
    return BaselineReport(**defaults)


class TestBaselineReport:
    def test_total_time_and_bytes(self):
        report = make_report()
        assert report.total_time_s == pytest.approx(1.0)
        assert report.dram_bytes == 10**10

    def test_phase_fractions(self):
        report = make_report()
        assert report.aggregation_fraction == pytest.approx(0.6)
        assert report.combination_fraction == pytest.approx(0.4)

    def test_other_time_included_in_total(self):
        report = make_report(other_time_s=1.0)
        assert report.total_time_s == pytest.approx(2.0)
        assert report.aggregation_fraction == pytest.approx(0.3)

    def test_zero_time_fractions(self):
        report = make_report(aggregation_time_s=0.0, combination_time_s=0.0)
        assert report.aggregation_fraction == 0.0
        assert report.combination_fraction == 0.0
        assert report.bandwidth_utilization == 0.0

    def test_bandwidth_utilization(self):
        # 10 GB over 1 s against 136.5 GB/s peak
        report = make_report()
        assert report.bandwidth_utilization == pytest.approx(10 / 136.5, rel=1e-3)

    def test_bandwidth_utilization_capped_at_one(self):
        report = make_report(aggregation_dram_bytes=10**12, combination_dram_bytes=0)
        assert report.bandwidth_utilization == 1.0

    def test_summary_keys_and_values(self):
        summary = make_report().summary()
        assert summary["platform"] == "PyG-CPU"
        assert summary["aggregation_pct"] == pytest.approx(60.0)
        assert summary["dram_mb"] == pytest.approx(10**10 / (1 << 20))
        assert summary["out_of_memory"] is False

    def test_oom_flag_propagates(self):
        report = make_report(out_of_memory=True)
        assert report.summary()["out_of_memory"] is True
