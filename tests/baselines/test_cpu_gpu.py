"""Tests for the PyG-CPU and PyG-GPU analytical baseline models."""

import pytest

from repro.baselines import (
    CPUConfig,
    GPUConfig,
    PyGCPUModel,
    PyGGPUModel,
    characterize_phases,
    execution_pattern_table,
    execution_time_breakdown,
)
from repro.graphs import DATASETS, community_graph, load_dataset, power_law_graph
from repro.models import build_diffpool, build_gcn, build_model


def citation_like(seed=0):
    return community_graph(512, 2048, feature_length=256, num_communities=16, seed=seed)


class TestPyGCPUModel:
    def test_report_populated(self):
        g = citation_like()
        model = build_gcn(g.feature_length, hidden_sizes=(64,))
        report = PyGCPUModel().run(model, g, dataset_name="synthetic")
        assert report.total_time_s > 0
        assert report.aggregation_time_s > 0
        assert report.combination_time_s > 0
        assert report.dram_bytes > 0
        assert report.energy_j > 0
        assert 0.0 <= report.bandwidth_utilization <= 1.0
        assert report.platform == "PyG-CPU"

    def test_both_phases_significant(self):
        # Fig. 2's headline: neither phase is negligible.
        g = citation_like()
        model = build_gcn(g.feature_length, hidden_sizes=(64,))
        report = PyGCPUModel().run(model, g)
        assert 0.05 < report.aggregation_fraction < 0.99
        assert 0.01 < report.combination_fraction < 0.95

    def test_gin_more_aggregation_bound_than_gcn(self):
        g = citation_like()
        cpu = PyGCPUModel()
        gcn = cpu.run(build_model("GCN", input_length=g.feature_length), g)
        gin = cpu.run(build_model("GIN", input_length=g.feature_length), g)
        assert gin.aggregation_fraction > gcn.aggregation_fraction

    def test_algorithm_optimization_speeds_up_cpu(self):
        # Fig. 10a: the interval-shard optimisation helps on CPU.
        g = power_law_graph(1024, 16384, feature_length=128, seed=1)
        model = build_gcn(g.feature_length, hidden_sizes=(128,))
        plain = PyGCPUModel().run(model, g)
        optimized = PyGCPUModel(algorithm_optimized=True).run(model, g)
        assert optimized.total_time_s < plain.total_time_s
        assert optimized.dram_bytes < plain.dram_bytes
        assert optimized.platform.endswith("-OP")

    def test_dram_traffic_scales_with_edges(self):
        sparse = power_law_graph(512, 1024, feature_length=64, seed=2)
        dense = power_law_graph(512, 8192, feature_length=64, seed=2)
        model = build_gcn(64, hidden_sizes=(64,))
        cpu = PyGCPUModel()
        assert cpu.run(model, dense).aggregation_dram_bytes > \
            cpu.run(model, sparse).aggregation_dram_bytes

    def test_diffpool_adds_matmul_time(self):
        g = citation_like()
        cpu = PyGCPUModel()
        dfp = build_diffpool(g.feature_length, hidden_size=64, num_clusters=16)
        gcn = build_gcn(g.feature_length, hidden_sizes=(64,))
        assert cpu.run(dfp, g).combination_time_s > cpu.run(gcn, g).combination_time_s

    def test_config_derived_rates(self):
        cfg = CPUConfig()
        assert cfg.peak_gflops == 24 * 2.5 * 32
        assert cfg.sustained_gemm_gflops < cfg.peak_gflops


class TestPyGGPUModel:
    def test_report_populated(self):
        g = citation_like()
        model = build_gcn(g.feature_length, hidden_sizes=(64,))
        report = PyGGPUModel().run(model, g, dataset_name="synthetic")
        assert report.total_time_s > 0
        assert not report.out_of_memory
        assert report.platform == "PyG-GPU"

    def test_gpu_faster_than_cpu(self):
        g = citation_like()
        model = build_gcn(g.feature_length, hidden_sizes=(64,))
        cpu = PyGCPUModel().run(model, g)
        gpu = PyGGPUModel().run(model, g)
        assert gpu.total_time_s < cpu.total_time_s

    def test_oom_on_full_scale_reddit_gin(self):
        g = load_dataset("RD", seed=0)
        model = build_model("GIN", input_length=g.feature_length)
        report = PyGGPUModel().run(model, g, dataset_name="RD",
                                   full_scale_spec=DATASETS["RD"])
        assert report.out_of_memory
        assert report.notes["oom_footprint_gb"] > 16

    def test_no_oom_for_sampled_graphsage_on_reddit(self):
        g = load_dataset("RD", seed=0)
        model = build_model("GSC", input_length=g.feature_length)
        report = PyGGPUModel().run(model, g, dataset_name="RD",
                                   full_scale_spec=DATASETS["RD"])
        assert not report.out_of_memory

    def test_no_oom_without_full_scale_spec(self):
        g = load_dataset("RD", seed=0)
        model = build_model("GIN", input_length=g.feature_length)
        assert not PyGGPUModel().run(model, g, dataset_name="RD").out_of_memory

    def test_shard_optimization_slows_gpu_down(self):
        # Fig. 10b: the CPU-friendly shard optimisation hurts the GPU.
        g = citation_like()
        model = build_gcn(g.feature_length, hidden_sizes=(64,))
        plain = PyGGPUModel().run(model, g)
        sharded = PyGGPUModel(algorithm_optimized=True).run(model, g)
        assert sharded.total_time_s > plain.total_time_s

    def test_would_oom_threshold(self):
        gpu = PyGGPUModel()
        assert gpu.would_oom(num_edges=10 ** 9, feature_length=128)
        assert not gpu.would_oom(num_edges=10 ** 4, feature_length=128)


class TestCharacterization:
    def test_execution_time_breakdown_rows(self):
        rows = execution_time_breakdown(model_names=("GCN",), dataset_names=("IB", "CR"))
        assert len(rows) == 2
        for row in rows:
            assert row["aggregation_pct"] + row["combination_pct"] == pytest.approx(100, abs=0.5)

    def test_characterize_phases_table2_shape(self):
        g = community_graph(384, 4096, feature_length=128, num_communities=8, seed=3)
        chars = characterize_phases(graph=g, model_name="GCN", max_trace_vertices=96)
        agg, comb = chars["aggregation"], chars["combination"]
        # Table 2's qualitative content: aggregation needs far more DRAM per op
        # and misses much more often in L2/L3 than combination.
        assert agg.dram_bytes_per_op > 10 * comb.dram_bytes_per_op
        assert agg.l2_mpki > comb.l2_mpki
        assert agg.l3_mpki > comb.l3_mpki
        assert comb.sync_time_fraction == pytest.approx(0.36)
        assert agg.as_row()["phase"] == "Aggregation"

    def test_execution_pattern_table3(self):
        g = community_graph(256, 2048, feature_length=64, num_communities=8, seed=4)
        chars = characterize_phases(graph=g, model_name="GCN", max_trace_vertices=64)
        table = execution_pattern_table(chars)
        rows = {r["property"]: r for r in table}
        assert rows["Data Reusability"]["aggregation"] == "Low"
        assert rows["Computation Intensity"]["combination"] == "High"
        assert rows["Execution Bound"]["aggregation"] == "Memory"
        assert len(table) == 5
