"""Tests for the cache hierarchy simulator and trace generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import CacheConfig, CacheHierarchy, CacheLevel
from repro.baselines.cache import aggregation_trace, combination_trace
from repro.graphs import erdos_renyi_graph, power_law_graph


class TestCacheLevel:
    def test_hit_after_miss(self):
        level = CacheLevel(CacheConfig("L1", 1024, associativity=2, line_bytes=64))
        assert level.access(0) is False
        assert level.access(0) is True
        assert level.access(32) is True  # same line
        assert level.stats.misses == 1
        assert level.stats.hits == 2

    def test_lru_eviction(self):
        # 2-way, 64B lines, 2 sets -> capacity 256B
        level = CacheLevel(CacheConfig("L1", 256, associativity=2, line_bytes=64))
        # three lines mapping to the same set (stride = num_sets * line)
        a, b, c = 0, 128, 256
        level.access(a)
        level.access(b)
        level.access(c)          # evicts a (LRU)
        assert level.access(b) is True
        assert level.access(a) is False

    def test_reset(self):
        level = CacheLevel(CacheConfig("L1", 1024, associativity=2))
        level.access(0)
        level.reset()
        assert level.stats.accesses == 0
        assert level.access(0) is False

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            CacheConfig("L1", 0)
        with pytest.raises(ValueError):
            CacheConfig("L1", 1000, associativity=3, line_bytes=64)

    def test_miss_rate_and_mpki(self):
        level = CacheLevel(CacheConfig("L1", 1024, associativity=2))
        for i in range(10):
            level.access(i * 4096)
        assert level.stats.miss_rate == 1.0
        assert level.stats.mpki(instructions=1000) == 10.0
        assert level.stats.mpki(instructions=0) == 0.0


class TestCacheHierarchy:
    def test_miss_propagates_to_dram(self):
        hierarchy = CacheHierarchy()
        assert hierarchy.access(0) == "DRAM"
        assert hierarchy.access(0) == "L1"

    def test_l2_hit_after_l1_eviction(self):
        small_l1 = CacheConfig("L1", 128, associativity=2, line_bytes=64)
        big_l2 = CacheConfig("L2", 64 * 1024, associativity=8, line_bytes=64)
        hierarchy = CacheHierarchy([small_l1, big_l2])
        addresses = [i * 64 for i in range(8)]
        for a in addresses:
            hierarchy.access(a)
        # address 0 was evicted from the tiny L1 but still lives in L2
        assert hierarchy.access(0) == "L2"

    def test_run_trace_reports_dram_bytes(self):
        hierarchy = CacheHierarchy()
        result = hierarchy.run_trace([i * 4096 for i in range(100)])
        assert result["dram_accesses"] == 100
        assert result["dram_bytes"] == 100 * 64

    def test_stats_for_unknown_level(self):
        with pytest.raises(KeyError):
            CacheHierarchy().stats_for("L9")

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    @settings(max_examples=10, deadline=None)
    @given(stride=st.sampled_from([64, 128, 4096]), count=st.integers(10, 200))
    def test_property_sequential_trace_misses_bounded(self, stride, count):
        hierarchy = CacheHierarchy()
        result = hierarchy.run_trace([i * stride for i in range(count)])
        total_l1 = hierarchy.stats_for("L1")
        assert total_l1.misses <= count
        assert result["dram_accesses"] <= count


class TestTraces:
    def test_aggregation_trace_irregular_misses_more(self):
        # a skewed random graph produces worse locality than the weight-reusing
        # combination stream: misses per trace element are higher for aggregation
        g = power_law_graph(512, 4096, feature_length=64, seed=0)
        agg = aggregation_trace(g, 64, max_vertices=128)
        comb = combination_trace(512, 64, 32, max_vertices=128)
        agg_cache, comb_cache = CacheHierarchy(), CacheHierarchy()
        agg_result = agg_cache.run_trace(agg)
        comb_result = comb_cache.run_trace(comb)
        assert agg_result["dram_accesses"] / len(agg) > \
            comb_result["dram_accesses"] / len(comb)

    def test_aggregation_trace_length(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=1)
        trace = aggregation_trace(g, 16, max_vertices=None)
        # one line per neighbour row (16*4=64B = 1 line) plus one per vertex
        assert len(trace) == g.num_edges + g.num_vertices

    def test_aggregation_trace_respects_max_vertices(self):
        g = erdos_renyi_graph(64, 256, feature_length=16, seed=1)
        full = aggregation_trace(g, 16)
        partial = aggregation_trace(g, 16, max_vertices=8)
        assert len(partial) < len(full)

    def test_combination_trace_nonempty(self):
        trace = combination_trace(32, 128, 64, max_vertices=16)
        assert len(trace) > 0
        assert (np.asarray(trace) >= 0).all()
