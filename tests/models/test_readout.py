"""Tests for the Readout operators and the virtual readout vertex."""

import numpy as np
import pytest

from repro.graphs import erdos_renyi_graph
from repro.models import (
    AggregationPhase,
    add_readout_vertex,
    readout_concat,
    readout_max,
    readout_mean,
    readout_sum,
)


class TestReadoutOperators:
    def setup_method(self):
        self.features = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 0.0]])

    def test_sum(self):
        np.testing.assert_array_equal(readout_sum(self.features), [9.0, 6.0])

    def test_mean(self):
        np.testing.assert_array_equal(readout_mean(self.features), [3.0, 2.0])

    def test_max(self):
        np.testing.assert_array_equal(readout_max(self.features), [5.0, 4.0])

    def test_concat_across_layers(self):
        layer1 = np.ones((3, 2))
        layer2 = 2 * np.ones((3, 4))
        out = readout_concat([layer1, layer2])
        assert out.shape == (6,)
        np.testing.assert_array_equal(out[:2], [3.0, 3.0])
        np.testing.assert_array_equal(out[2:], [6.0] * 4)

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            readout_concat([])


class TestReadoutVertex:
    def test_virtual_vertex_connected_to_all(self):
        g = erdos_renyi_graph(16, 64, feature_length=4, seed=0)
        extended = add_readout_vertex(g)
        assert extended.num_vertices == g.num_vertices + 1
        readout_id = g.num_vertices
        assert sorted(extended.in_neighbors(readout_id)) == list(range(g.num_vertices))
        # the virtual vertex has no outgoing edges and a zero feature vector
        assert len(extended.neighbors(readout_id)) == 0
        np.testing.assert_array_equal(extended.features[readout_id],
                                      np.zeros(g.feature_length))

    def test_original_structure_preserved(self):
        g = erdos_renyi_graph(16, 64, feature_length=4, seed=1)
        extended = add_readout_vertex(g)
        for v in range(g.num_vertices):
            assert sorted(n for n in extended.neighbors(v) if n < g.num_vertices) \
                == sorted(g.neighbors(v))

    def test_aggregating_readout_vertex_matches_sum_readout(self):
        # the paper's mapping: Readout == aggregation of the virtual vertex
        g = erdos_renyi_graph(16, 64, feature_length=4, seed=2)
        extended = add_readout_vertex(g)
        phase = AggregationPhase(reducer="add", include_self=False)
        aggregated = phase.forward(extended, extended.features)
        np.testing.assert_allclose(aggregated[g.num_vertices], readout_sum(g.features))
