"""Unit tests for the phase-level building blocks (Aggregation, Combination, MLP)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, SamplingConfig, erdos_renyi_graph
from repro.models import AggregationPhase, CombinationPhase, MLP, relu, softmax
from repro.models.layers import LayerWorkload


def path_graph(n=4, feature_length=3):
    edges = [(i, i + 1) for i in range(n - 1)]
    features = np.arange(n * feature_length, dtype=float).reshape(n, feature_length)
    return Graph.from_edge_list(edges, n, features=features, name="path")


class TestActivations:
    def test_relu_clips_negative(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_softmax_rows_sum_to_one(self):
        out = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_softmax_stable_for_large_values(self):
        out = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.5, 0.5]])


class TestAggregationPhase:
    def test_add_reducer_includes_self(self):
        g = path_graph(3, feature_length=1)
        phase = AggregationPhase(reducer="add", include_self=True)
        out = phase.forward(g, g.features)
        # vertex 1 has neighbours 0 and 2 plus itself
        assert out[1, 0] == pytest.approx(g.features[[0, 1, 2], 0].sum())

    def test_add_reducer_excludes_self(self):
        g = path_graph(3, feature_length=1)
        phase = AggregationPhase(reducer="add", include_self=False)
        out = phase.forward(g, g.features)
        assert out[1, 0] == pytest.approx(g.features[[0, 2], 0].sum())

    def test_mean_max_min_reducers(self):
        g = path_graph(3, feature_length=1)
        feats = np.array([[1.0], [5.0], [9.0]])
        mean = AggregationPhase(reducer="mean").forward(g, feats)
        mx = AggregationPhase(reducer="max").forward(g, feats)
        mn = AggregationPhase(reducer="min").forward(g, feats)
        assert mean[1, 0] == pytest.approx(5.0)
        assert mx[1, 0] == pytest.approx(9.0)
        assert mn[1, 0] == pytest.approx(1.0)

    def test_gcn_norm_matches_dense_formula(self):
        g = path_graph(4, feature_length=2)
        phase = AggregationPhase(reducer="gcn_norm")
        out = phase.forward(g, g.features)
        # Dense reference: A_hat = A + I, D from A_hat, D^-1/2 A_hat D^-1/2 X
        a_hat = g.adjacency_dense() + np.eye(4)
        d = a_hat.sum(axis=1)
        norm = a_hat / np.sqrt(np.outer(d, d))
        np.testing.assert_allclose(out, norm @ g.features, rtol=1e-9)

    def test_gin_sum_epsilon(self):
        g = path_graph(3, feature_length=1)
        feats = np.array([[1.0], [2.0], [4.0]])
        phase = AggregationPhase(reducer="gin_sum", epsilon=0.5)
        out = phase.forward(g, feats)
        assert out[1, 0] == pytest.approx(1.5 * 2.0 + 1.0 + 4.0)

    def test_isolated_vertex_add(self):
        g = Graph.from_edge_list([(0, 1)], 3, feature_length=2)
        phase = AggregationPhase(reducer="add", include_self=False)
        out = phase.forward(g, g.features)
        np.testing.assert_array_equal(out[2], np.zeros(2))

    def test_isolated_vertex_max_is_self_or_zero(self):
        g = Graph.from_edge_list([(0, 1)], 3, feature_length=2)
        out = AggregationPhase(reducer="max", include_self=True).forward(g, g.features)
        np.testing.assert_array_equal(out[2], g.features[2])

    def test_sampling_reduces_operation_count(self):
        g = erdos_renyi_graph(64, 1024, feature_length=4, seed=0)
        full = AggregationPhase(reducer="add")
        sampled = AggregationPhase(reducer="add",
                                   sampling=SamplingConfig(max_neighbors=2, seed=0))
        assert sampled.operation_count(g, 4) < full.operation_count(g, 4)

    def test_operation_count_formula(self):
        g = path_graph(3, feature_length=1)
        phase = AggregationPhase(reducer="add", include_self=True)
        # edges contribute per-element ops, plus one self op per vertex
        flen = 5
        assert phase.operation_count(g, flen) == g.num_edges * flen + g.num_vertices * flen

    def test_unknown_reducer_rejected(self):
        with pytest.raises(ValueError):
            AggregationPhase(reducer="median")

    def test_feature_shape_validation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            AggregationPhase().forward(g, np.zeros((5, 3)))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10))
    def test_property_add_aggregation_is_linear(self, seed):
        g = erdos_renyi_graph(16, 48, feature_length=3, seed=seed)
        phase = AggregationPhase(reducer="add")
        x = np.random.default_rng(seed).standard_normal((16, 3))
        y = np.random.default_rng(seed + 1).standard_normal((16, 3))
        np.testing.assert_allclose(
            phase.forward(g, x + y),
            phase.forward(g, x) + phase.forward(g, y),
            atol=1e-9,
        )


class TestMLP:
    def test_shapes(self):
        mlp = MLP([8, 16, 4], seed=0)
        out = mlp.forward(np.zeros((5, 8)))
        assert out.shape == (5, 4)

    def test_relu_applied(self):
        mlp = MLP([2, 2], seed=0)
        mlp.weights[0] = -np.eye(2)
        mlp.biases[0] = np.zeros(2)
        out = mlp.forward(np.array([[1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0]])

    def test_no_activation_mode(self):
        mlp = MLP([2, 2], activation="none", seed=0)
        mlp.weights[0] = -np.eye(2)
        out = mlp.forward(np.array([[1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[-1.0, -2.0]])

    def test_mac_and_parameter_counts(self):
        mlp = MLP([10, 20, 5], seed=0)
        assert mlp.mac_count(num_vertices=3) == 3 * (10 * 20 + 20 * 5)
        assert mlp.parameter_count() == 10 * 20 + 20 + 20 * 5 + 5
        assert mlp.parameter_bytes() == mlp.parameter_count() * 4

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([8])

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            MLP([2, 2], activation="tanh")


class TestCombinationPhaseAndWorkload:
    def test_combination_forward_shape(self):
        comb = CombinationPhase(MLP([4, 8], seed=0))
        out = comb.forward(np.ones((3, 4)))
        assert out.shape == (3, 8)
        assert comb.input_size == 4 and comb.output_size == 8

    def test_workload_feature_lengths(self):
        g = path_graph(4, feature_length=6)
        wl = LayerWorkload(
            name="l0",
            graph=g,
            aggregation=AggregationPhase(reducer="add"),
            combination=CombinationPhase(MLP([6, 2], seed=0)),
            aggregate_first=True,
        )
        assert wl.in_feature_length == 6
        assert wl.out_feature_length == 2
        assert wl.aggregation_feature_length == 6

    def test_workload_combine_first_shortens_aggregation(self):
        g = path_graph(4, feature_length=6)
        wl = LayerWorkload(
            name="l0",
            graph=g,
            aggregation=AggregationPhase(reducer="add"),
            combination=CombinationPhase(MLP([6, 2], seed=0)),
            aggregate_first=False,
        )
        assert wl.aggregation_feature_length == 2
        assert wl.aggregation_ops() < g.num_edges * 6 + g.num_vertices * 6

    def test_workload_counts_positive(self):
        g = path_graph(4, feature_length=6)
        wl = LayerWorkload(
            name="l0", graph=g,
            aggregation=AggregationPhase(reducer="add"),
            combination=CombinationPhase(MLP([6, 2], seed=0)),
        )
        assert wl.combination_macs() == 4 * 6 * 2
        assert wl.aggregation_ops() > 0
