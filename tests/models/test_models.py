"""Tests for the GCN model zoo (GCN, GraphSage, GIN, DiffPool)."""

import numpy as np
import pytest

from repro.graphs import erdos_renyi_graph, load_dataset
from repro.models import (
    MODEL_NAMES,
    build_diffpool,
    build_gcn,
    build_gin,
    build_graphsage,
    build_model,
    model_table,
    workloads_for,
)
from repro.models.diffpool import DiffPoolModel


def make_graph(seed=0, feature_length=12):
    return erdos_renyi_graph(40, 160, feature_length=feature_length, seed=seed)


class TestGCN:
    def test_output_shape(self):
        g = make_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(8,))
        out = model.forward(g)
        assert out.shape == (g.num_vertices, 8)

    def test_outputs_nonnegative_after_relu(self):
        g = make_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(8,))
        assert (model.forward(g) >= 0).all()

    def test_multi_layer(self):
        g = make_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(16, 4))
        assert model.num_layers == 2
        assert model.forward(g).shape == (g.num_vertices, 4)

    def test_workloads_chain_feature_lengths(self):
        g = make_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(16, 4))
        wls = model.workloads(g)
        assert wls[0].in_feature_length == g.feature_length
        assert wls[1].in_feature_length == 16
        assert wls[1].out_feature_length == 4

    def test_combine_first_order(self):
        g = make_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(8,))
        assert model.layers[0].aggregate_first is False

    def test_readout_sum(self):
        g = make_graph()
        model = build_gcn(g.feature_length, hidden_sizes=(8,))
        hg = model.graph_representation(g)
        np.testing.assert_allclose(hg, model.forward(g).sum(axis=0))


class TestGraphSage:
    def test_sampling_caps_neighbors(self):
        g = make_graph()
        model = build_graphsage(g.feature_length, sample_neighbors=2)
        sampling = model.layers[0].aggregation.sampling
        assert sampling is not None and sampling.max_neighbors == 2

    def test_no_sampling_when_disabled(self):
        model = build_graphsage(8, sample_neighbors=None, sampling_factor=1)
        assert model.layers[0].aggregation.sampling is None

    def test_forward_shape(self):
        g = make_graph()
        model = build_graphsage(g.feature_length, hidden_sizes=(8,), sample_neighbors=5)
        assert model.forward(g).shape == (g.num_vertices, 8)

    def test_max_reducer_used(self):
        model = build_graphsage(8)
        assert model.layers[0].aggregation.reducer == "max"

    def test_sampling_factor_reduces_aggregation_ops(self):
        g = make_graph()
        dense = build_graphsage(g.feature_length, sample_neighbors=None, sampling_factor=1)
        sparse = build_graphsage(g.feature_length, sample_neighbors=None, sampling_factor=4)
        assert sparse.total_aggregation_ops(g) < dense.total_aggregation_ops(g)


class TestGIN:
    def test_two_layer_mlp(self):
        model = build_gin(12, hidden_sizes=((16, 8),))
        assert model.layers[0].combination.mlp.num_layers == 2
        assert model.layers[0].output_size == 8

    def test_aggregate_first(self):
        model = build_gin(12)
        assert model.layers[0].aggregate_first is True

    def test_forward_shape(self):
        g = make_graph()
        model = build_gin(g.feature_length, hidden_sizes=((8, 8),))
        assert model.forward(g).shape == (g.num_vertices, 8)

    def test_concat_readout_length(self):
        g = make_graph()
        model = build_gin(g.feature_length, hidden_sizes=((8, 8), (8, 4)))
        hg = model.graph_representation(g)
        assert hg.shape == (8 + 4,)

    def test_gin_aggregation_dominates_ops(self):
        # GIN aggregates at full input feature length, so its aggregation op
        # count must exceed a combine-first GCN's on the same graph.
        g = make_graph(feature_length=64)
        gin = build_gin(g.feature_length, hidden_sizes=((16, 16),))
        gcn = build_gcn(g.feature_length, hidden_sizes=(16,))
        assert gin.total_aggregation_ops(g) > gcn.total_aggregation_ops(g)


class TestDiffPool:
    def test_pooled_graph_smaller(self):
        g = make_graph()
        model = build_diffpool(g.feature_length, hidden_size=16, num_clusters=8)
        pooled, assignment, features = model.forward(g)
        assert pooled.num_vertices == 8
        assert assignment.shape == (g.num_vertices, 8)
        assert features.shape == (8, 16)

    def test_assignment_rows_are_distributions(self):
        g = make_graph()
        model = build_diffpool(g.feature_length, hidden_size=16, num_clusters=8)
        _, assignment, _ = model.forward(g)
        np.testing.assert_allclose(assignment.sum(axis=1), np.ones(g.num_vertices))
        assert (assignment >= 0).all()

    def test_extra_matmul_macs(self):
        g = make_graph()
        model = build_diffpool(g.feature_length, hidden_size=16, num_clusters=8)
        matmuls = model.extra_matmuls(g)
        assert len(matmuls) == 3
        n, c, z = g.num_vertices, 8, 16
        assert sum(m.macs for m in matmuls) == c * n * z + c * n * n + c * n * c

    def test_min_reducer_in_internal_gcns(self):
        model = build_diffpool(8)
        assert model.pool_gcn.layers[0].aggregation.reducer == "min"
        assert model.embed_gcn.layers[0].aggregation.reducer == "min"

    def test_workloads_include_both_gcns(self):
        g = make_graph()
        model = build_diffpool(g.feature_length, hidden_size=16, num_clusters=8)
        assert len(model.workloads(g)) == 2

    def test_cluster_cap(self):
        model = build_diffpool(8, hidden_size=16, num_clusters=999)
        assert model.num_clusters == 16


class TestModelZoo:
    def test_all_four_models_build(self):
        for name in MODEL_NAMES:
            model = build_model(name, input_length=32)
            assert model is not None

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model("TPU", input_length=8)

    def test_workloads_for_all_models(self):
        g = make_graph()
        for name in MODEL_NAMES:
            model = build_model(name, input_length=g.feature_length)
            wls = workloads_for(model, g)
            assert len(wls) >= 1
            assert all(w.combination_macs() > 0 for w in wls)

    def test_model_table_has_four_rows(self):
        assert len(model_table()) == 4

    def test_build_model_on_dataset(self):
        g = load_dataset("IB", seed=0)
        model = build_model("GCN", input_length=g.feature_length)
        wls = workloads_for(model, g)
        assert wls[0].in_feature_length == 136

    def test_gsc_sampling_factor_passthrough(self):
        model = build_model("GSC", input_length=16, sampling_factor=4)
        assert model.layers[0].aggregation.sampling.sampling_factor == 4
