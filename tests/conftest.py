"""Repo-wide pytest fixtures.

The serving stack keeps four process-wide memo caches: the hardware probe
cache (:func:`repro.serving.fleet.clear_probe_cache`), the per-graph
workload cache (:func:`repro.models.model_zoo.clear_workloads_cache`), the
shard-plan cache
(:func:`repro.serving.sharding.clear_shard_plan_cache`) and the streaming
update-stream memo
(:func:`repro.serving.streaming.clear_update_stream_cache`).
All are keyed carefully enough that leakage *should* be impossible, but a
stale entry surviving from one test module into the next turns any keying
bug into an action-at-a-distance failure in an unrelated file.  The
autouse fixture below draws the line at module boundaries: every test
module starts from cold caches, so cross-module state can never explain a
result.  ``tests/serving/test_serving_cache.py`` covers the intra-module
cache semantics themselves.
"""

import pytest

from repro.models.model_zoo import clear_workloads_cache
from repro.serving.fleet import clear_probe_cache
from repro.serving.sharding import clear_shard_plan_cache
from repro.serving.streaming import clear_update_stream_cache


@pytest.fixture(autouse=True, scope="module")
def _fresh_process_caches():
    """Clear the process-wide serving caches at every module boundary."""
    clear_probe_cache()
    clear_workloads_cache()
    clear_shard_plan_cache()
    clear_update_stream_cache()
    yield
    clear_probe_cache()
    clear_workloads_cache()
    clear_shard_plan_cache()
    clear_update_stream_cache()
