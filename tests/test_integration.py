"""Cross-module integration tests.

These exercise full paths through the stack: functional equivalence between
the programming model and the layer implementations, end-to-end simulation of
every Table 5 model on every (scaled) Table 4 dataset class, determinism of
the whole pipeline, and consistency invariants across the reports.
"""

import numpy as np
import pytest

from repro.baselines import PyGCPUModel, PyGGPUModel
from repro.core import (
    EdgeMVMProgram,
    HyGCNConfig,
    HyGCNSimulator,
    PipelineMode,
)
from repro.graphs import community_graph, load_dataset, power_law_graph
from repro.models import MODEL_NAMES, build_gcn, build_model, workloads_for


class TestFunctionalEquivalence:
    """The edge-/MVM-centric program computes the same result as the layers."""

    @pytest.mark.parametrize("model_name", ["GCN", "GIN"])
    def test_program_matches_model(self, model_name):
        g = community_graph(64, 512, feature_length=24, num_communities=4, seed=1)
        model = build_model(model_name, input_length=g.feature_length, hidden_size=16)
        workload = workloads_for(model, g)[0]
        program_out = EdgeMVMProgram(workload).run()
        layer_out = model.layers[0].forward(g, g.features)
        np.testing.assert_allclose(program_out, layer_out, rtol=1e-9)

    def test_trace_consistent_with_workload_counts(self):
        g = power_law_graph(64, 512, feature_length=16, seed=2)
        model = build_gcn(g.feature_length, hidden_sizes=(8,))
        workload = model.workloads(g)[0]
        trace = EdgeMVMProgram(workload).trace()
        assert trace.combination_macs == workload.combination_macs()
        assert trace.edges_processed == g.num_edges


class TestEndToEndGrid:
    """Every model runs end to end on representative datasets on all platforms."""

    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_model_on_imdb(self, model_name):
        g = load_dataset("IB", seed=0)
        model = build_model(model_name, input_length=g.feature_length)
        hygcn = HyGCNSimulator().run_model(model, g, "IB")
        cpu = PyGCPUModel().run(model, g, "IB")
        gpu = PyGGPUModel().run(model, g, "IB")
        # HyGCN wins on both time and energy for every model
        assert hygcn.execution_time_s < cpu.total_time_s
        assert hygcn.execution_time_s < gpu.total_time_s
        assert hygcn.total_energy_j < cpu.energy_j
        assert hygcn.total_energy_j < gpu.energy_j

    @pytest.mark.parametrize("dataset", ["IB", "CR", "PB"])
    def test_gcn_across_datasets(self, dataset):
        g = load_dataset(dataset, seed=0)
        model = build_model("GCN", input_length=g.feature_length)
        report = HyGCNSimulator().run_model(model, g, dataset)
        assert report.total_cycles > 0
        assert report.layers[0].num_edges == g.num_edges
        assert report.layers[0].buffer_overflows == 0


class TestDeterminism:
    def test_simulation_is_deterministic(self):
        g = load_dataset("CR", seed=0)
        model = build_model("GCN", input_length=g.feature_length)
        a = HyGCNSimulator().run_model(model, g, "CR")
        b = HyGCNSimulator().run_model(model, g, "CR")
        assert a.total_cycles == b.total_cycles
        assert a.total_dram_bytes == b.total_dram_bytes
        assert a.total_energy_j == pytest.approx(b.total_energy_j)

    def test_dataset_generation_deterministic_across_seeds(self):
        g1 = load_dataset("IB", seed=0)
        g2 = load_dataset("IB", seed=0)
        assert g1.num_edges == g2.num_edges

    def test_functional_inference_deterministic(self):
        g = load_dataset("IB", seed=0)
        model = build_model("GCN", input_length=g.feature_length, seed=5)
        np.testing.assert_array_equal(model.forward(g), model.forward(g))


class TestReportInvariants:
    def test_stream_bytes_sum_to_total(self):
        g = community_graph(256, 2048, feature_length=64, num_communities=8, seed=3)
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        report = HyGCNSimulator().run_model(model, g)
        assert sum(report.dram_bytes_by_stream().values()) == report.total_dram_bytes

    def test_layer_cycles_sum_to_model_cycles(self):
        g = community_graph(256, 2048, feature_length=64, num_communities=8, seed=3)
        model = build_gcn(g.feature_length, hidden_sizes=(32, 16))
        report = HyGCNSimulator().run_model(model, g)
        assert report.total_cycles == sum(l.total_cycles for l in report.layers)

    def test_energy_components_sum(self):
        g = community_graph(128, 1024, feature_length=32, num_communities=8, seed=4)
        model = build_gcn(g.feature_length, hidden_sizes=(16,))
        report = HyGCNSimulator().run_model(model, g)
        e = report.energy
        assert e.total_pj == pytest.approx(
            e.aggregation_engine_pj + e.combination_engine_pj
            + e.coordinator_buffers_pj + e.static_pj + e.dram_pj)

    def test_more_edges_more_cycles_and_traffic(self):
        sparse = power_law_graph(256, 1024, feature_length=64, seed=5)
        dense = power_law_graph(256, 8192, feature_length=64, seed=5)
        model = build_gcn(64, hidden_sizes=(32,))
        sim = HyGCNSimulator()
        sparse_report = sim.run_model(model, sparse)
        dense_report = sim.run_model(model, dense)
        assert dense_report.total_cycles > sparse_report.total_cycles
        assert dense_report.layers[0].simd_ops > sparse_report.layers[0].simd_ops

    def test_all_optimizations_off_is_worst(self):
        g = community_graph(384, 3072, feature_length=96, num_communities=12, seed=6)
        model = build_gcn(g.feature_length, hidden_sizes=(32,))
        best = HyGCNSimulator(HyGCNConfig()).run_model(model, g)
        worst = HyGCNSimulator(HyGCNConfig(
            enable_sparsity_elimination=False,
            enable_memory_coordination=False,
            pipeline_mode=PipelineMode.NONE,
        )).run_model(model, g)
        assert worst.total_cycles > best.total_cycles
        assert worst.total_dram_bytes >= best.total_dram_bytes
