"""Elastic serving: autoscaling, admission control and graceful degradation.

This script walks through the control plane in four steps:

1. build a burst-ramp request stream whose mean rate overloads one chip,
2. compare a fixed minimum fleet, a fixed maximum fleet, and the threshold
   autoscaler on identical traffic (SLO violations vs. chip-seconds),
3. print the autoscaler's fleet-size timeline as text,
4. show what admission control and the degradation ladder do at 2x overload.

Run it with ``python examples/elastic_serving.py``.
"""

import dataclasses

from repro.analysis import print_table
from repro.graphs.datasets import load_dataset
from repro.models.model_zoo import build_model
from repro.serving import (
    ControlConfig,
    FleetConfig,
    ServingSimulator,
    run_serving,
)

DATASET = "IB"
MODEL = "GCN"

#: Small cache-free fleet: offered load translates directly into queueing.
BASE = FleetConfig(num_chips=1, num_hops=1, fanout=4, max_batch_size=16,
                   cache_size=0, reuse_discount=0.0)


def one_chip_rate(multiple: float) -> float:
    """``multiple`` times the measured capacity of a single chip."""
    graph = load_dataset(DATASET, seed=0)
    model = build_model(MODEL, input_length=graph.feature_length)
    sim = ServingSimulator(graph, model, BASE, dataset_name=DATASET)
    return sim.calibrate_rate(multiple)


def serve_ramp(rate: float, num_chips: int = 1, control: ControlConfig = None,
               num_requests: int = 800):
    """One burst-ramp run; only the fleet shape / control plane vary."""
    config = dataclasses.replace(BASE, num_chips=num_chips)
    return run_serving(dataset=DATASET, model_name=MODEL,
                       num_requests=num_requests, rate_rps=rate,
                       arrival="ramp", peak_factor=6.0,
                       config=config, control=control, seed=0)


def main(num_requests: int = 800) -> None:
    # 1 + 2. Identical ramp traffic against three fleet strategies.
    rate = one_chip_rate(1.5)
    fixed_min = serve_ramp(rate, num_chips=1, num_requests=num_requests)
    fixed_max = serve_ramp(rate, num_chips=6, num_requests=num_requests)
    control = ControlConfig(autoscale="threshold", min_chips=1, max_chips=6)
    elastic = serve_ramp(rate, control=control, num_requests=num_requests)

    rows = []
    for label, report in (("fixed-1", fixed_min), ("fixed-6", fixed_max),
                          ("threshold autoscaler", elastic)):
        stats = report.control
        rows.append({
            "fleet": label,
            "slo_violation_pct": round(100 * report.slo_violation_rate, 1),
            "chip_seconds_us": round(report.chip_seconds_s * 1e6, 2),
            "peak_chips": stats.peak_chips if stats else report.num_chips,
        })
    print_table(rows, title="burst-ramp: SLO violations vs. chip-seconds "
                            "(identical traffic)")
    print(f"the autoscaler cut violations "
          f"{fixed_min.slo_violation_rate / max(elastic.slo_violation_rate, 1e-9):.1f}x "
          f"vs. fixed-1 while holding "
          f"{fixed_max.chip_seconds_s / elastic.control.chip_seconds_s:.1f}x "
          f"fewer chip-seconds than fixed-6\n")

    # 3. The scaling timeline, replayable from the report.
    print("threshold autoscaler fleet-size timeline "
          "(# active, ~ warming, - draining)")
    print(elastic.control.timeline_text())
    print()

    # 4. Admission control and degradation at 2x overload on a fixed fleet.
    config2 = dataclasses.replace(BASE, num_chips=2)
    graph = load_dataset(DATASET, seed=0)
    model = build_model(MODEL, input_length=graph.feature_length)
    rate2 = ServingSimulator(graph, model, config2,
                             dataset_name=DATASET).calibrate_rate(2.0)
    # the auto-sized bucket polices sustained overload coarsely; a generous
    # explicit contract leaves the SLO-budget gate -- the degradable one --
    # as the binding constraint
    gates = {
        "open-door": None,
        "auto bucket": ControlConfig(admission=True),
        "generous + degrade": ControlConfig(
            admission=True, admission_rate_rps=4 * rate2, degrade=True),
        "degrade-only": ControlConfig(degrade=True),
    }
    rows = []
    for label, gate in gates.items():
        report = run_serving(dataset=DATASET, model_name=MODEL,
                             num_requests=num_requests, rate_rps=rate2,
                             arrival="poisson", config=config2,
                             control=gate, seed=0)
        acct = report.control.admission[""] if report.control else None
        rows.append({
            "gate": label,
            "completed": report.completed,
            "shed": acct.shed if acct else 0,
            "degraded": acct.degraded_total if acct else 0,
            "p99_over_slo": round(report.p99_latency_s / report.slo_s, 2),
        })
    print_table(rows, title="2x overload: what each gate does to the tail")
    print("admitted requests stay inside the SLO; degraded answers are "
          "tagged, never cached")


if __name__ == "__main__":
    main()
