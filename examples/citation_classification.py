"""Scenario: node classification on citation networks, end to end.

Citation networks (Cora, Citeseer, Pubmed) are the canonical GCN node
classification benchmarks: very long bag-of-words feature vectors, sparse
community-structured connectivity.  This example runs the full evaluation
path the paper uses for them:

1. characterise the workload on the CPU baseline (why it needs acceleration),
2. run the paper's GCN and GINConv models functionally and produce class
   predictions from the output embeddings,
3. simulate all four Table 5 models on HyGCN and compare the per-layer
   behaviour -- showing how the aggregate-first GIN stresses the Aggregation
   Engine while combine-first GCN stresses the Combination Engine.

Run it with ``python examples/citation_classification.py``.
"""

import numpy as np

from repro.analysis import print_table
from repro.baselines import PyGCPUModel, characterize_phases
from repro.core import HyGCNSimulator
from repro.graphs import load_dataset
from repro.models import MODEL_NAMES, build_model, softmax


def predict_classes(embeddings: np.ndarray, num_classes: int = 7, seed: int = 0) -> np.ndarray:
    """A linear read-out head turning embeddings into class predictions."""
    rng = np.random.default_rng(seed)
    head = rng.standard_normal((embeddings.shape[1], num_classes)) * 0.1
    return softmax(embeddings @ head, axis=1).argmax(axis=1)


def main() -> None:
    graph = load_dataset("CS", seed=0)     # Citeseer stand-in
    print(f"dataset: {graph.name} -- {graph.num_vertices} papers, "
          f"{graph.num_edges} citations, {graph.feature_length}-word vocabulary")

    # 1. Why accelerate?  The CPU-side characterisation of the two phases.
    chars = characterize_phases(graph=graph, model_name="GCN", max_trace_vertices=128)
    print_table([chars["aggregation"].as_row(), chars["combination"].as_row()],
                title="CPU characterisation of the two phases (Citeseer, GCN)")
    cpu_report = PyGCPUModel().run(build_model("GCN", input_length=graph.feature_length),
                                   graph, dataset_name="CS")
    print(f"PyG-CPU estimate: {cpu_report.total_time_s * 1e3:.1f} ms "
          f"({100 * cpu_report.aggregation_fraction:.0f}% aggregation)")

    # 2. Functional inference and class predictions.
    gcn = build_model("GCN", input_length=graph.feature_length)
    embeddings = gcn.forward(graph)
    predictions = predict_classes(embeddings)
    unique, counts = np.unique(predictions, return_counts=True)
    print(f"\npredicted class histogram: "
          f"{dict(zip(unique.tolist(), counts.tolist()))}")

    # 3. All four Table 5 models on the accelerator.
    simulator = HyGCNSimulator()
    rows = []
    for name in MODEL_NAMES:
        model = build_model(name, input_length=graph.feature_length)
        report = simulator.run_model(model, graph, dataset_name="CS")
        rows.append({
            "model": name,
            "layers": len(report.layers),
            "time_us": report.execution_time_s * 1e6,
            "aggregation_cycles": report.aggregation_cycles,
            "combination_cycles": report.combination_cycles,
            "dram_mb": report.total_dram_bytes / (1 << 20),
            "energy_mj": report.total_energy_j * 1e3,
            "speedup_vs_cpu": PyGCPUModel().run(model, graph).total_time_s
            / report.execution_time_s,
        })
    print_table(rows, title="All Table 5 models on HyGCN (Citeseer stand-in)")

    print("\nTake-away: on long-feature citation graphs the Combination Engine "
          "dominates GCN/GraphSage cycles, while GIN's aggregate-first order "
          "shifts work (and DRAM traffic) to the Aggregation Engine -- the "
          "hybrid architecture keeps both cases on chip.")


if __name__ == "__main__":
    main()
