"""Scenario: design-space exploration of the accelerator configuration.

An architect adopting HyGCN for a different deployment point (edge vs.
datacentre) needs to re-balance the design: how many SIMD cores, how many
systolic modules, how much Aggregation Buffer?  This example uses the
:mod:`repro.analysis.dse` API to sweep those structural parameters with the
simulator and the area/power model together, and prints the Pareto-optimal
design points for a representative workload mix.

Run it with ``python examples/design_space_exploration.py``.
"""

from repro.analysis import WorkloadMix, explore, pareto_front, print_table
from repro.core import HyGCNConfig

#: a small representative workload mix: one citation graph, one dense
#: multi-graph dataset, two models
MIX = WorkloadMix(name="paper-mix", entries=(("GCN", "CR"), ("GIN", "CL")))

#: candidate design points: (simd cores, systolic modules, aggregation buffer MB)
DESIGN_POINTS = (
    (8, 2, 4),      # edge-class
    (16, 4, 8),     # mid-range
    (32, 8, 16),    # the paper's configuration (Table 6)
    (64, 16, 32),   # scaled-up datacentre part
)


def candidate_configs():
    """Build the HyGCNConfig for every candidate design point."""
    return [
        HyGCNConfig(
            num_simd_cores=simd,
            num_systolic_modules=modules,
            aggregation_buffer_bytes=buffer_mb << 20,
        )
        for simd, modules, buffer_mb in DESIGN_POINTS
    ]


def main() -> None:
    points = explore(candidate_configs(), MIX)
    print_table([p.as_row() for p in points],
                title="Design-space exploration over the workload mix "
                      "(GCN on Cora + GIN on COLLAB stand-ins)")

    front = pareto_front(points)
    print_table([p.as_row() for p in front],
                title="Pareto-optimal design points (time vs. power vs. area)")

    best_perf = min(points, key=lambda p: p.time_ms)
    best_eff = max(points, key=lambda p: p.perf_per_watt)
    print(f"\nfastest design point: {best_perf.config.num_simd_cores} SIMD cores / "
          f"{best_perf.config.num_systolic_modules} modules / "
          f"{best_perf.config.aggregation_buffer_bytes >> 20} MB "
          f"({best_perf.time_ms:.2f} ms, {best_perf.power_w:.1f} W)")
    print(f"most efficient design point: {best_eff.config.num_simd_cores} SIMD cores / "
          f"{best_eff.config.num_systolic_modules} modules / "
          f"{best_eff.config.aggregation_buffer_bytes >> 20} MB "
          f"({best_eff.perf_per_watt:.4f} 1/(ms*W))")
    print("\nTake-away: the paper's 32-core / 8-module / 16 MB configuration sits "
          "near the knee of the curve -- scaling further up buys little "
          "performance for this workload mix while area and power keep growing.")


if __name__ == "__main__":
    main()
