"""Traced serving: record spans + metrics for a run, then report on them.

This script walks through the observability layer in four steps:

1. serve a seeded request stream with an :class:`Instrumentation` hub
   attached, so every request's admit -> batch -> queue -> service journey
   becomes a span on the simulated clock;
2. write the spans as Chrome trace-event JSON (open it in
   https://ui.perfetto.dev) and the metrics scrapes as JSONL plus a
   Prometheus text snapshot;
3. print the ``repro trace-report`` critical-path summary straight from the
   in-memory events -- per-phase p50/p99 and the slowest requests' span
   trees;
4. prove the instrumentation is an observer, not a participant: an
   untraced run of the same seed reports bit-for-bit identical numbers.

Run it with ``python examples/traced_serving.py``.
"""

import os
import tempfile

from repro.serving import (
    FleetConfig,
    Instrumentation,
    format_trace_report,
    run_serving,
    trace_report,
    validate_trace,
)

DATASET = "IB"
MODEL = "GCN"


def serve_once(num_requests: int, observe: "Instrumentation | None" = None):
    """One serving run; only the instrumentation hub varies."""
    config = FleetConfig(num_chips=4, batch_policy="continuous",
                         cache_size=1024)
    return run_serving(dataset=DATASET, model_name=MODEL,
                       num_requests=num_requests, config=config, seed=0,
                       observe=observe)


def main(num_requests: int = 400, out_dir: "str | None" = None) -> None:
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="repro_trace_")

    # 1. Traced run: spans for every request, scrapes on the simulated clock.
    observe = Instrumentation()
    report = serve_once(num_requests, observe=observe)
    print(f"served {report.completed} requests on {report.num_chips} chips: "
          f"p50 {report.p50_latency_s * 1e6:.1f} us, "
          f"p99 {report.p99_latency_s * 1e6:.1f} us "
          f"({len(observe.events)} trace events recorded)")

    # 2. Export: Chrome trace JSON + metrics JSONL + Prometheus text.
    trace_path = os.path.join(out_dir, "serve_trace.json")
    metrics_path = os.path.join(out_dir, "serve_metrics.jsonl")
    observe.write_trace(trace_path)
    prom_path = observe.write_metrics(metrics_path)
    print(f"trace:   {trace_path} (open in https://ui.perfetto.dev)")
    print(f"metrics: {metrics_path} and {prom_path}")

    # 3. The trace-report view, straight from the in-memory events.
    problems = validate_trace(observe.events)
    assert not problems, problems
    print()
    print(format_trace_report(trace_report(observe.events, top_k=3)))

    # 4. Observation never perturbs the simulation: same seed, same report.
    untraced = serve_once(num_requests)
    identical = untraced.to_dict() == report.to_dict()
    print(f"traced run identical to untraced run: {identical}")
    assert identical


if __name__ == "__main__":
    main()
