"""Online serving: replay request traffic against a fleet of HyGCN chips.

This script walks through the serving subsystem in four steps:

1. build a skewed Poisson request stream over a benchmark dataset,
2. serve it on a 4-chip fleet with timeout batching and round-robin dispatch,
3. compare the three dispatch policies on identical traffic,
4. show what the result cache buys by disabling it.

Run it with ``python examples/online_serving.py``.
"""

from repro.analysis import print_table
from repro.serving import DISPATCH_POLICIES, FleetConfig, run_serving

DATASET = "IB"
MODEL = "GCN"


def serve_once(dispatch: str, cache_size: int = 4096,
               num_requests: int = 600) -> "object":
    """One serving run; only the dispatch policy / cache size vary."""
    config = FleetConfig(num_chips=4, dispatch=dispatch, batch_policy="timeout",
                         cache_size=cache_size)
    return run_serving(dataset=DATASET, model_name=MODEL,
                       num_requests=num_requests, config=config, seed=0)


def main(num_requests: int = 600) -> None:
    # 1 + 2. Baseline run: skewed Poisson traffic, timeout batching.
    report = serve_once("round-robin", num_requests=num_requests)
    print(f"served {report.completed} requests on {report.num_chips} chips: "
          f"p50 {report.p50_latency_s * 1e6:.1f} us, "
          f"p99 {report.p99_latency_s * 1e6:.1f} us, "
          f"{report.throughput_rps:,.0f} req/s of simulated throughput, "
          f"{100 * report.cache.hit_rate:.1f}% cache hit rate")
    print_table(report.per_chip_table(), title="per-chip utilization (round-robin)")

    # 3. Dispatch policies trade load balance against feature-cache locality.
    rows = []
    for dispatch in DISPATCH_POLICIES:
        r = serve_once(dispatch, num_requests=num_requests)
        utils = [c.utilization(r.makespan_s) for c in r.chips]
        reuse = [c.feature_reuse_rate for c in r.chips if c.feature_lookups]
        rows.append({
            "dispatch": dispatch,
            "p50_us": round(r.p50_latency_s * 1e6, 2),
            "p99_us": round(r.p99_latency_s * 1e6, 2),
            "throughput_rps": round(r.throughput_rps, 0),
            "utilization_spread_pct": round(100 * (max(utils) - min(utils)), 2),
            "avg_feature_reuse_pct": round(
                100 * sum(reuse) / len(reuse), 2) if reuse else 0.0,
        })
    print_table(rows, title="dispatch-policy comparison (identical traffic)")

    # 4. The result cache short-circuits repeat requests for hot vertices.
    cached = serve_once("round-robin", cache_size=4096, num_requests=num_requests)
    uncached = serve_once("round-robin", cache_size=0, num_requests=num_requests)
    print_table([
        {"cache": "4096 entries", "hit_rate_pct": round(100 * cached.cache.hit_rate, 1),
         "p50_us": round(cached.p50_latency_s * 1e6, 2),
         "p99_us": round(cached.p99_latency_s * 1e6, 2)},
        {"cache": "disabled", "hit_rate_pct": 0.0,
         "p50_us": round(uncached.p50_latency_s * 1e6, 2),
         "p99_us": round(uncached.p99_latency_s * 1e6, 2)},
    ], title="result-cache effect")


if __name__ == "__main__":
    main()
