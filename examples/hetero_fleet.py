"""Heterogeneous fleets: mixed chip shapes with shape-aware dispatch.

This script walks through `repro.serving.hetero` in four steps:

1. print the chip-shape presets and what each one provisions,
2. build a mixed two-tenant workload (a high-fanout sampling tenant whose
   batches are MAC-dense, and a feature-heavy tenant whose batches are
   streaming-bound),
3. serve it on a homogeneous fleet, on a 50/50 agg/comb fleet with
   shape-oblivious dispatch, and on the same mixed fleet with
   ``shape-aware`` dispatch, on identical traffic,
4. print per-shape utilization and the mis-dispatch accounting of the
   winning run.

Run it with ``python examples/hetero_fleet.py``.  The JSON spec next to
this script (``fleet.json``) describes the same mixed fleet for the CLI:
``python -m repro serve --fleet-spec examples/fleet.json --dispatch
shape-aware``.
"""

from repro.analysis import print_table
from repro.serving import (
    FleetConfig,
    TenantConfig,
    clear_probe_cache,
    fleet_spec_for_mix,
    run_multi_tenant,
    shape_table,
)


def tenants(num_requests: int = 160):
    """A mixed workload: one MAC-dense tenant, one streaming-bound tenant."""
    return [
        TenantConfig(name="sampler", dataset="CR", num_hops=2, fanout=16,
                     num_requests=num_requests, max_batch_size=8,
                     cache_size=0, popularity_skew=1.2),
        TenantConfig(name="features", dataset="CS", num_hops=1, fanout=2,
                     num_requests=num_requests, max_batch_size=8,
                     cache_size=0, popularity_skew=1.2),
    ]


def serve(mix: str, dispatch: str, num_requests: int):
    """One shared-fleet run; only the fleet composition / dispatch vary."""
    clear_probe_cache()
    fleet = FleetConfig(fleet_spec=fleet_spec_for_mix(mix, 4),
                        dispatch=dispatch, seed=0)
    return run_multi_tenant(tenants(num_requests), fleet,
                            utilization_target=1.2,
                            include_isolation_baseline=False)


def main(num_requests: int = 160) -> None:
    # ---- 1. the shapes on offer -------------------------------------- #
    print_table(shape_table(), title="chip-shape presets (docs/heterogeneity.md)")

    # ---- 2 + 3. three fleets, identical traffic ----------------------- #
    runs = {
        "balanced x4": serve("balanced", "least-loaded", num_requests),
        "mixed, least-loaded": serve("mixed", "least-loaded", num_requests),
        "mixed, shape-aware": serve("mixed", "shape-aware", num_requests),
    }
    print_table(
        [{
            "fleet": label,
            "sampler_p99_us": round(
                rep.reports["sampler"].p99_latency_s * 1e6, 2),
            "features_p99_us": round(
                rep.reports["features"].p99_latency_s * 1e6, 2),
            "busy_chip_seconds_us": round(rep.total_busy_s * 1e6, 2),
            "misdispatch_us": round(rep.hetero.misdispatch_s * 1e6, 2)
            if rep.hetero else 0.0,
        } for label, rep in runs.items()],
        title="same traffic, three fleets: routing by shape wins both "
              "tails and the chip-seconds bill")

    # ---- 4. where the winning run spent its chip time ----------------- #
    aware = runs["mixed, shape-aware"]
    print_table(aware.shape_table(), title="shape-aware run: per-shape utilization")
    print_table([aware.hetero.summary()],
                title="shape-aware run: dispatch accounting")
    print("learned seconds-per-fused-vertex (tenant/shape|bucket):")
    for key, rate in sorted(aware.hetero.rates.items()):
        print(f"  {key:40s} {rate * 1e9:8.2f} ns/vertex")


if __name__ == "__main__":
    main()
