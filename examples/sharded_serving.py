"""Sharded serving: one request executed across a multi-chip group.

This script walks the sharding subsystem end to end:

1. partition a dataset with both registered partitioners and compare
   their plans (edge-cut, halo sizes, balance) before any traffic runs;
2. drive the real CLI (``python -m repro serve --shards ...``) the way a
   user would, serving identical zipf traffic on a 4-shard chip group
   under ``hash`` and then ``locality`` -- the acceptance experiment of
   ``docs/sharding.md``;
3. show the degenerate case: ``--shards 1`` reports bit-for-bit the same
   numbers as an unsharded single-chip run.

Run it with ``python examples/sharded_serving.py``.
"""

import json
import os
import tempfile

from repro.__main__ import main as repro_main
from repro.graphs import load_dataset
from repro.serving import (
    PARTITIONERS,
    ShardingConfig,
    clear_probe_cache,
    clear_shard_plan_cache,
    shard_plan_for,
)

DATASET = "IB"
NUM_SHARDS = 4


def compare_plans() -> None:
    """Step 1: the static view -- what each partitioner does to the graph."""
    graph = load_dataset(DATASET, seed=0)
    print(f"{DATASET}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, {NUM_SHARDS} shards")
    for name in sorted(PARTITIONERS):
        plan = shard_plan_for(graph, ShardingConfig(
            num_shards=NUM_SHARDS, partitioner=name))
        print(f"  {name:9s} edge-cut {plan.edge_cut:6d} "
              f"({100 * plan.edge_cut_fraction:5.1f}%), "
              f"{plan.halo_vertices} halo vertices, "
              f"size imbalance {plan.size_imbalance:.3f}")


def serve_via_cli(partitioner: str, out_dir: str, shards: int = NUM_SHARDS,
                  chips_flag: bool = False) -> dict:
    """Steps 2/3: the CLI surface, exactly as a user would invoke it."""
    clear_probe_cache()
    clear_shard_plan_cache()
    tag = "unsharded" if chips_flag else f"{partitioner}_{shards}"
    json_path = os.path.join(out_dir, f"report_{tag}.json")
    argv = ["serve", "--dataset", DATASET, "--requests", "200",
            "--skew", "1.2", "--seed", "0", "--json", json_path]
    if chips_flag:
        argv += ["--chips", "1"]
    else:
        argv += ["--shards", str(shards), "--partitioner", partitioner]
    code = repro_main(argv)
    assert code == 0, f"repro serve exited {code}"
    with open(json_path) as handle:
        return json.load(handle)


def main(out_dir: "str | None" = None) -> None:
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="repro_sharded_")

    compare_plans()
    print()

    reports = {name: serve_via_cli(name, out_dir)
               for name in ("hash", "locality")}
    print()
    print("4-shard group under identical zipf-1.2 traffic:")
    for name, payload in reports.items():
        sharding = payload["sharding"]
        print(f"  {name:9s} p99 {payload['latency_s']['p99'] * 1e6:8.1f} us, "
              f"edge-cut {100 * sharding['edge_cut_fraction']:5.1f}%, "
              f"halo moved {sharding['halo_bytes_moved'] / 1024:8.1f} KiB, "
              f"halo hit rate {100 * sharding['halo_hit_rate']:5.1f}%")
    assert reports["locality"]["sharding"]["edge_cut"] \
        < reports["hash"]["sharding"]["edge_cut"]
    assert reports["locality"]["latency_s"]["p99"] \
        < reports["hash"]["latency_s"]["p99"]
    print("locality beats hash on both edge-cut and p99")

    sharded = serve_via_cli("locality", out_dir, shards=1)
    unsharded = serve_via_cli("locality", out_dir, chips_flag=True)
    assert sharded.pop("sharding") is not None
    assert unsharded.pop("sharding") is None
    identical = sharded == unsharded
    print(f"--shards 1 identical to the unsharded report: {identical}")
    assert identical


if __name__ == "__main__":
    main()
