"""Quickstart: run a GCN workload on the HyGCN accelerator simulator.

This script walks through the core public API in five steps:

1. materialise a benchmark dataset (a synthetic stand-in for Cora),
2. build one of the paper's GCN models (Table 5),
3. run functional inference to get the output embeddings,
4. simulate the same workload on HyGCN and inspect the report,
5. compare against the PyG-CPU and PyG-GPU baseline models.

Run it with ``python examples/quickstart.py``.
"""

from repro.analysis import print_table
from repro.baselines import PyGCPUModel, PyGGPUModel
from repro.core import HyGCNConfig, HyGCNSimulator
from repro.graphs import load_dataset
from repro.models import build_model


def main() -> None:
    # 1. Dataset: a synthetic stand-in matching Cora's published statistics.
    graph = load_dataset("CR", seed=0)
    print(f"dataset: {graph.name} -- {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, {graph.feature_length}-long features")

    # 2. Model: the single-layer GCN instance of Table 5.
    model = build_model("GCN", input_length=graph.feature_length)

    # 3. Functional inference: the numpy reference produces the embeddings.
    embeddings = model.forward(graph)
    print(f"output embeddings: shape {embeddings.shape}, "
          f"mean activation {embeddings.mean():.4f}")

    # 4. Simulate the same workload on the HyGCN accelerator.
    simulator = HyGCNSimulator(HyGCNConfig())
    report = simulator.run_model(model, graph, dataset_name="CR")
    print(f"\nHyGCN: {report.total_cycles:,} cycles "
          f"({report.execution_time_s * 1e6:.1f} us at 1 GHz), "
          f"{report.total_energy_j * 1e3:.3f} mJ, "
          f"{report.total_dram_bytes / (1 << 20):.1f} MB of DRAM traffic, "
          f"{100 * report.bandwidth_utilization:.1f}% bandwidth utilisation")
    print(f"sparsity elimination removed "
          f"{100 * report.avg_sparsity_reduction:.1f}% of source-feature row loads")

    # 5. Compare with the general-purpose baselines.
    cpu = PyGCPUModel().run(model, graph, dataset_name="CR")
    gpu = PyGGPUModel().run(model, graph, dataset_name="CR")
    rows = [
        {"platform": "PyG-CPU", "time_ms": cpu.total_time_s * 1e3,
         "energy_j": cpu.energy_j, "dram_mb": cpu.dram_bytes / (1 << 20)},
        {"platform": "PyG-GPU", "time_ms": gpu.total_time_s * 1e3,
         "energy_j": gpu.energy_j, "dram_mb": gpu.dram_bytes / (1 << 20)},
        {"platform": "HyGCN", "time_ms": report.execution_time_s * 1e3,
         "energy_j": report.total_energy_j,
         "dram_mb": report.total_dram_bytes / (1 << 20)},
    ]
    print_table(rows, title="Platform comparison (GCN on Cora stand-in)")
    print(f"\nHyGCN speedup over PyG-CPU: {cpu.total_time_s / report.execution_time_s:.0f}x")
    print(f"HyGCN speedup over PyG-GPU: {gpu.total_time_s / report.execution_time_s:.1f}x")


if __name__ == "__main__":
    main()
