"""Multi-tenant serving: two tenants share one fleet behind WFQ.

This script walks through the tenancy layer in three steps:

1. load the two-tenant spec from ``examples/tenants.json`` (a recommender
   tenant with twice the weight of a citation-ranking tenant) and serve the
   merged traffic on one shared fleet with deficit-round-robin WFQ,
2. check the fairness ledger: measured contended service shares vs. the
   configured weights, and what each tenant's SLO accounting looks like,
3. quantify isolation: each tenant's p99 on the shared fleet vs. the same
   traffic running alone (cross-tenant p99 inflation).

Run it with ``python examples/multi_tenant_serving.py``.
"""

from dataclasses import replace
from pathlib import Path

from repro.analysis import print_table
from repro.serving import FleetConfig, load_tenant_specs, run_multi_tenant

SPEC = Path(__file__).resolve().parent / "tenants.json"


def main(num_requests: int = None) -> None:
    tenants = load_tenant_specs(str(SPEC))
    if num_requests is not None:  # let the test suite run a scaled-down pass
        tenants = [replace(t, num_requests=num_requests) for t in tenants]

    # 1. Shared fleet: merged traffic, per-tenant batchers, WFQ dispatch.
    fleet = FleetConfig(num_chips=4)
    report = run_multi_tenant(tenants, fleet, utilization_target=0.9)
    print(f"served {report.completed} requests for {len(report.tenants)} "
          f"tenants on {report.num_chips} chips "
          f"({report.throughput_rps:,.0f} req/s of simulated throughput)")
    print_table(report.summary_table(), title="per-tenant latency and SLO")

    # 2. Fairness: under contention, chip-seconds follow the WFQ weights.
    print_table(report.fairness_table(),
                title="WFQ fairness (contended service shares vs. weights)")

    # 3. Isolation: the tail-latency price of sharing the fleet.
    print_table(report.isolation_table(),
                title="cross-tenant isolation (shared vs. running alone)")


if __name__ == "__main__":
    main()
