"""Scenario: GraphSage inference for a recommendation service.

The paper motivates GCN accelerators with data-centre workloads such as
recommendation (Pinterest/Alibaba-style).  Those graphs are large, heavily
skewed (a few hub items connect to very many users) and served under a
latency budget, which is exactly the regime where neighbour sampling and the
latency-aware inter-engine pipeline matter.

This example builds a synthetic user-item interaction graph, runs GraphSage
with the paper's 25-neighbour sampling, and explores how the sampling factor
and the pipeline mode trade throughput, per-vertex latency and energy --
the knobs a deployment would actually tune.

Run it with ``python examples/recommendation_inference.py``.
"""

from repro.analysis import print_table
from repro.core import HyGCNConfig, HyGCNSimulator, PipelineMode
from repro.graphs import power_law_graph
from repro.models import build_graphsage


def build_interaction_graph(num_entities: int = 4096, interactions: int = 65536,
                            embedding_length: int = 256, seed: int = 7):
    """A skewed user-item interaction graph with learned input embeddings."""
    return power_law_graph(
        num_entities, interactions, feature_length=embedding_length,
        skew=1.4, seed=seed, name="recsys-interactions",
    )


def main() -> None:
    graph = build_interaction_graph()
    print(f"interaction graph: {graph.num_vertices} entities, "
          f"{graph.num_edges} interactions, max degree {graph.degrees().max()}")

    # --- sampling-factor exploration (throughput / accuracy trade-off) -------
    rows = []
    for factor in (1, 2, 4, 8):
        model = build_graphsage(graph.feature_length, hidden_sizes=(128,),
                                sample_neighbors=25, sampling_factor=factor)
        report = HyGCNSimulator().run_model(model, graph, dataset_name="recsys")
        rows.append({
            "sampling_factor": factor,
            "time_us": report.execution_time_s * 1e6,
            "dram_mb": report.total_dram_bytes / (1 << 20),
            "energy_mj": report.total_energy_j * 1e3,
            "sparsity_reduction_pct": 100 * report.avg_sparsity_reduction,
        })
    print_table(rows, title="Sampling factor vs. cost (GraphSage, 25-neighbour cap)")

    # --- pipeline mode exploration (latency vs. energy) -----------------------
    model = build_graphsage(graph.feature_length, hidden_sizes=(128,),
                            sample_neighbors=25)
    rows = []
    for mode in (PipelineMode.LATENCY, PipelineMode.ENERGY, PipelineMode.NONE):
        config = HyGCNConfig(pipeline_mode=mode)
        report = HyGCNSimulator(config).run_model(model, graph, dataset_name="recsys")
        rows.append({
            "pipeline_mode": mode,
            "time_us": report.execution_time_s * 1e6,
            "avg_vertex_latency_cycles": report.avg_vertex_latency_cycles,
            "combination_energy_uj": report.energy.combination_engine_pj * 1e-6,
            "total_energy_mj": report.total_energy_j * 1e3,
        })
    print_table(rows, title="Pipeline mode: latency-aware vs energy-aware vs none")

    print("\nTake-away: aggressive sampling shrinks DRAM traffic roughly in "
          "proportion to the removed edges, and the latency-aware pipeline "
          "should be selected when per-request latency matters while the "
          "energy-aware pipeline saves Combination Engine energy for batch "
          "(throughput-oriented) serving.")


if __name__ == "__main__":
    main()
