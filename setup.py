"""Packaging for the HyGCN reproduction (``src/`` layout).

Declares the layout explicitly so ``pip install -e .`` (and plain
``pip install .``) works in offline environments without manually exporting
``PYTHONPATH=src``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-hygcn",
    version="1.0.0",
    description="HyGCN reproduction: a hybrid-architecture GCN accelerator "
                "simulator with an online-serving subsystem",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.8",
    install_requires=["numpy"],
)
