"""Control-plane benchmark: elasticity vs. fixed fleets on a burst-ramp.

Three tables, all on identical seeded traffic (the rate is calibrated once
against a single chip and shared):

1. fixed fleets at ``min`` and ``max`` size vs. the three autoscaling
   policies -- SLO-violation rate against provisioned chip-seconds (the
   cost/benefit trade the control plane exists to win);
2. admission control and degradation at 2x overload -- shed / degraded /
   p99-of-admitted;
3. the threshold autoscaler's fleet-size timeline, printed as text.

The stream length is already smoke-sized (the whole file runs in ~2 s) and
cannot shrink further: the SLO-violation assertions need the backlog to grow
past ten batch-services deep, which takes a few hundred requests.  CI runs
this file on every PR (the ``bench-smoke`` job) to catch benchmark bit-rot.
"""

import dataclasses

from repro.analysis import print_table
from repro.graphs.datasets import load_dataset
from repro.models.model_zoo import build_model
from repro.serving import (
    AUTOSCALE_POLICIES,
    ControlConfig,
    FleetConfig,
    ServingSimulator,
    run_serving,
)

DATASET = "IB"
MODEL = "GCN"
NUM_REQUESTS = 800
MIN_CHIPS, MAX_CHIPS = 1, 6

#: Cache-free so offered load translates directly into queueing pressure.
BASE = FleetConfig(num_chips=MIN_CHIPS, num_hops=1, fanout=4,
                   max_batch_size=16, cache_size=0, reuse_discount=0.0)


def _one_chip_rate(multiple: float) -> float:
    graph = load_dataset(DATASET, seed=0)
    model = build_model(MODEL, input_length=graph.feature_length)
    sim = ServingSimulator(graph, model, BASE, dataset_name=DATASET)
    return sim.calibrate_rate(multiple)


def _ramp(rate, num_chips=MIN_CHIPS, control=None):
    return run_serving(dataset=DATASET, model_name=MODEL,
                       num_requests=NUM_REQUESTS, rate_rps=rate,
                       arrival="ramp", peak_factor=6.0,
                       config=dataclasses.replace(BASE, num_chips=num_chips),
                       control=control, seed=0)


def _row(label, report):
    control = report.control
    return {
        "fleet": label,
        "completed": report.completed,
        "p99_us": round(report.p99_latency_s * 1e6, 2),
        "slo_violation_pct": round(100 * report.slo_violation_rate, 2),
        "chip_seconds_us": round(report.chip_seconds_s * 1e6, 2),
        "peak_chips": control.peak_chips if control else report.num_chips,
        "scale_ups": control.scale_ups if control else 0,
        "scale_downs": control.scale_downs if control else 0,
    }


def test_autoscaling_policies_vs_fixed_fleets(benchmark):
    rate = _one_chip_rate(1.5)

    def sweep():
        reports = {
            f"fixed-{MIN_CHIPS}": _ramp(rate, num_chips=MIN_CHIPS),
            f"fixed-{MAX_CHIPS}": _ramp(rate, num_chips=MAX_CHIPS),
        }
        for policy in AUTOSCALE_POLICIES:
            control = ControlConfig(autoscale=policy, min_chips=MIN_CHIPS,
                                    max_chips=MAX_CHIPS)
            reports[policy] = _ramp(rate, control=control)
        return reports

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table([_row(name, rep) for name, rep in reports.items()],
                title="autoscaling on a 6x burst-ramp: violations vs. "
                      "chip-seconds")
    fixed_min = reports[f"fixed-{MIN_CHIPS}"]
    fixed_max = reports[f"fixed-{MAX_CHIPS}"]
    assert fixed_min.slo_violation_rate > fixed_max.slo_violation_rate
    threshold = reports["threshold"]
    # the headline trade: fewer violations than min, fewer chip-seconds
    # than max
    assert threshold.slo_violation_rate < fixed_min.slo_violation_rate
    assert threshold.chip_seconds_s < fixed_max.chip_seconds_s
    for policy in AUTOSCALE_POLICIES:
        assert reports[policy].control.scale_ups >= 1
    print("\nthreshold autoscaler fleet-size timeline")
    print(threshold.control.timeline_text())


def test_admission_and_degradation_at_overload(benchmark):
    config = dataclasses.replace(BASE, num_chips=2)
    graph = load_dataset(DATASET, seed=0)
    model = build_model(MODEL, input_length=graph.feature_length)
    rate = ServingSimulator(graph, model, config,
                            dataset_name=DATASET).calibrate_rate(2.0)

    # an auto-sized bucket polices sustained overload coarsely; a generous
    # explicit contract leaves the SLO-budget gate (the degradable one) as
    # the binding constraint -- show both regimes
    generous = 4 * rate

    def sweep():
        common = dict(dataset=DATASET, model_name=MODEL,
                      num_requests=NUM_REQUESTS, rate_rps=rate,
                      arrival="poisson", config=config, seed=0)
        return {
            "open-door": run_serving(**common),
            "auto bucket": run_serving(
                control=ControlConfig(admission=True), **common),
            "generous contract": run_serving(
                control=ControlConfig(admission=True,
                                      admission_rate_rps=generous), **common),
            "generous + degrade": run_serving(
                control=ControlConfig(admission=True,
                                      admission_rate_rps=generous,
                                      degrade=True), **common),
            "degrade-only": run_serving(
                control=ControlConfig(degrade=True), **common),
        }

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for label, report in reports.items():
        acct = report.control.admission[""] if report.control else None
        rows.append({
            "gate": label,
            "completed": report.completed,
            "shed_rate_limited": acct.shed_rate_limited if acct else 0,
            "shed_overload": acct.shed_overload if acct else 0,
            "degraded": acct.degraded_total if acct else 0,
            "p99_over_slo": round(report.p99_latency_s / report.slo_s, 3),
            "slo_violation_pct": round(100 * report.slo_violation_rate, 2),
        })
    print_table(rows, title="admission control at 2x overload "
                            "(p99 of admitted requests)")
    assert reports["open-door"].p99_latency_s > reports["open-door"].slo_s
    for gated in ("auto bucket", "generous contract", "generous + degrade"):
        assert reports[gated].p99_latency_s <= reports[gated].slo_s
        assert reports[gated].control.admission[""].shed > 0
    both = reports["generous + degrade"].control.admission[""]
    shed_only = reports["generous contract"].control.admission[""]
    assert both.degraded_total > 0
    assert both.shed < shed_only.shed
    assert reports["degrade-only"].completed == NUM_REQUESTS
