"""Fig. 2 -- Execution-time breakdown of the two phases on PyG-CPU.

Regenerates the per-model, per-dataset split between Aggregation and
Combination time that motivates the hybrid architecture.  Expected shape:
both phases take a significant share; aggregation dominates on the
multi-graph / high-degree datasets (IB, CL, PB) and for GIN (which aggregates
at the full input feature length), while the very long feature vectors of
Cora/Citeseer shift GCN and GraphSage toward Combination.
"""

import pytest

from repro.analysis import print_table
from repro.baselines import execution_time_breakdown

MODELS = ("GCN", "GSC", "GIN")
DATASETS = ("IB", "CR", "CS", "CL", "PB")


def test_fig02_execution_time_breakdown(benchmark):
    rows = benchmark.pedantic(
        lambda: execution_time_breakdown(MODELS, DATASETS),
        rounds=1, iterations=1,
    )
    print_table(rows, title="Fig. 2: PyG-CPU execution-time breakdown (%)",
                columns=["model", "dataset", "aggregation_pct", "combination_pct"])
    assert len(rows) == len(MODELS) * len(DATASETS)
    for row in rows:
        assert row["aggregation_pct"] + row["combination_pct"] == pytest.approx(100, abs=0.5)
    # GIN aggregates at the full feature length, so on the long-feature
    # citation datasets (where GCN's combine-first reordering shortens the
    # aggregated vectors the most) its aggregation share is clearly higher.
    gin = {r["dataset"]: r["aggregation_pct"] for r in rows if r["model"] == "GIN"}
    gcn = {r["dataset"]: r["aggregation_pct"] for r in rows if r["model"] == "GCN"}
    assert all(gin[d] > gcn[d] for d in ("CR", "CS", "PB"))
    # Long-feature citation datasets shift GCN toward Combination.
    assert gcn["CR"] < gcn["IB"]
    assert gcn["CS"] < gcn["IB"]
