"""Open-loop load benchmark: knee RPS per chip count (``BENCH_loadtest.json``).

One table: the SLO knee -- max offered RPS with SLO attainment >= the
target -- found by bracket-and-bisect for a 1/2/4-chip fleet on identical
seeded zipf traffic (see ``docs/loadtest.md``).  The acceptance criteria
pinned here are the subsystem's contract:

* every sweep *brackets* its knee (finds a failing rate, so the knee is
  a crossing, not a lower bound), and
* knee RPS is monotone non-decreasing in chip count, strictly rising
  from 1 to 4 chips -- more chips can only add capacity.

``REPRO_BENCH_SMOKE=1`` loosens the bisection tolerance for the CI smoke
job.  Set ``REPRO_BENCH_JSON=PATH`` to also dump the full knee/p99-vs-rate
trajectory as JSON (the same payload as ``python -m repro loadtest``), so
harnesses never scrape the table.
"""

import json
import os

from repro.analysis import print_table
from repro.serving import LoadTestConfig, run_loadtest
from repro.serving.loadtest import _monotone_knees

DATASET = "IB"
MODEL = "GCN"
CHIP_COUNTS = (1, 2, 4)
# requests are per chip (each sweep serves requests x chips), so every
# chip count faces the same per-chip pressure and brackets a real knee
NUM_REQUESTS = 768
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
REL_TOL = 0.25 if SMOKE else 0.1
MAX_BISECTIONS = 4 if SMOKE else 12


def _maybe_dump(report):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    mode = "a" if os.path.exists(path) else "w"
    with open(path, mode) as handle:
        json.dump({"loadtest": report.to_dict()}, handle, default=float)
        handle.write("\n")


def test_knee_scaling(benchmark):
    config = LoadTestConfig(
        dataset=DATASET, model_name=MODEL, num_requests=NUM_REQUESTS,
        chip_counts=CHIP_COUNTS, rel_tol=REL_TOL,
        max_bisections=MAX_BISECTIONS, seed=0)
    report = benchmark.pedantic(lambda: run_loadtest(config),
                                rounds=1, iterations=1)
    print_table(report.summary_rows(),
                title=f"SLO knee vs chip count ({MODEL} on {DATASET}, "
                      f"{NUM_REQUESTS} requests/chip, attainment >= "
                      f"{config.slo_target:g})")
    _maybe_dump(report)
    # every measurement completed its whole stream (open-loop, no shedding)
    for sweep in report.sweeps:
        for point in sweep["points"]:
            assert point["completed"] == point["offered"] \
                == sweep["num_requests"]
    # each sweep found a failing rate: the knee is a crossing, not a bound
    assert all(sweep["bracketed"] for sweep in report.sweeps)
    # the headline: capacity never shrinks with chips, and genuinely grows
    # across the 1 -> 4 span
    assert _monotone_knees(report.sweeps)
    knees = report.knees
    assert knees[max(CHIP_COUNTS)] > knees[min(CHIP_COUNTS)]
