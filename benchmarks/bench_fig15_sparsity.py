"""Fig. 15 -- Effect of the window sliding/shrinking sparsity elimination.

Expected shape: with sparsity elimination enabled, HyGCN's execution time and
DRAM accesses drop (the paper reports 1.1x-3x speedup) because a substantial
fraction of the source-feature rows never needs to be loaded; Citeseer, whose
very long feature vectors force small intervals, shows the largest sparsity
reduction.
"""

from repro.analysis import print_table, sparsity_elimination_sweep

DATASETS = ("CR", "CS", "PB")


def test_fig15_sparsity_elimination(benchmark):
    rows = benchmark.pedantic(
        lambda: sparsity_elimination_sweep(datasets=DATASETS, model_name="GCN"),
        rounds=1, iterations=1,
    )
    print_table(rows, title="Fig. 15: sparsity elimination (GCN, Aggregation-dominated view)")

    by_dataset = {r["dataset"]: r for r in rows}
    for dataset in DATASETS:
        row = by_dataset[dataset]
        # (a) execution time never increases, (b) DRAM access drops,
        # (c) a measurable share of row loads is eliminated.
        assert row["speedup"] >= 1.0
        assert row["dram_access_pct"] < 100.0
        assert row["sparsity_reduction_pct"] > 5.0
    # Citeseer (longest features, smallest intervals) eliminates the most.
    assert by_dataset["CS"]["sparsity_reduction_pct"] >= \
        by_dataset["CR"]["sparsity_reduction_pct"]
    # at least one dataset shows a clearly visible speedup
    assert max(r["speedup"] for r in rows) > 1.05
