"""Table 4 -- Benchmark graph datasets.

Prints the dataset registry (full published statistics) and verifies the
synthetic stand-ins match the published vertex counts, feature lengths and
average degrees at their configured scale.
"""

import pytest

from repro.analysis import print_table
from repro.graphs import DATASETS, dataset_table, load_dataset


def test_table4_dataset_registry(benchmark):
    rows = benchmark.pedantic(dataset_table, rounds=1, iterations=1)
    print_table(rows, title="Table 4: benchmark graph datasets (published full-scale statistics)")

    by_name = {spec.abbrev: spec for spec in DATASETS.values()}
    assert by_name["CR"].num_vertices == 2708 and by_name["CR"].feature_length == 1433
    assert by_name["CS"].num_vertices == 3327 and by_name["CS"].feature_length == 3703
    assert by_name["PB"].num_vertices == 19717 and by_name["PB"].feature_length == 500
    assert by_name["RD"].num_edges == 114_615_892
    assert by_name["CL"].num_edges == 1_446_010
    assert by_name["IB"].feature_length == 136


def test_table4_synthetic_standins_match_scaled_statistics(benchmark):
    def generate():
        return {abbrev: load_dataset(abbrev) for abbrev in DATASETS}

    graphs = benchmark.pedantic(generate, rounds=1, iterations=1)
    rows = []
    for abbrev, graph in graphs.items():
        spec = DATASETS[abbrev]
        rows.append({
            "dataset": abbrev,
            "scale_factor": spec.scale_factor,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "feature_length": graph.feature_length,
            "avg_degree": round(graph.num_edges / graph.num_vertices, 1),
            "target_avg_degree": round(spec.avg_degree, 1),
        })
    print_table(rows, title="Synthetic stand-ins (scaled) vs. published average degree")
    for abbrev, graph in graphs.items():
        spec = DATASETS[abbrev]
        assert graph.num_vertices == spec.scaled_vertices
        assert graph.feature_length == spec.feature_length
        # average degree within 2x of the published value despite deduplication
        measured = graph.num_edges / graph.num_vertices
        assert measured == pytest.approx(spec.avg_degree, rel=0.6)
