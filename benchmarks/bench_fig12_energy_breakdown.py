"""Fig. 12 -- Energy breakdown of HyGCN across its architectural components.

Expected shape: the Combination Engine (dominated by the systolic-array MACs)
consumes the largest share of on-chip energy for most configurations, while
the Aggregation Engine's share grows on the high-degree datasets (COLLAB,
Reddit) whose edge processing dominates.
"""

from repro.analysis import print_table


def test_fig12_hygcn_energy_breakdown(benchmark, comparison_grid, platform_comparison):
    benchmark.pedantic(lambda: platform_comparison.compare("GCN", "IB"),
                       rounds=1, iterations=1)
    rows = []
    for r in comparison_grid:
        shares = r.energy_breakdown()
        rows.append({
            "model": r.model_name,
            "dataset": r.dataset_name,
            "aggregation_engine_pct": round(100.0 * shares["aggregation_engine"], 1),
            "combination_engine_pct": round(100.0 * shares["combination_engine"], 1),
            "coordinator_pct": round(100.0 * shares["coordinator"], 1),
            "dram_pct": round(100.0 * shares["dram"], 1),
            "static_pct": round(100.0 * shares["static"], 1),
        })
    print_table(rows, title="Fig. 12: HyGCN energy breakdown (% of total, incl. DRAM)")

    for row in rows:
        total = (row["aggregation_engine_pct"] + row["combination_engine_pct"]
                 + row["coordinator_pct"] + row["dram_pct"] + row["static_pct"])
        assert abs(total - 100.0) < 1.0
    by_key = {(r["model"], r["dataset"]): r for r in rows}
    # the engines' on-chip split: combination dominates aggregation for the
    # long-feature citation graphs...
    assert by_key[("GCN", "CR")]["combination_engine_pct"] > \
        by_key[("GCN", "CR")]["aggregation_engine_pct"]
    # ...while the high-degree COLLAB/Reddit graphs push energy toward the
    # Aggregation Engine relative to those citation graphs.
    assert by_key[("GCN", "CL")]["aggregation_engine_pct"] > \
        by_key[("GCN", "CR")]["aggregation_engine_pct"]
    assert by_key[("GIN", "RD")]["aggregation_engine_pct"] > \
        by_key[("GIN", "CS")]["aggregation_engine_pct"]
