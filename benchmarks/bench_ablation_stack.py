"""Extension: cumulative ablation of the three main design choices.

Not a figure from the paper, but the design choices DESIGN.md calls out --
sparsity elimination, the inter-engine pipeline and memory-access
coordination -- are ablated here cumulatively (starting from a design with
all three disabled) so their stacked contribution is visible in one table.
Expected shape: each added optimisation keeps or improves execution time and
never increases DRAM traffic; the fully optimised design is the best.
"""

from repro.analysis import print_table, stacked_optimization_ablation

DATASETS = ("CR", "CS", "PB")


def test_stacked_optimization_ablation(benchmark):
    def run():
        rows = []
        for dataset in DATASETS:
            rows.extend(stacked_optimization_ablation(dataset=dataset, model_name="GCN"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(rows, title="Extension: cumulative optimisation ablation (GCN)",
                columns=["dataset", "step", "time_pct_of_baseline",
                         "dram_pct_of_baseline", "energy_pct_of_baseline",
                         "speedup_vs_baseline"])
    for dataset in DATASETS:
        series = [r for r in rows if r["dataset"] == dataset]
        speedups = [r["speedup_vs_baseline"] for r in series]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 1.5
        dram = [r["dram_pct_of_baseline"] for r in series]
        assert all(b <= a + 1e-9 for a, b in zip(dram, dram[1:]))
