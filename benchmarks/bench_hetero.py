"""Heterogeneity benchmark: homogeneous vs. mixed fleet vs. oracle dispatch.

One table on identical seeded zipf traffic (see ``docs/heterogeneity.md``):
a two-tenant mixed workload -- a high-fanout sampling tenant (MAC-dense
batches) and a feature-heavy combination tenant (streaming-bound batches)
-- served by

1. a **homogeneous** fleet of four ``balanced`` chips;
2. a **mixed** 50/50 ``agg_heavy``/``comb_heavy`` fleet under
   shape-oblivious (least-loaded) dispatch -- the mis-dispatch cost of
   heterogeneity without routing;
3. the same mixed fleet under **shape-aware** dispatch;
4. the **oracle** estimate: shape-aware's busy chip-seconds minus its
   residual mis-dispatch time (the lower bound a perfect router priced by
   the learned per-shape rates would reach; latency columns are n/a).

The assertions pin the heterogeneity acceptance criterion: on the mixed
fleet, ``shape-aware`` beats ``least-loaded`` on every tenant's p99 *and*
on total busy chip-seconds.

``REPRO_BENCH_SMOKE=1`` shrinks the streams for the CI smoke job.  Set
``REPRO_BENCH_JSON=PATH`` to also dump every report as JSON (the same
``to_dict()`` payload as ``python -m repro serve --json``), so harnesses
never scrape the tables.
"""

import json
import os

from repro.analysis import print_table
from repro.serving import (
    FleetConfig,
    TenantConfig,
    clear_probe_cache,
    fleet_spec_for_mix,
    run_multi_tenant,
)

#: Requests per tenant.  120 is the floor, smoke included: shorter
#: streams form so few batches per profile bucket that the comparison
#: collapses into ties (both dispatchers serve the same handful of
#: placements).
NUM_REQUESTS = 120 if os.environ.get("REPRO_BENCH_SMOKE") else 160
SKEW = 1.2
UTILIZATION = 1.2

TENANTS = [
    TenantConfig(name="sampler", dataset="CR", num_hops=2, fanout=16,
                 num_requests=NUM_REQUESTS, max_batch_size=8, cache_size=0,
                 popularity_skew=SKEW),
    TenantConfig(name="features", dataset="CS", num_hops=1, fanout=2,
                 num_requests=NUM_REQUESTS, max_batch_size=8, cache_size=0,
                 popularity_skew=SKEW),
]

FLEETS = {
    "homogeneous": ("balanced", "least-loaded"),
    "mixed/least-loaded": ("mixed", "least-loaded"),
    "mixed/shape-aware": ("mixed", "shape-aware"),
}


def _serve(mix, dispatch):
    clear_probe_cache()
    fleet = FleetConfig(fleet_spec=fleet_spec_for_mix(mix, 4),
                        dispatch=dispatch, seed=0)
    return run_multi_tenant(TENANTS, fleet, utilization_target=UTILIZATION,
                            include_isolation_baseline=False)


def _row(label, report):
    return {
        "fleet": label,
        "completed": report.completed,
        "sampler_p99_us": round(
            report.reports["sampler"].p99_latency_s * 1e6, 2),
        "features_p99_us": round(
            report.reports["features"].p99_latency_s * 1e6, 2),
        "busy_chip_seconds_us": round(report.total_busy_s * 1e6, 2),
        "misdispatch_us": round(report.hetero.misdispatch_s * 1e6, 2)
        if report.hetero else 0.0,
        "scored_pct": round(100.0 * report.hetero.scored_fraction, 1)
        if report.hetero else 0.0,
    }


def _oracle_row(aware):
    """Perfect-routing lower bound, priced from the learned rates."""
    return {
        "fleet": "mixed/oracle (est.)",
        "completed": aware.completed,
        "sampler_p99_us": None,
        "features_p99_us": None,
        "busy_chip_seconds_us": round(
            (aware.total_busy_s - aware.hetero.misdispatch_s) * 1e6, 2),
        "misdispatch_us": 0.0,
        "scored_pct": None,
    }


def _maybe_dump(reports):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    payload = {label: report.to_dict(include_records=False)
               for label, report in reports.items()}
    mode = "a" if os.path.exists(path) else "w"
    with open(path, mode) as handle:
        json.dump({"hetero": payload}, handle, default=float)
        handle.write("\n")


def test_shape_aware_beats_least_loaded_on_mixed_fleet(benchmark):
    reports = benchmark.pedantic(
        lambda: {label: _serve(mix, dispatch)
                 for label, (mix, dispatch) in FLEETS.items()},
        rounds=1, iterations=1,
    )
    rows = [_row(label, rep) for label, rep in reports.items()]
    rows.append(_oracle_row(reports["mixed/shape-aware"]))
    print_table(rows, title=f"heterogeneous fleets: two-tenant zipf-{SKEW} "
                            f"workload, {NUM_REQUESTS} requests/tenant")
    _maybe_dump(reports)
    oblivious = reports["mixed/least-loaded"]
    aware = reports["mixed/shape-aware"]
    assert all(rep.completed == 2 * NUM_REQUESTS for rep in reports.values())
    # the acceptance headline: routing by shape wins the tail and the
    # chip-seconds bill on the identical mixed fleet and traffic -- no
    # tenant pays for the other's win
    for tenant in ("sampler", "features"):
        assert aware.reports[tenant].p99_latency_s \
            <= oblivious.reports[tenant].p99_latency_s
    assert max(r.p99_latency_s for r in aware.reports.values()) \
        < max(r.p99_latency_s for r in oblivious.reports.values())
    assert aware.total_busy_s < oblivious.total_busy_s
    # routing actually happened, and it recovered mis-dispatched time
    assert aware.hetero.scored_fraction > 0.5
    assert aware.hetero.misdispatch_s < oblivious.hetero.misdispatch_s
