"""Shared fixtures for the benchmark harness.

The overall-results figures (Fig. 10c, 11, 12, 13, 14) all consume the same
model x dataset comparison grid, so it is computed once per session and shared
across the benchmark files.
"""

from __future__ import annotations

import pytest

from repro.analysis import PlatformComparison

#: The evaluation grid of the paper: DiffPool is only evaluated on the two
#: multi-graph datasets (IB, CL); the other models run on all six datasets.
GRID = {
    "GCN": ("IB", "CR", "CS", "CL", "PB", "RD"),
    "GSC": ("IB", "CR", "CS", "CL", "PB", "RD"),
    "GIN": ("IB", "CR", "CS", "CL", "PB", "RD"),
    "DFP": ("IB", "CL"),
}


@pytest.fixture(scope="session")
def platform_comparison():
    """A single comparison harness reused by every overall-results benchmark."""
    return PlatformComparison()


@pytest.fixture(scope="session")
def comparison_grid(platform_comparison):
    """All (model, dataset) comparison results of the paper's evaluation grid."""
    results = []
    for model_name, datasets in GRID.items():
        for dataset in datasets:
            results.append(platform_comparison.compare(model_name, dataset))
    return results
