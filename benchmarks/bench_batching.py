"""Batching benchmark: FIFO vs. overlap vs. continuous on a Zipf workload.

Two tables on identical seeded traffic (see ``docs/batching.md``):

1. a **saturated** fleet with the adaptive timeout -- the regime where
   overlap-aware formation shrinks the fused subgraphs and therefore both
   the tail latency and the chip-seconds bill;
2. a **short-timeout** fleet that flushes underfilled batches -- the regime
   where continuous batching earns its keep by topping formed batches up
   with late joins.

The assertions pin the acceptance criteria of the batching subsystem:
``overlap`` beats ``fifo`` on p99 *and* chip-seconds under skewed
popularity, and ``continuous`` takes joins without ever violating its
join-window/staleness budgets.

``REPRO_BENCH_SMOKE=1`` shrinks the stream for the CI smoke job.  Set
``REPRO_BENCH_JSON=PATH`` to also dump every report as JSON (the same
``to_dict()`` payload as ``python -m repro serve --json``), so harnesses
never scrape the tables.
"""

import json
import os

from repro.analysis import print_table
from repro.graphs.datasets import load_dataset
from repro.models.model_zoo import build_model
from repro.serving import (
    BATCH_POLICIES,
    FleetConfig,
    RequestGenerator,
    ServingSimulator,
    WorkloadConfig,
    clear_probe_cache,
)

DATASET = "IB"
MODEL = "GCN"
#: 384 is the floor, smoke included: shorter streams stay arrival-bound
#: (the makespan never becomes service-bound), and the saturated
#: comparison needs a service-bound makespan for formation quality to
#: show up in chip-seconds.
NUM_REQUESTS = 384 if os.environ.get("REPRO_BENCH_SMOKE") else 512
SKEW = 1.2

#: Cache-free so formation quality, not result caching, drives the numbers.
SATURATED = FleetConfig(num_chips=2, max_batch_size=8, cache_size=0)
SHORT_TIMEOUT = FleetConfig(num_chips=2, max_batch_size=32,
                            batch_timeout_s=5e-7, cache_size=0)


def _serve(policy, base, utilization):
    clear_probe_cache()
    graph = load_dataset(DATASET, seed=0)
    model = build_model(MODEL, input_length=graph.feature_length)
    import dataclasses
    config = dataclasses.replace(base, batch_policy=policy)
    sim = ServingSimulator(graph, model, config, dataset_name=DATASET)
    rate = sim.calibrate_rate(utilization)
    workload = WorkloadConfig(num_requests=NUM_REQUESTS, rate_rps=rate,
                              popularity_skew=SKEW, seed=0)
    requests = RequestGenerator(graph.num_vertices, workload).generate()
    report = sim.run(requests, rate_rps=rate)
    return sim, report


def _row(policy, report):
    b = report.batching
    return {
        "policy": policy,
        "completed": report.completed,
        "p99_us": round(report.p99_latency_s * 1e6, 2),
        "chip_seconds_us": round(report.chip_seconds_s * 1e6, 2),
        "mean_batch": round(b.mean_batch_size, 2),
        "overlap_ratio_pct": round(100 * b.overlap_ratio, 2),
        "dedup_saved_vertices": b.dedup_saved_vertices,
        "late_joins": b.late_joins,
    }


def _maybe_dump(tag, reports):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    payload = {policy: report.to_dict(include_records=False)
               for policy, (_, report) in reports.items()}
    mode = "a" if os.path.exists(path) else "w"
    with open(path, mode) as handle:
        json.dump({tag: payload}, handle, default=float)
        handle.write("\n")


def test_overlap_beats_fifo_when_saturated(benchmark):
    reports = benchmark.pedantic(
        lambda: {p: _serve(p, SATURATED, utilization=3.0)
                 for p in BATCH_POLICIES},
        rounds=1, iterations=1,
    )
    print_table([_row(p, rep) for p, (_, rep) in reports.items()],
                title=f"batch formation, saturated fleet "
                      f"(zipf {SKEW}, {NUM_REQUESTS} requests)")
    _maybe_dump("saturated", reports)
    fifo = reports["fifo"][1]
    overlap = reports["overlap"][1]
    assert all(rep.completed == NUM_REQUESTS for _, rep in reports.values())
    # the headline: grouping by neighbourhood overlap shrinks the fused
    # subgraphs enough to win the tail *and* the chip-seconds bill
    assert overlap.batching.overlap_ratio > fifo.batching.overlap_ratio
    assert overlap.p99_latency_s < fifo.p99_latency_s
    assert overlap.chip_seconds_s < fifo.chip_seconds_s


def test_continuous_fills_underfilled_batches(benchmark):
    reports = benchmark.pedantic(
        lambda: {p: _serve(p, SHORT_TIMEOUT, utilization=1.2)
                 for p in BATCH_POLICIES},
        rounds=1, iterations=1,
    )
    print_table([_row(p, rep) for p, (_, rep) in reports.items()],
                title="batch formation, short-timeout fleet "
                      "(underfilled batches)")
    _maybe_dump("short-timeout", reports)
    fifo = reports["fifo"][1]
    sim, continuous = reports["continuous"]
    assert continuous.batching.late_joins > 0
    # every join stayed inside both budgets
    for event in sim.batcher.join_log:
        assert event.batch_age_s <= sim.join_window_s + 1e-12
        assert event.oldest_wait_s <= sim.staleness_s + 1e-12
    # fewer, fuller batches -> better tail and fewer chip-seconds
    assert continuous.batching.mean_batch_size > fifo.batching.mean_batch_size
    assert continuous.p99_latency_s < fifo.p99_latency_s
    assert continuous.chip_seconds_s < fifo.chip_seconds_s
