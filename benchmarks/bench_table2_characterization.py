"""Table 2 & Table 3 -- Quantitative CPU characterisation of the two phases.

Regenerates the per-Op DRAM intensity, per-Op DRAM energy and L2/L3 MPKI of
the Aggregation and Combination phases (GCN on COLLAB), plus the qualitative
execution-pattern summary derived from them.  Expected shape: aggregation
needs orders of magnitude more DRAM traffic per operation and misses in the
caches far more often; combination is compute-bound with a large
synchronisation overhead.
"""

from repro.analysis import print_table
from repro.baselines import characterize_phases, execution_pattern_table


def test_table2_and_table3_characterization(benchmark):
    chars = benchmark.pedantic(
        lambda: characterize_phases(dataset="CL", model_name="GCN",
                                    max_trace_vertices=160),
        rounds=1, iterations=1,
    )
    rows = [chars["aggregation"].as_row(), chars["combination"].as_row()]
    print_table(rows, title="Table 2: quantitative characterisation on CPU (GCN on COLLAB)")
    print_table(execution_pattern_table(chars),
                title="Table 3: execution patterns derived from Table 2")

    agg, comb = chars["aggregation"], chars["combination"]
    # Aggregation is memory-dominated: far more DRAM bytes and energy per op.
    assert agg.dram_bytes_per_op > 20 * comb.dram_bytes_per_op
    assert agg.dram_energy_per_op_nj > 20 * comb.dram_energy_per_op_nj
    # Cache behaviour: aggregation misses much more often.
    assert agg.l2_mpki > comb.l2_mpki
    assert agg.l3_mpki > comb.l3_mpki
    # Combination pays the measured ~36% synchronisation overhead.
    assert comb.sync_time_fraction and 0.2 <= comb.sync_time_fraction <= 0.5
