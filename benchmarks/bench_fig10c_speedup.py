"""Fig. 10(c) -- HyGCN speedup over the optimised PyG-CPU and naive PyG-GPU.

Expected shape: HyGCN is orders of magnitude (tens to hundreds of times in
this scaled reproduction; the paper reports 1509x on average at full dataset
scale) faster than PyG-CPU on every configuration, and several times faster
than PyG-GPU on most configurations.  The GIN model shows the largest gains
because it aggregates at the full input feature length, which the
general-purpose platforms handle worst; DiffPool shows the smallest because
its extra dense matrix multiplications already suit CPU/GPU.  GCN and GIN on
full-scale Reddit are out-of-memory on the GPU.
"""

from repro.analysis import PlatformComparison, geometric_mean, print_table


def test_fig10c_speedup_over_cpu_and_gpu(benchmark, comparison_grid, platform_comparison):
    benchmark.pedantic(lambda: platform_comparison.compare("GCN", "IB"),
                       rounds=1, iterations=1)
    rows = [
        {
            "model": r.model_name,
            "dataset": r.dataset_name,
            "speedup_vs_pyg_cpu": round(r.speedup_vs_cpu, 1),
            "speedup_vs_pyg_gpu": None if r.speedup_vs_gpu is None
            else round(r.speedup_vs_gpu, 2),
            "gpu_speedup_vs_cpu": None if r.gpu_speedup_vs_cpu is None
            else round(r.gpu_speedup_vs_cpu, 1),
        }
        for r in comparison_grid
    ]
    print_table(rows, title="Fig. 10c: HyGCN speedup over PyG-CPU (optimised) and PyG-GPU")
    summary = PlatformComparison.summarize(comparison_grid)
    print(f"\ngeomean speedup vs PyG-CPU: {summary['geomean_speedup_vs_cpu']:.0f}x "
          f"(paper: 1509x average at full dataset scale)")
    print(f"geomean speedup vs PyG-GPU: {summary['geomean_speedup_vs_gpu']:.1f}x "
          f"(paper: 6.5x average)")

    # HyGCN always beats the CPU, by a large factor.
    assert all(r.speedup_vs_cpu > 10 for r in comparison_grid)
    assert summary["geomean_speedup_vs_cpu"] > 50
    # HyGCN beats the GPU on the clear majority of configurations.
    gpu_speedups = [r.speedup_vs_gpu for r in comparison_grid if r.speedup_vs_gpu]
    assert sum(1 for s in gpu_speedups if s > 1) >= 0.7 * len(gpu_speedups)
    assert summary["geomean_speedup_vs_gpu"] > 2
    # GIN gains more than GCN on the same dataset (it aggregates at full length).
    per = {(r.model_name, r.dataset_name): r.speedup_vs_cpu for r in comparison_grid}
    assert per[("GIN", "CR")] > per[("GCN", "CR")]
    assert per[("GIN", "CS")] > per[("GCN", "CS")]
    # The GPU runs out of memory for the unsampled models on full-scale Reddit.
    ooms = {(r.model_name, r.dataset_name) for r in comparison_grid if r.gpu.out_of_memory}
    assert ("GCN", "RD") in ooms and ("GIN", "RD") in ooms
    assert ("GSC", "RD") not in ooms
