"""Sharding benchmark: shard-count scaling and hash vs. locality.

Two tables on identical seeded zipf traffic (see ``docs/sharding.md``):

1. **shard scaling** -- the same stream served by 1/2/4-shard chip groups
   under the ``locality`` partitioner, showing how the per-shard compute
   shrinks while halo exchange and the gather barrier grow;
2. **partitioner comparison** -- ``hash`` vs. ``locality`` on a 4-shard
   group, pinning the subsystem's acceptance criterion: the greedy
   edge-cut minimiser must beat the locality-oblivious baseline on BOTH
   edge-cut and served p99.

``REPRO_BENCH_SMOKE=1`` shrinks the stream for the CI smoke job.  Set
``REPRO_BENCH_JSON=PATH`` to also dump every report as JSON (the same
``to_dict()`` payload as ``python -m repro serve --json``), so harnesses
never scrape the tables.
"""

import json
import os

from repro.analysis import print_table
from repro.serving import (
    FleetConfig,
    ShardingConfig,
    clear_probe_cache,
    clear_shard_plan_cache,
    run_serving,
)

DATASET = "IB"
MODEL = "GCN"
NUM_REQUESTS = 256 if os.environ.get("REPRO_BENCH_SMOKE") else 512
SKEW = 1.2
SHARD_COUNTS = (1, 2, 4)


def _serve(num_shards, partitioner):
    clear_probe_cache()
    clear_shard_plan_cache()
    sharding = ShardingConfig(num_shards=num_shards, partitioner=partitioner)
    config = FleetConfig(num_chips=num_shards, sharding=sharding,
                         cache_size=0, seed=0)
    return run_serving(dataset=DATASET, model_name=MODEL,
                       num_requests=NUM_REQUESTS, popularity_skew=SKEW,
                       config=config, seed=0, utilization_target=0.7)


def _row(tag, report):
    stats = report.sharding
    return {
        "config": tag,
        "completed": report.completed,
        "p50_us": round(report.p50_latency_s * 1e6, 2),
        "p99_us": round(report.p99_latency_s * 1e6, 2),
        "edge_cut_pct": round(100 * stats.edge_cut_fraction, 2),
        "halo_moved_kb": round(stats.halo_bytes_moved / 1024, 1),
        "halo_hit_rate_pct": round(100 * stats.halo_hit_rate, 2),
        "load_imbalance": round(stats.load_imbalance, 3),
    }


def _maybe_dump(tag, reports):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    payload = {name: report.to_dict(include_records=False)
               for name, report in reports.items()}
    mode = "a" if os.path.exists(path) else "w"
    with open(path, mode) as handle:
        json.dump({tag: payload}, handle, default=float)
        handle.write("\n")


def test_shard_scaling(benchmark):
    reports = benchmark.pedantic(
        lambda: {f"{n}-shard": _serve(n, "locality") for n in SHARD_COUNTS},
        rounds=1, iterations=1,
    )
    print_table([_row(tag, rep) for tag, rep in reports.items()],
                title=f"shard scaling, locality partitioner "
                      f"(zipf {SKEW}, {NUM_REQUESTS} requests)")
    _maybe_dump("scaling", reports)
    assert all(rep.completed == NUM_REQUESTS for rep in reports.values())
    # a 1-shard group bypasses the exchange model entirely
    one = reports["1-shard"].sharding
    assert one.halo_bytes_moved == 0.0 and one.edge_cut == 0
    # wider groups cross more edges and move more halo bytes
    assert reports["4-shard"].sharding.edge_cut \
        > reports["2-shard"].sharding.edge_cut
    assert reports["4-shard"].sharding.halo_bytes_moved \
        > reports["2-shard"].sharding.halo_bytes_moved


def test_locality_beats_hash(benchmark):
    reports = benchmark.pedantic(
        lambda: {name: _serve(4, name) for name in ("hash", "locality")},
        rounds=1, iterations=1,
    )
    print_table([_row(tag, rep) for tag, rep in reports.items()],
                title=f"partitioner comparison, 4-shard group "
                      f"(zipf {SKEW}, {NUM_REQUESTS} requests)")
    _maybe_dump("partitioners", reports)
    hash_report = reports["hash"]
    locality_report = reports["locality"]
    # the headline: clustering neighbours on one chip wins the cut AND
    # the served tail under identical traffic
    assert locality_report.sharding.edge_cut < hash_report.sharding.edge_cut
    assert locality_report.sharding.halo_bytes_moved \
        < hash_report.sharding.halo_bytes_moved
    assert locality_report.p99_latency_s < hash_report.p99_latency_s
