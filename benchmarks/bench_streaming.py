"""Streaming-update benchmark: invalidation policies under live traffic.

Two tables on identical seeded zipf traffic and an *identical memoised
update stream* (see ``docs/streaming.md``):

1. **policy comparison** -- the same mutating workload (5 % update mix)
   served under ``targeted`` / ``flush`` / ``none`` invalidation next to a
   static-graph baseline, pinning the subsystem's acceptance criterion:
   ``targeted`` must beat ``flush`` on BOTH served p99 and result-cache
   hit rate with zero stale-beyond-budget serves, while ``none`` must
   show stale serves on the very same stream (the checks have teeth);
2. **update-rate scaling** -- ``targeted`` at growing update rates,
   showing invalidation work scale with churn while the zero-staleness
   contract holds at every point.

``REPRO_BENCH_SMOKE=1`` shrinks the stream for the CI smoke job.  Set
``REPRO_BENCH_JSON=PATH`` to also dump every report as JSON (the same
``to_dict()`` payload as ``python -m repro serve --json``), so harnesses
never scrape the tables.
"""

import json
import os

from repro.analysis import print_table
from repro.models.model_zoo import clear_workloads_cache
from repro.serving import FleetConfig, clear_probe_cache, run_serving

DATASET = "IB"
MODEL = "GCN"
NUM_REQUESTS = 192 if os.environ.get("REPRO_BENCH_SMOKE") else 512
SKEW = 1.2
UPDATE_RATE = 0.05  # updates per offered request: the 5 % mix
UPDATE_MIX = "edge=0.6,feature=0.3,vertex=0.1"
RATES = (0.05, 0.2, 0.5)


def _serve(invalidation=None, update_rate=UPDATE_RATE):
    clear_probe_cache()
    clear_workloads_cache()
    # continuous batching: requests join in-flight batches, so every
    # result-cache miss adds real load instead of merely filling a
    # size-capped batch faster -- the honest setting for pricing what an
    # invalidation policy's cache damage costs the tail
    config = FleetConfig(num_chips=2, cache_size=256,
                         batch_policy="continuous", seed=0)
    kwargs = {}
    if invalidation is not None:
        kwargs.update(update_rate=update_rate, update_mix=UPDATE_MIX,
                      invalidation=invalidation, staleness_budget=0)
    return run_serving(dataset=DATASET, model_name=MODEL,
                       num_requests=NUM_REQUESTS, popularity_skew=SKEW,
                       config=config, seed=0, utilization_target=0.8,
                       **kwargs)


def _row(tag, report):
    row = {
        "config": tag,
        "completed": report.completed,
        "p50_us": round(report.p50_latency_s * 1e6, 2),
        "p99_us": round(report.p99_latency_s * 1e6, 2),
        "result_hit_rate_pct": round(100 * report.cache.hit_rate, 2),
    }
    stats = report.consistency
    if stats is not None:
        row.update({
            "updates": stats.updates_applied,
            "invalidated": stats.total_invalidations,
            "stale_serves": stats.stale_serves,
            "beyond_budget": stats.stale_beyond_budget,
        })
        if stats.p99_inflation is not None:
            row["p99_inflation_x"] = round(stats.p99_inflation, 3)
    return row


def _maybe_dump(tag, reports):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    payload = {name: report.to_dict(include_records=False)
               for name, report in reports.items()}
    mode = "a" if os.path.exists(path) else "w"
    with open(path, mode) as handle:
        json.dump({tag: payload}, handle, default=float)
        handle.write("\n")


def test_invalidation_policy_comparison(benchmark):
    def _sweep():
        reports = {policy: _serve(policy)
                   for policy in ("targeted", "flush", "none")}
        reports["static"] = _serve()
        return reports

    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    baseline = reports["static"].p99_latency_s
    for name in ("targeted", "flush", "none"):
        reports[name].consistency.baseline_p99_s = baseline
    print_table([_row(tag, rep) for tag, rep in reports.items()],
                title=f"invalidation policy comparison (zipf {SKEW}, "
                      f"{NUM_REQUESTS} requests, {UPDATE_RATE:.0%} updates)")
    _maybe_dump("policies", reports)
    assert all(rep.completed == NUM_REQUESTS for rep in reports.values())
    targeted, flush, none = (reports[k] for k in ("targeted", "flush",
                                                  "none"))
    # all three policies applied the identical memoised stream
    applied = {rep.consistency.updates_applied
               for rep in (targeted, flush, none)}
    assert len(applied) == 1
    # coherent policies serve nothing stale, at budget 0
    for rep in (targeted, flush):
        assert rep.consistency.stale_serves == 0
        assert rep.consistency.stale_beyond_budget == 0
    # `none` invalidates nothing (its stale serves are pinned under real
    # churn in test_update_rate_scaling -- at a 5 % mix the handful of
    # uniform-random updates may miss every cached neighbourhood)
    assert none.consistency.total_invalidations == 0
    # the headline: surgical invalidation wins the tail AND keeps the
    # result cache warm, against flush-on-any-update, on identical traffic
    assert targeted.p99_latency_s < flush.p99_latency_s
    assert targeted.cache.hit_rate > flush.cache.hit_rate
    assert targeted.consistency.total_invalidations \
        < flush.consistency.total_invalidations


def test_update_rate_scaling(benchmark):
    def _sweep():
        reports = {f"rate={rate}": _serve("targeted", rate)
                   for rate in RATES}
        reports[f"none@{RATES[-1]}"] = _serve("none", RATES[-1])
        return reports

    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table([_row(tag, rep) for tag, rep in reports.items()],
                title=f"targeted invalidation vs. update rate (zipf {SKEW}, "
                      f"{NUM_REQUESTS} requests)")
    _maybe_dump("rates", reports)
    assert all(rep.completed == NUM_REQUESTS for rep in reports.values())
    stats = [reports[f"rate={rate}"].consistency for rate in RATES]
    # more churn, more updates applied, more invalidation work...
    assert stats[0].updates_applied < stats[-1].updates_applied
    assert stats[0].total_invalidations <= stats[-1].total_invalidations
    # ...and never a stale serve at any rate
    assert all(s.stale_serves == 0 and s.stale_beyond_budget == 0
               for s in stats)
    # the identical high-churn stream served WITHOUT invalidation goes
    # stale -- the proof the differential checks (and therefore every
    # zero above) have teeth
    unguarded = reports[f"none@{RATES[-1]}"].consistency
    assert unguarded.updates_applied == stats[-1].updates_applied
    assert unguarded.stale_serves > 0
