"""Fig. 11 -- HyGCN energy consumption normalised to PyG-CPU and PyG-GPU.

Expected shape: HyGCN consumes a small fraction of one percent of the CPU's
energy (the paper reports 0.04% on average, i.e. a 2500x reduction) and a few
percent of the GPU's energy (the paper reports 10%, a 10x reduction).
"""

from repro.analysis import PlatformComparison, print_table


def test_fig11_normalized_energy(benchmark, comparison_grid, platform_comparison):
    benchmark.pedantic(lambda: platform_comparison.compare("GCN", "IB"),
                       rounds=1, iterations=1)
    rows = [
        {
            "model": r.model_name,
            "dataset": r.dataset_name,
            "energy_vs_cpu_pct": round(100.0 * r.energy_vs_cpu, 4),
            "energy_vs_gpu_pct": None if r.energy_vs_gpu is None
            else round(100.0 * r.energy_vs_gpu, 2),
        }
        for r in comparison_grid
    ]
    print_table(rows, title="Fig. 11: HyGCN energy normalised to the baselines (%)")
    summary = PlatformComparison.summarize(comparison_grid)
    print(f"\ngeomean energy reduction vs PyG-CPU: "
          f"{summary['geomean_energy_reduction_vs_cpu']:.0f}x (paper: 2500x)")
    print(f"geomean energy reduction vs PyG-GPU: "
          f"{summary['geomean_energy_reduction_vs_gpu']:.0f}x (paper: 10x)")

    # well under 1% of the CPU energy everywhere
    assert all(r.energy_vs_cpu < 0.01 for r in comparison_grid)
    # a small fraction of the GPU energy wherever the GPU can run at all
    gpu_ratios = [r.energy_vs_gpu for r in comparison_grid if r.energy_vs_gpu]
    assert all(ratio < 0.25 for ratio in gpu_ratios)
    assert summary["geomean_energy_reduction_vs_cpu"] > 500
    assert summary["geomean_energy_reduction_vs_gpu"] > 5
