"""Fig. 10(b) -- The same algorithm optimisation applied to PyG-GPU.

Expected shape: unlike the CPU, the GPU *loses* performance (relative speedup
below 1 everywhere) because each shard exposes too few vertices to fill the
thousands of hardware threads, and the per-shard kernel launches add up.
"""

from repro.analysis import print_table
from repro.baselines import PyGGPUModel
from repro.graphs import DATASETS as DATASET_SPECS
from repro.graphs import load_dataset
from repro.models import build_model

MODELS = ("GCN", "GSC", "GIN")
DATASETS = ("IB", "CR", "CS", "CL", "PB", "RD")


def gpu_optimization_speedups():
    plain = PyGGPUModel()
    optimized = PyGGPUModel(algorithm_optimized=True)
    rows = []
    for model_name in MODELS:
        for dataset in DATASETS:
            graph = load_dataset(dataset)
            spec = DATASET_SPECS[dataset]
            model = build_model(model_name, input_length=graph.feature_length)
            base = plain.run(model, graph, dataset_name=dataset, full_scale_spec=spec)
            opt = optimized.run(model, graph, dataset_name=dataset, full_scale_spec=spec)
            if base.out_of_memory or opt.out_of_memory:
                rows.append({"model": model_name, "dataset": dataset, "speedup": None})
                continue
            rows.append({
                "model": model_name,
                "dataset": dataset,
                "speedup": round(base.total_time_s / opt.total_time_s, 3),
            })
    return rows


def test_fig10b_gpu_algorithm_optimization(benchmark):
    rows = benchmark.pedantic(gpu_optimization_speedups, rounds=1, iterations=1)
    print_table(rows, title="Fig. 10b: PyG-GPU relative speedup from the same optimisation "
                            "(values < 1 mean a slowdown)")
    measured = [r["speedup"] for r in rows if r["speedup"] is not None]
    ooms = [r for r in rows if r["speedup"] is None]
    assert measured, "at least some configurations must fit in GPU memory"
    # the optimisation hurts the GPU everywhere it runs
    assert all(s < 1.0 for s in measured)
    # full-scale Reddit with unsampled aggregation exceeds device memory
    assert any(r["dataset"] == "RD" for r in ooms)
