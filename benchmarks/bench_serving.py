"""Serving benchmark: batching and dispatch policies under identical traffic.

Not a paper figure -- this exercises the online-serving subsystem the way the
evaluation harness exercises the offline figures: one table comparing the
three dispatch policies and one comparing the three batching policies, on the
same seeded request stream.  The assertions pin the invariants the serving
simulation must uphold (request conservation, bounded utilisation, policies
actually behaving differently).

``REPRO_BENCH_SMOKE=1`` shrinks the stream for the CI smoke job;
``REPRO_BENCH_JSON=path`` appends one JSON line per comparison with the
full machine-readable reports, which CI uploads as ``BENCH_serving.json``.
"""

import json
import os

from repro.analysis import print_table
from repro.serving import (
    BATCHING_POLICIES,
    DISPATCH_POLICIES,
    FleetConfig,
    run_serving,
)

DATASET = "IB"
MODEL = "GCN"
NUM_REQUESTS = 256 if os.environ.get("REPRO_BENCH_SMOKE") else 512
NUM_CHIPS = 4


def _serve(dispatch="round-robin", batch_policy="timeout"):
    config = FleetConfig(num_chips=NUM_CHIPS, dispatch=dispatch,
                         batch_policy=batch_policy)
    return run_serving(dataset=DATASET, model_name=MODEL,
                       num_requests=NUM_REQUESTS, config=config, seed=0)


def _row(label_key, label, report):
    return {
        label_key: label,
        "p50_us": round(report.p50_latency_s * 1e6, 2),
        "p95_us": round(report.p95_latency_s * 1e6, 2),
        "p99_us": round(report.p99_latency_s * 1e6, 2),
        "throughput_rps": round(report.throughput_rps, 0),
        "slo_violation_pct": round(100 * report.slo_violation_rate, 2),
        "cache_hit_rate_pct": round(100 * report.cache.hit_rate, 2),
    }


def _maybe_dump(tag, reports):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    payload = {label: report.to_dict(include_records=False)
               for label, report in reports.items()}
    mode = "a" if os.path.exists(path) else "w"
    with open(path, mode) as handle:
        json.dump({tag: payload}, handle, default=float)
        handle.write("\n")


def test_dispatch_policies(benchmark):
    reports = benchmark.pedantic(
        lambda: {d: _serve(dispatch=d) for d in DISPATCH_POLICIES},
        rounds=1, iterations=1,
    )
    print_table([_row("dispatch", d, r) for d, r in reports.items()],
                title="serving: dispatch-policy comparison")
    _maybe_dump("dispatch", reports)
    splits = {}
    for dispatch, report in reports.items():
        # every request completes exactly once
        assert report.completed == NUM_REQUESTS
        assert len({r.request_id for r in report.records}) == NUM_REQUESTS
        served = sum(c.requests_served for c in report.chips)
        hits = sum(1 for r in report.records if r.cache_hit)
        assert served + hits == NUM_REQUESTS
        span = report.makespan_s
        assert all(0.0 <= c.utilization(span) <= 1.0 for c in report.chips)
        splits[dispatch] = tuple(c.requests_served for c in report.chips)
    # at least two policies distribute load differently on identical traffic
    assert len(set(splits.values())) >= 2


def test_batching_policies(benchmark):
    reports = benchmark.pedantic(
        lambda: {b: _serve(batch_policy=b) for b in BATCHING_POLICIES},
        rounds=1, iterations=1,
    )
    print_table([_row("batching", b, r) for b, r in reports.items()],
                title="serving: batching-policy comparison")
    _maybe_dump("batching", reports)
    for report in reports.values():
        assert report.completed == NUM_REQUESTS
        assert report.p50_latency_s <= report.p95_latency_s <= report.p99_latency_s
