"""Fig. 14 -- Off-chip data accessed by HyGCN, normalised to PyG-CPU and PyG-GPU.

Expected shape: despite its on-chip memory (16 MB Aggregation Buffer) being
far smaller than the CPU's 60 MB LLC or the GPU's 34 MB of on-chip storage,
HyGCN moves less off-chip data than either baseline on most configurations
(the paper reports 21% / 33% of CPU / GPU traffic on average), with the
largest savings on the dense multi-graph datasets (COLLAB, Reddit) where
window sliding/shrinking and interval-level reuse eliminate the most traffic.
On the small citation graphs with very long feature vectors (CR, CS) the
advantage shrinks because HyGCN aggregates at the full input feature length.
"""

from repro.analysis import geometric_mean, print_table


def test_fig14_normalized_dram_access(benchmark, comparison_grid, platform_comparison):
    benchmark.pedantic(lambda: platform_comparison.compare("GCN", "IB"),
                       rounds=1, iterations=1)
    rows = [
        {
            "model": r.model_name,
            "dataset": r.dataset_name,
            "dram_vs_pyg_cpu_pct": round(100.0 * r.dram_vs_cpu, 1),
            "dram_vs_pyg_gpu_pct": None if r.dram_vs_gpu is None
            else round(100.0 * r.dram_vs_gpu, 1),
        }
        for r in comparison_grid
    ]
    print_table(rows, title="Fig. 14: HyGCN DRAM access normalised to the baselines (%)")
    cpu_ratios = [r.dram_vs_cpu for r in comparison_grid]
    gpu_ratios = [r.dram_vs_gpu for r in comparison_grid if r.dram_vs_gpu]
    print(f"\ngeomean DRAM access vs PyG-CPU: {100 * geometric_mean(cpu_ratios):.0f}% "
          f"(paper: 21%)")
    print(f"geomean DRAM access vs PyG-GPU: {100 * geometric_mean(gpu_ratios):.0f}% "
          f"(paper: 33%)")

    # On average HyGCN moves less data than either baseline.
    assert geometric_mean(cpu_ratios) < 1.0
    assert geometric_mean(gpu_ratios) < 1.0
    # The dense multi-graph datasets see the biggest reductions.
    per = {(r.model_name, r.dataset_name): r.dram_vs_cpu for r in comparison_grid}
    assert per[("GIN", "CL")] < 0.25
    assert per[("GIN", "RD")] < 0.25
    assert per[("GIN", "CL")] < per[("GIN", "CR")]
