"""Fig. 16 -- Effect of the inter-engine pipeline and its two modes.

Expected shape: (a)(b) enabling the inter-engine pipeline cuts execution time
(the paper reports 27%-53%) and total DRAM accesses (to 50%-73%) because the
intermediate aggregation results stop round-tripping through DRAM; (c)(d) the
latency-aware pipeline gives lower average vertex latency while the
energy-aware pipeline gives lower Combination Engine energy (the paper
reports a 35% saving) by reusing the streamed weights across a larger
assembled vertex group.
"""

from repro.analysis import pipeline_mode_sweep, print_table

DATASETS = ("CR", "CS", "PB")


def test_fig16_inter_engine_pipeline(benchmark):
    rows = benchmark.pedantic(
        lambda: pipeline_mode_sweep(datasets=DATASETS, model_name="GCN"),
        rounds=1, iterations=1,
    )
    print_table(rows, title="Fig. 16: inter-engine pipeline (GCN)")

    for row in rows:
        # (a) pipelining reduces execution time
        assert row["execution_time_pct_vs_no_pipeline"] < 100.0
        # (b) pipelining reduces DRAM accesses (no intermediate spill)
        assert row["dram_access_pct_vs_no_pipeline"] < 100.0
        # (c) the latency-aware pipeline has lower vertex latency than Epipe
        assert row["lpipe_vertex_latency_pct_vs_epipe"] < 100.0
        # (d) the energy-aware pipeline has lower Combination Engine energy
        assert row["epipe_combination_energy_pct_vs_lpipe"] < 100.0
