"""Table 6 -- System configurations of the three compared platforms."""

from repro.analysis import print_table
from repro.baselines import CPUConfig, GPUConfig
from repro.core import HyGCNConfig


def test_table6_system_configurations(benchmark):
    def build():
        return CPUConfig(), GPUConfig(), HyGCNConfig()

    cpu, gpu, hygcn = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        {
            "platform": "PyG-CPU",
            "compute": f"{cpu.clock_ghz} GHz @ {cpu.num_cores} cores",
            "on_chip_memory": f"{cpu.llc_bytes >> 20} MB LLC",
            "off_chip_memory": f"{cpu.peak_bandwidth_gbps} GB/s DDR4",
        },
        {
            "platform": "PyG-GPU",
            "compute": f"{gpu.clock_ghz} GHz @ {gpu.num_cores} cores",
            "on_chip_memory": "34 MB (regs + L1 + L2)",
            "off_chip_memory": f"{gpu.peak_bandwidth_gbps} GB/s HBM2",
        },
        {
            "platform": "HyGCN",
            "compute": (f"{hygcn.clock_ghz} GHz @ {hygcn.num_simd_cores} SIMD{hygcn.simd_width} cores"
                        f" + {hygcn.num_systolic_modules} systolic modules"
                        f" ({hygcn.systolic_rows}x{hygcn.systolic_cols} each)"),
            "on_chip_memory": (f"{hygcn.input_buffer_bytes >> 10} KB input, "
                               f"{hygcn.edge_buffer_bytes >> 20} MB edge, "
                               f"{hygcn.weight_buffer_bytes >> 20} MB weight, "
                               f"{hygcn.output_buffer_bytes >> 20} MB output, "
                               f"{hygcn.aggregation_buffer_bytes >> 20} MB aggregation"),
            "off_chip_memory": f"{hygcn.hbm.peak_bandwidth_gbps} GB/s HBM 1.0",
        },
    ]
    print_table(rows, title="Table 6: system configurations")

    # HyGCN's Table 6 values
    assert hygcn.num_simd_cores == 32 and hygcn.simd_width == 16
    assert hygcn.num_systolic_modules == 8
    assert hygcn.systolic_rows * hygcn.systolic_cols == 512
    assert hygcn.aggregation_buffer_bytes == 16 << 20
    assert hygcn.hbm.peak_bandwidth_gbps == 256
    # the baselines' published machine parameters
    assert cpu.num_cores == 24 and cpu.peak_bandwidth_gbps == 136.5
    assert gpu.num_cores == 5120 and gpu.peak_bandwidth_gbps == 900
    # HyGCN's total on-chip storage is far smaller than either baseline's
    hygcn_on_chip = (hygcn.input_buffer_bytes + hygcn.edge_buffer_bytes
                     + hygcn.weight_buffer_bytes + hygcn.output_buffer_bytes
                     + hygcn.aggregation_buffer_bytes)
    assert hygcn_on_chip < cpu.llc_bytes
