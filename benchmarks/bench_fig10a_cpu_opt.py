"""Fig. 10(a) -- Speedup of the interval-shard algorithm optimisation on CPU.

The graph-partitioning optimisation of Section 4.3, implemented on top of the
PyG-CPU baseline, reuses source features while a shard is cache-resident.
Expected shape: a speedup greater than 1 everywhere, averaging around 2x
(the paper reports 2.3x on average), largest on the dense multi-graph
datasets.
"""

import pytest

from repro.analysis import geometric_mean, print_table
from repro.baselines import PyGCPUModel
from repro.graphs import load_dataset
from repro.models import build_model

MODELS = ("GCN", "GSC", "GIN")
DATASETS = ("IB", "CR", "CS", "CL", "PB", "RD")


def cpu_optimization_speedups():
    plain = PyGCPUModel()
    optimized = PyGCPUModel(algorithm_optimized=True)
    rows = []
    for model_name in MODELS:
        for dataset in DATASETS:
            graph = load_dataset(dataset)
            model = build_model(model_name, input_length=graph.feature_length)
            base = plain.run(model, graph, dataset_name=dataset)
            opt = optimized.run(model, graph, dataset_name=dataset)
            rows.append({
                "model": model_name,
                "dataset": dataset,
                "speedup": round(base.total_time_s / opt.total_time_s, 2),
            })
    return rows


def test_fig10a_cpu_algorithm_optimization(benchmark):
    rows = benchmark.pedantic(cpu_optimization_speedups, rounds=1, iterations=1)
    print_table(rows, title="Fig. 10a: PyG-CPU speedup from the interval-shard optimisation")
    speedups = [r["speedup"] for r in rows]
    average = geometric_mean(speedups)
    print(f"\ngeomean speedup: {average:.2f}x (paper: 2.3x arithmetic mean)")
    assert all(s >= 1.0 for s in speedups)
    assert average > 1.1
    # the dense COLLAB graphs benefit the most from shard-level feature reuse
    by_dataset = {(r["model"], r["dataset"]): r["speedup"] for r in rows}
    assert by_dataset[("GIN", "CL")] >= by_dataset[("GIN", "CR")]
