"""Fig. 17 -- Effect of the priority-based off-chip access coordination.

Expected shape: ordering the concurrent buffer requests by the fixed priority
(edges > input features > weights > output features) and remapping addresses
so the low bits select channel/bank restores memory-level parallelism: the
paper reports a 73% execution-time saving and a 4x bandwidth-utilisation
improvement on average.
"""

from repro.analysis import memory_coordination_sweep, print_table

DATASETS = ("CR", "CS", "PB")


def test_fig17_memory_access_coordination(benchmark):
    rows = benchmark.pedantic(
        lambda: memory_coordination_sweep(datasets=DATASETS, model_name="GCN"),
        rounds=1, iterations=1,
    )
    print_table(rows, title="Fig. 17: off-chip memory access coordination (GCN)")

    for row in rows:
        # coordination always helps
        assert row["execution_time_pct_with_coordination"] < 100.0
        assert row["bandwidth_utilization_improvement"] > 1.0
    # the savings are substantial on at least one dataset (paper: 73% average)
    assert max(r["time_saving_pct"] for r in rows) > 30.0
    assert max(r["bandwidth_utilization_improvement"] for r in rows) > 1.5
