"""Table 7 -- Layout characteristics (area and power breakdown) of HyGCN.

The analytical area/power model is calibrated so the default Table 6
configuration reproduces the published totals (6.7 W, 7.8 mm^2) and per-module
percentage breakdown; the benchmark prints the full table and checks the
dominant components match the paper (Combination Engine compute dominates
power; the Coordinator's Aggregation Buffer dominates buffer area).
"""

import pytest

from repro.analysis import print_table
from repro.hw import AreaPowerModel, PAPER_TABLE7


def test_table7_area_power_breakdown(benchmark):
    model = AreaPowerModel()
    rows = benchmark.pedantic(model.breakdown_table, rounds=1, iterations=1)
    print_table(rows, title="Table 7: HyGCN power and area breakdown")
    print(f"\ntotal power: {model.total_power_w():.2f} W (paper: 6.7 W)")
    print(f"total area:  {model.total_area_mm2():.2f} mm^2 (paper: 7.8 mm^2)")

    assert model.total_power_w() == pytest.approx(6.7, rel=0.02)
    assert model.total_area_mm2() == pytest.approx(7.8, rel=0.02)
    by_module = {r["module"]: r for r in rows}
    # Combination compute dominates power (paper: 60.52%)
    assert by_module["combination_compute"]["power_pct"] == pytest.approx(60.52, abs=2.0)
    # the Coordinator's Aggregation Buffer dominates area among buffers (34.64%)
    assert by_module["coordinator_buffer"]["area_pct"] == pytest.approx(34.64, abs=2.0)
    # control overhead is small (paper: ~1.2% power, <0.45% area)
    assert by_module["control"]["power_pct"] < 2.5
    assert by_module["control"]["area_pct"] < 1.0
    # the published fractions themselves are internally consistent
    assert sum(v["power"] for v in PAPER_TABLE7.values()) == pytest.approx(1.0, abs=0.01)
