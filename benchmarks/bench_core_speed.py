"""Core-speed benchmark: array-native CSC sampler core vs the object core.

Not a paper figure -- this gates the refactor that rebuilt ``repro.graphs``
around the contiguous :class:`~repro.graphs.csc.CSCGraph` layout: the two
sampler cores are **bit-for-bit equivalent** (``tests/graphs/
test_csc_equivalence.py`` proves it differentially), so the only thing left
to demonstrate is speed.  Three metrics on a zipf-degree synthetic graph:

* ``extract`` -- cold k-hop subgraph extractions (memo defeated);
* ``fuse`` -- ``fused_size`` + ``fuse`` of a warm batch of samples, the
  overlap-aware batching hot loop;
* ``sampler+fuse`` -- the end-to-end batch-assembly pipeline the serving
  simulator runs per dispatch: extract every target, price the batch with
  ``fused_size``, materialise the fused graph.

The assertions are the acceptance gate: the CSC core must deliver >= 10x
``sampler+fuse`` and ``fuse`` throughput over the object core (extract
alone is gated at >= 3x -- its tail is the canonical-CSR sort both cores
share).  Ratios are measured in-process on identical seeded target sets,
so machine noise largely cancels.

``REPRO_BENCH_SMOKE=1`` shrinks the graph for the CI smoke job;
``REPRO_BENCH_JSON=path`` appends one JSON line with the machine-readable
numbers, which CI uploads as ``BENCH_core_speed.json``.
"""

import json
import os
import time

import numpy as np

from repro.analysis import print_table
from repro.graphs import from_csc, power_law_graph
from repro.serving.sampler import SubgraphSampler
from repro.serving.cache import LRUCache

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
NUM_VERTICES = 8_000 if SMOKE else 50_000
NUM_EDGES = 240_000 if SMOKE else 1_500_000
FEATURE_LENGTH = 16
SKEW = 1.2
NUM_HOPS = 3
FANOUT = 32
BATCH = 16 if SMOKE else 32
REPEATS = 2 if SMOKE else 3
SEED = 3

MIN_PIPELINE_SPEEDUP = 10.0
MIN_FUSE_SPEEDUP = 10.0
MIN_EXTRACT_SPEEDUP = 3.0


def _graphs():
    csc = power_law_graph(NUM_VERTICES, NUM_EDGES, FEATURE_LENGTH,
                          skew=SKEW, seed=1)
    obj = from_csc(csc)
    obj.csc  # pre-build the transpose so it is not timed
    return csc, obj


def _targets(size, seed=7):
    rng = np.random.default_rng(seed)
    return [int(t) for t in rng.integers(0, NUM_VERTICES, size=size)]


def _time_extract(graph, targets):
    """Seconds for one cold pass over ``targets`` (best of REPEATS)."""
    best = float("inf")
    for _ in range(REPEATS):
        sampler = SubgraphSampler(graph, num_hops=NUM_HOPS, fanout=FANOUT,
                                  seed=SEED, memo_size=1)
        start = time.perf_counter()
        for target in targets:
            sampler._memo = LRUCache(1)  # defeat the memo: every hit is cold
            sampler.extract(target)
        best = min(best, time.perf_counter() - start)
    return best


def _time_fuse(graph, targets):
    """Seconds for one ``fused_size`` + ``fuse`` of a warm sample batch."""
    sampler = SubgraphSampler(graph, num_hops=NUM_HOPS, fanout=FANOUT,
                              seed=SEED)
    samples = [sampler.extract(t) for t in targets]
    shapes = [(t, None, None) for t in targets]
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        sampler.fused_size(shapes)
        sampler.fuse(samples)
        best = min(best, time.perf_counter() - start)
    return best


def _time_pipeline(graph, targets):
    """Seconds for one full batch assembly: extract all, price, fuse."""
    best = float("inf")
    for _ in range(REPEATS):
        sampler = SubgraphSampler(graph, num_hops=NUM_HOPS, fanout=FANOUT,
                                  seed=SEED)
        start = time.perf_counter()
        samples = [sampler.extract(t) for t in targets]
        sampler.fused_size([(t, None, None) for t in targets])
        sampler.fuse(samples)
        best = min(best, time.perf_counter() - start)
    return best


def _maybe_dump(tag, rows):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    mode = "a" if os.path.exists(path) else "w"
    with open(path, mode) as handle:
        json.dump({tag: rows}, handle, default=float)
        handle.write("\n")


def test_core_speed(benchmark):
    csc, obj = _graphs()
    targets = _targets(BATCH)

    def measure():
        rows = []
        for metric, timer, unit in (
            ("extract", _time_extract, len(targets)),
            ("fuse", _time_fuse, 1),
            ("sampler+fuse", _time_pipeline, 1),
        ):
            t_obj = timer(obj, targets)
            t_csc = timer(csc, targets)
            rows.append({
                "metric": metric,
                "object_per_s": round(unit / t_obj, 1),
                "csc_per_s": round(unit / t_csc, 1),
                "speedup": round(t_obj / t_csc, 2),
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(rows, title=(
        f"core speed: CSC vs object "
        f"(V={NUM_VERTICES}, E={NUM_EDGES}, hops={NUM_HOPS}, "
        f"fanout={FANOUT}, batch={BATCH})"))
    _maybe_dump("core_speed", {
        "graph": {"num_vertices": NUM_VERTICES, "num_edges": NUM_EDGES,
                  "feature_length": FEATURE_LENGTH, "skew": SKEW},
        "shape": {"num_hops": NUM_HOPS, "fanout": FANOUT, "batch": BATCH},
        "rows": rows,
    })
    speedups = {row["metric"]: row["speedup"] for row in rows}
    # the acceptance gate for the array-native core refactor
    assert speedups["sampler+fuse"] >= MIN_PIPELINE_SPEEDUP, speedups
    assert speedups["fuse"] >= MIN_FUSE_SPEEDUP, speedups
    assert speedups["extract"] >= MIN_EXTRACT_SPEEDUP, speedups
