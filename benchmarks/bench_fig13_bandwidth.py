"""Fig. 13 -- DRAM bandwidth utilisation of PyG-CPU, PyG-GPU and HyGCN.

Expected shape: PyG-CPU exploits only a few percent of its DDR4 bandwidth,
PyG-GPU sits in between, and HyGCN sustains a much higher fraction of its HBM
bandwidth (the paper reports 16x better utilisation than CPU and 1.5x better
than GPU on average); HyGCN's utilisation dips on COLLAB-like datasets where
denser connections raise on-chip reuse.
"""

from repro.analysis import geometric_mean, print_table


def test_fig13_bandwidth_utilization(benchmark, comparison_grid, platform_comparison):
    benchmark.pedantic(lambda: platform_comparison.compare("GCN", "IB"),
                       rounds=1, iterations=1)
    rows = []
    for r in comparison_grid:
        utils = r.bandwidth_utilizations()
        rows.append({
            "model": r.model_name,
            "dataset": r.dataset_name,
            "pyg_cpu_pct": round(100.0 * utils["PyG-CPU"], 1),
            "pyg_gpu_pct": None if utils["PyG-GPU"] is None
            else round(100.0 * utils["PyG-GPU"], 1),
            "hygcn_pct": round(100.0 * utils["HyGCN"], 1),
        })
    print_table(rows, title="Fig. 13: DRAM bandwidth utilisation (%)")

    cpu_utils = [r["pyg_cpu_pct"] for r in rows]
    hygcn_utils = [r["hygcn_pct"] for r in rows]
    improvements = [h / c for h, c in zip(hygcn_utils, cpu_utils) if c > 0]
    print(f"\ngeomean HyGCN / PyG-CPU utilisation ratio: "
          f"{geometric_mean(improvements):.1f}x (paper: 16x)")

    # CPU utilisation is single digit everywhere.
    assert all(u < 10 for u in cpu_utils)
    # HyGCN exceeds the CPU's utilisation on every configuration.
    assert all(h > c for h, c in zip(hygcn_utils, cpu_utils))
    # HyGCN also beats the GPU on the majority of runnable configurations.
    pairs = [(r["hygcn_pct"], r["pyg_gpu_pct"]) for r in rows if r["pyg_gpu_pct"]]
    assert sum(1 for h, g in pairs if h > g) >= 0.6 * len(pairs)
