"""Multi-tenant serving benchmark: WFQ weight sweep and isolation cost.

Not a paper figure -- this exercises the tenancy layer the way
``bench_serving.py`` exercises the single-tenant fleet: one table showing how
deficit-round-robin service shares track the configured weights under
saturation, and one quantifying the cross-tenant p99 inflation against
run-alone baselines.  The assertions pin the fairness contract (shares within
10% of weights when every tenant is backlogged) and request conservation.
"""

from repro.analysis import print_table
from repro.serving import FleetConfig, TenantConfig, run_multi_tenant

NUM_REQUESTS = 200
NUM_CHIPS = 2
WEIGHT_PAIRS = ((1.0, 1.0), (2.0, 1.0), (4.0, 1.0))


def _tenant(name, weight, **overrides):
    """A deliberately cheap, saturating tenant (all arrivals at ~t=0)."""
    spec = dict(name=name, model="GCN", dataset="IB", weight=weight,
                num_requests=NUM_REQUESTS, rate_rps=1e9, num_hops=1,
                fanout=4, batch_policy="size", max_batch_size=16,
                cache_size=0)
    spec.update(overrides)
    return TenantConfig(**spec)


def _run_pair(w_a, w_b, include_solo=False):
    tenants = [_tenant("alpha", w_a), _tenant("beta", w_b)]
    return run_multi_tenant(tenants, FleetConfig(num_chips=NUM_CHIPS),
                            include_isolation_baseline=include_solo)


def test_wfq_weight_sweep(benchmark):
    reports = benchmark.pedantic(
        lambda: {w: _run_pair(*w) for w in WEIGHT_PAIRS},
        rounds=1, iterations=1,
    )
    rows = []
    for (w_a, w_b), report in reports.items():
        share_a = report.service_share("alpha")
        rows.append({
            "weights": f"{w_a:g}:{w_b:g}",
            "alpha_weight_share_pct": round(100 * report.weight_share("alpha"), 2),
            "alpha_service_share_pct": round(100 * share_a, 2),
            "beta_service_share_pct": round(100 * report.service_share("beta"), 2),
            "alpha_p99_us": round(
                report.reports["alpha"].p99_latency_s * 1e6, 2),
            "beta_p99_us": round(report.reports["beta"].p99_latency_s * 1e6, 2),
        })
        # every request completes exactly once, under every weighting
        assert report.completed == 2 * NUM_REQUESTS
        for rep in report.reports.values():
            assert rep.completed == NUM_REQUESTS
        # saturated equal demand: contended shares track the weights
        want = report.weight_share("alpha")
        assert abs(share_a - want) <= 0.1 * max(want, 1e-9)
    print_table(rows, title="multi-tenant: WFQ weight sweep (saturated)")
    # heavier weight -> monotonically larger service share
    shares = [reports[w].service_share("alpha") for w in WEIGHT_PAIRS]
    assert shares == sorted(shares)


def test_isolation_baseline(benchmark):
    report = benchmark.pedantic(
        lambda: _run_pair(2.0, 1.0, include_solo=True),
        rounds=1, iterations=1,
    )
    print_table(report.isolation_table(),
                title="multi-tenant: shared fleet vs. running alone")
    for name in report.tenants:
        inflation = report.p99_inflation(name)
        assert inflation is not None and inflation > 0
        # sharing a saturated fleet cannot beat running alone at the median
        shared = report.reports[name]
        solo = report.solo[name]
        assert shared.p50_latency_s >= 0.5 * solo.p50_latency_s
