"""Fig. 18 -- Scalability exploration (GraphSage model).

Three sweeps:

* (a)-(c) sampling factor: sampling more aggressively increases sparsity, so
  the sparsity eliminator removes more row loads and DRAM access / execution
  time drop (most visibly on Pubmed, the largest of the three datasets).
* (d)-(f) Aggregation Buffer capacity: a larger buffer means wider intervals,
  fewer passes over the source features and therefore less DRAM traffic and
  time, but larger windows leave more residual sparsity.
* (g) systolic module granularity: with the total array count fixed, fewer /
  taller modules force larger vertex groups to be assembled before combining
  (higher vertex latency) but reuse the streamed weights across more vertices
  (lower Combination Engine energy).
"""

from repro.analysis import (
    aggregation_buffer_sweep,
    print_table,
    sampling_factor_sweep,
    systolic_module_sweep,
)

DATASETS = ("CR", "CS", "PB")


def test_fig18abc_sampling_factor(benchmark):
    rows = benchmark.pedantic(
        lambda: sampling_factor_sweep(datasets=DATASETS, factors=(1, 2, 4, 8, 16)),
        rounds=1, iterations=1,
    )
    print_table(rows, title="Fig. 18a-c: sampling-factor sweep (GSC)")
    for dataset in DATASETS:
        series = [r for r in rows if r["dataset"] == dataset]
        first, last = series[0], series[-1]
        assert first["sampling_factor"] == 1
        # more sampling -> no more DRAM traffic or time than the unsampled run
        assert last["dram_access_pct"] <= first["dram_access_pct"] + 1e-6
        assert last["execution_time_pct"] <= first["execution_time_pct"] + 1e-6
        # more sampling -> at least as much eliminated sparsity
        assert last["sparsity_reduction_pct"] >= first["sparsity_reduction_pct"] - 1e-6


def test_fig18def_aggregation_buffer_capacity(benchmark):
    rows = benchmark.pedantic(
        lambda: aggregation_buffer_sweep(datasets=DATASETS,
                                         capacities_mb=(2, 4, 8, 16, 32)),
        rounds=1, iterations=1,
    )
    print_table(rows, title="Fig. 18d-f: Aggregation Buffer capacity sweep (GSC)")
    for dataset in DATASETS:
        series = [r for r in rows if r["dataset"] == dataset]
        smallest, largest = series[0], series[-1]
        # a larger buffer never increases execution time or DRAM traffic
        assert largest["execution_time_pct"] <= smallest["execution_time_pct"] + 1e-6
        assert largest["dram_access_pct"] <= smallest["dram_access_pct"] + 1e-6
        # but the wider windows cannot eliminate more sparsity than narrow ones
        assert largest["sparsity_reduction_pct"] <= smallest["sparsity_reduction_pct"] + 1e-6


def test_fig18g_systolic_module_granularity(benchmark):
    rows = benchmark.pedantic(
        lambda: systolic_module_sweep(datasets=DATASETS,
                                      module_counts=(32, 16, 8, 4, 2, 1)),
        rounds=1, iterations=1,
    )
    print_table(rows, title="Fig. 18g: systolic module granularity sweep (GSC)")
    for dataset in DATASETS:
        series = [r for r in rows if r["dataset"] == dataset]
        finest, coarsest = series[0], series[-1]
        # coarser modules: vertex latency up, combination energy down
        assert coarsest["vertex_latency_pct"] >= finest["vertex_latency_pct"]
        assert coarsest["combination_energy_pct"] <= finest["combination_energy_pct"]
