#!/usr/bin/env python
"""Docs honesty checks: markdown links resolve, CLI docs cover the CLI.

Run from anywhere: ``python tools/check_docs.py``.  No dependencies beyond
the repo's own (numpy, via importing the package).  Two checks:

1. every intra-repo markdown link in README.md and docs/**.md points at a
   file that exists (external http(s)/mailto links are skipped, anchors are
   stripped);
2. ``python -m repro --help`` and every subcommand's ``--help`` exit 0, and
   every subcommand is mentioned in docs/cli.md — so the CLI page cannot
   silently drift from the argparse surface;
3. every long option of ``repro serve`` and ``repro trace-report`` (read
   from the argparse parser, not from help text) appears in docs/cli.md —
   flag-level coverage, so adding a flag without documenting it fails CI;
4. every name in the serving-policy registries (batch policies, dispatch
   policies, autoscale policies, chip-shape presets, shape mixes,
   scale-shape policies, dataset partitioners — imported from the
   package, not hard-coded)
   appears in docs/cli.md — registry-level coverage, so adding a policy
   without documenting it fails CI.

Exit code 0 when everything passes, 1 with a per-failure listing otherwise.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — excluding images; target captured up to the first ')'.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
#: ``` fenced blocks, whose content is illustrative, not linkable.
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files() -> list:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return [f for f in files if f.exists()]


def check_links() -> list:
    """Return a list of 'file: broken link' failure strings."""
    failures = []
    for md in markdown_files():
        text = _FENCE_RE.sub("", md.read_text())
        for target in _LINK_RE.findall(text):
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                failures.append(f"{md.relative_to(REPO_ROOT)}: broken link "
                                f"-> {target}")
    return failures


def _subparser_map() -> dict:
    """``{subcommand: argparse subparser}`` read from the parser itself."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.__main__ import _build_parser  # noqa: E402
    parser = _build_parser()
    for action in parser._subparsers._group_actions:
        return dict(action.choices)
    return {}


def cli_subcommands() -> list:
    """The CLI's subcommand names, read from the argparse parser itself."""
    return sorted(_subparser_map())


#: Subcommands held to flag-level docs coverage (the ones with flags that
#: tune behaviour; ``sweep``/``info`` only take positional choices).
FLAG_CHECKED_SUBCOMMANDS = ("serve", "trace-report", "trace-stats",
                            "loadtest")


def subcommand_cli_flags(name: str) -> list:
    """Every long option string of ``repro <name>``, from the parser."""
    sub = _subparser_map().get(name)
    if sub is None:
        return []
    flags = {opt for action in sub._actions
             for opt in action.option_strings if opt.startswith("--")}
    return sorted(flags)


def check_flag_coverage(name: str, flags: list) -> list:
    """Every flag of ``repro <name>`` must appear verbatim in docs/cli.md.

    Matches on the flag followed by a non-word character so ``--admission``
    is not satisfied by a mention of ``--admission-rate``.
    """
    cli_md = REPO_ROOT / "docs" / "cli.md"
    if not cli_md.exists():
        return ["docs/cli.md is missing"]
    text = cli_md.read_text()
    failures = []
    for flag in flags:
        if not re.search(re.escape(flag) + r"(?![-\w])", text):
            failures.append(f"docs/cli.md does not document {name} flag "
                            f"{flag}")
    return failures


def check_cli_help(subcommands: list) -> list:
    """Run --help for the CLI and every subcommand; collect failures."""
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    invocations = [[]] + [[name] for name in subcommands]
    for extra in invocations:
        cmd = [sys.executable, "-m", "repro", *extra, "--help"]
        proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                              cwd=REPO_ROOT)
        if proc.returncode != 0:
            failures.append(f"{' '.join(cmd)} exited {proc.returncode}: "
                            f"{proc.stderr.strip()[:200]}")
    return failures


def policy_registries() -> dict:
    """``{registry name: [policy names]}`` imported from the package itself.

    Kept as imports (not a hard-coded list) so a registry gaining a name is
    immediately held to the documentation bar.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.serving import (  # noqa: E402
        ALL_BATCH_POLICIES,
        AUTOSCALE_POLICIES,
        DISPATCH_POLICIES,
        INVALIDATION_POLICIES,
        PARTITIONERS,
        SCALE_SHAPE_POLICIES,
        SHAPE_MIXES,
        SHAPE_PRESETS,
    )
    return {
        "batch policy": list(ALL_BATCH_POLICIES),
        "dispatch policy": list(DISPATCH_POLICIES),
        "autoscale policy": list(AUTOSCALE_POLICIES),
        "chip-shape preset": sorted(SHAPE_PRESETS),
        "shape mix": sorted(SHAPE_MIXES),
        "scale-shape policy": list(SCALE_SHAPE_POLICIES),
        "partitioner": sorted(PARTITIONERS),
        "invalidation policy": list(INVALIDATION_POLICIES),
    }


def check_registry_coverage(registries: dict) -> list:
    """Every registry name must appear verbatim in docs/cli.md.

    Word-boundary matched (``agg`` must not be satisfied by ``agg_heavy``)
    so the CLI page names every selectable policy, preset and mix.
    """
    cli_md = REPO_ROOT / "docs" / "cli.md"
    if not cli_md.exists():
        return ["docs/cli.md is missing"]
    text = cli_md.read_text()
    failures = []
    for registry, names in registries.items():
        for name in names:
            if not re.search(r"(?<![-\w])" + re.escape(name) + r"(?![-\w])",
                             text):
                failures.append(f"docs/cli.md does not document {registry} "
                                f"{name!r}")
    return failures


def check_cli_docs(subcommands: list) -> list:
    """Every subcommand must be documented in docs/cli.md."""
    cli_md = REPO_ROOT / "docs" / "cli.md"
    if not cli_md.exists():
        return ["docs/cli.md is missing"]
    text = cli_md.read_text()
    return [f"docs/cli.md does not mention subcommand {name!r}"
            for name in subcommands if f"repro {name}" not in text]


def main() -> int:
    failures = check_links()
    subcommands = cli_subcommands()
    if not subcommands:
        failures.append("could not enumerate CLI subcommands")
    failures += check_cli_help(subcommands)
    failures += check_cli_docs(subcommands)
    num_flags = 0
    for name in FLAG_CHECKED_SUBCOMMANDS:
        flags = subcommand_cli_flags(name)
        if not flags:
            failures.append(f"could not enumerate `repro {name}` flags")
        failures += check_flag_coverage(name, flags)
        num_flags += len(flags)
    registries = policy_registries()
    failures += check_registry_coverage(registries)
    if failures:
        print(f"docs check: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    checked = len(markdown_files())
    names = sum(len(v) for v in registries.values())
    print(f"docs check: OK ({checked} markdown files, "
          f"{len(subcommands)} CLI subcommands, {num_flags} documented "
          f"flags, {names} registry names)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
