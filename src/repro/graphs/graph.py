"""Core graph data structures used throughout the HyGCN reproduction.

The accelerator consumes graphs in compressed sparse column (CSC) format --
the paper's interval/shard partitioning (Section 4.3.2) is defined directly on
the CSC layout -- while the workload models and baselines mostly iterate over
the compressed sparse row (CSR) view.  :class:`Graph` keeps both views in sync
and exposes the per-vertex feature matrix ``X`` that GCN layers operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CSRMatrix", "CSCMatrix", "Graph", "GraphStats"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for a graph, mirroring the columns of Table 4."""

    num_vertices: int
    num_edges: int
    feature_length: int
    avg_degree: float
    max_degree: int
    storage_bytes: int

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary (useful for reports)."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "feature_length": self.feature_length,
            "avg_degree": self.avg_degree,
            "max_degree": self.max_degree,
            "storage_bytes": self.storage_bytes,
        }


class CSRMatrix:
    """A minimal compressed-sparse-row adjacency structure.

    Row ``v`` of the matrix stores the *outgoing* neighbours of vertex ``v``.
    Only the structure (indptr/indices) is stored; GCN adjacency matrices are
    binary so no value array is needed.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, num_cols: int):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(indices) and (indices.min() < 0 or indices.max() >= num_cols):
            raise ValueError("column indices out of range")
        self.indptr = indptr
        self.indices = indices
        self.num_rows = len(indptr) - 1
        self.num_cols = int(num_cols)

    @property
    def nnz(self) -> int:
        """Number of stored edges."""
        return int(len(self.indices))

    def row(self, i: int) -> np.ndarray:
        """Return the column indices of row ``i``."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def degree(self, i: int) -> int:
        """Return the number of non-zeros in row ``i``."""
        return int(self.indptr[i + 1] - self.indptr[i])

    def degrees(self) -> np.ndarray:
        """Return the per-row non-zero counts."""
        return np.diff(self.indptr)

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Iterate over ``(row_index, column_indices)`` pairs."""
        for i in range(self.num_rows):
            yield i, self.row(i)

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense binary array (small graphs only)."""
        dense = np.zeros((self.num_rows, self.num_cols), dtype=np.int8)
        for i in range(self.num_rows):
            dense[i, self.row(i)] = 1
        return dense

    def transpose(self) -> "CSRMatrix":
        """Return the transposed structure (rows become columns)."""
        counts = np.zeros(self.num_cols + 1, dtype=np.int64)
        if self.nnz:
            np.add.at(counts, self.indices + 1, 1)
        indptr = np.cumsum(counts)
        if self.nnz == 0:
            return CSRMatrix(indptr, np.empty(0, dtype=np.int64), self.num_rows)
        row_of_edge = np.repeat(np.arange(self.num_rows), np.diff(self.indptr))
        order = np.argsort(self.indices, kind="stable")
        return CSRMatrix(indptr, row_of_edge[order], self.num_rows)

    @classmethod
    def from_arrays(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        num_rows: int,
        num_cols: Optional[int] = None,
        deduplicate: bool = True,
    ) -> "CSRMatrix":
        """Trusted vectorized constructor from parallel ``rows``/``cols`` arrays.

        Produces exactly the structure :meth:`from_edges` would for the same
        edge multiset (same lexicographic canonical order, same optional
        dedup), but skips the per-call bounds validation -- callers (the
        array-native sampler cores) guarantee ``0 <= rows < num_rows`` and
        ``0 <= cols < num_cols`` by construction.  The canonical
        ``(row, col)`` sort runs on the fused key ``row * num_cols + col``
        (one unstable single-key sort, roughly twice as fast as the
        two-pass stable ``lexsort``, and order-equivalent because the key
        map is a strictly monotone bijection); ``lexsort`` remains as the
        fallback for matrices wide enough to overflow the fused key.
        """
        num_cols = num_rows if num_cols is None else num_cols
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if num_cols and num_rows <= (2 ** 62) // num_cols:
            key = np.sort(rows * num_cols + cols)
            if deduplicate and len(key):
                keep = np.ones(len(key), dtype=bool)
                keep[1:] = key[1:] != key[:-1]
                key = key[keep]
            rows = key // num_cols
            cols = key - rows * num_cols
        else:
            order = np.lexsort((cols, rows))
            rows, cols = rows[order], cols[order]
            if deduplicate and len(rows):
                keep = np.ones(len(rows), dtype=bool)
                keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
                rows, cols = rows[keep], cols[keep]
        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        if len(rows):
            np.cumsum(np.bincount(rows + 1, minlength=num_rows + 1),
                      out=indptr)
        self = cls.__new__(cls)
        self.indptr = indptr
        self.indices = cols
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        return self

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        num_rows: int,
        num_cols: Optional[int] = None,
        deduplicate: bool = True,
    ) -> "CSRMatrix":
        """Build a CSR structure from an iterable of ``(row, col)`` pairs."""
        num_cols = num_rows if num_cols is None else num_cols
        if isinstance(edges, np.ndarray):
            edge_array = np.asarray(edges, dtype=np.int64)
        else:
            edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            return cls(np.zeros(num_rows + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64), num_cols)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be (row, col) pairs")
        rows, cols = edge_array[:, 0], edge_array[:, 1]
        if rows.min() < 0 or rows.max() >= num_rows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= num_cols:
            raise ValueError("column index out of range")
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        if deduplicate:
            keep = np.ones(len(rows), dtype=bool)
            keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            rows, cols = rows[keep], cols[keep]
        counts = np.zeros(num_rows + 1, dtype=np.int64)
        np.add.at(counts, rows + 1, 1)
        indptr = np.cumsum(counts)
        return cls(indptr, cols, num_cols)


class CSCMatrix:
    """Compressed-sparse-column view: column ``v`` stores the in-neighbours of ``v``.

    This is the input format HyGCN consumes directly (Section 4.3.2): no
    explicit preprocessing is needed to derive vertex intervals and edge
    shards because columns are already grouped by destination vertex.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, num_rows: int):
        self._csr = CSRMatrix(indptr, indices, num_rows)

    @property
    def indptr(self) -> np.ndarray:
        return self._csr.indptr

    @property
    def indices(self) -> np.ndarray:
        return self._csr.indices

    @property
    def num_cols(self) -> int:
        return self._csr.num_rows

    @property
    def num_rows(self) -> int:
        return self._csr.num_cols

    @property
    def nnz(self) -> int:
        return self._csr.nnz

    def column(self, v: int) -> np.ndarray:
        """Return the in-neighbour (source row) indices of column ``v``."""
        return self._csr.row(v)

    def in_degree(self, v: int) -> int:
        """Return the number of in-neighbours of vertex ``v``."""
        return self._csr.degree(v)

    def in_degrees(self) -> np.ndarray:
        """Return the in-degree of every vertex."""
        return self._csr.degrees()

    def to_dense(self) -> np.ndarray:
        """Dense ``(num_rows, num_cols)`` adjacency with ``A[src, dst] = 1``."""
        return self._csr.to_dense().T

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSCMatrix":
        """Derive the CSC view of a CSR adjacency (transpose of structure)."""
        transposed = csr.transpose()
        return cls(transposed.indptr, transposed.indices, csr.num_cols)


class Graph:
    """An attributed graph: adjacency structure plus a vertex feature matrix.

    Parameters
    ----------
    csr:
        Out-neighbour adjacency.  For the undirected graphs used in the paper
        the structure is symmetric, so CSR rows double as in-neighbour lists.
    features:
        ``(num_vertices, feature_length)`` float matrix ``X``.
    name:
        Optional dataset name for reporting.

    The class attribute :attr:`is_csc` is the samplers' dispatch flag: the
    array-native subclass :class:`~repro.graphs.csc.CSCGraph` flips it to
    ``True``, which routes k-hop extraction, fusion and edge sampling onto
    the vectorized ``colptr``/``row`` paths (see ``docs/core.md``).
    """

    #: True only for CSC-backed graphs (:class:`~repro.graphs.csc.CSCGraph`).
    is_csc = False

    def __init__(self, csr: CSRMatrix, features: np.ndarray, name: str = "graph"):
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if features.shape[0] != csr.num_rows:
            raise ValueError(
                f"feature rows ({features.shape[0]}) do not match vertex count "
                f"({csr.num_rows})"
            )
        self.csr = csr
        self.features = features
        self.name = name
        self._csc: Optional[CSCMatrix] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edge_list(
        cls,
        edges: Sequence[Tuple[int, int]],
        num_vertices: int,
        features: Optional[np.ndarray] = None,
        feature_length: int = 16,
        undirected: bool = True,
        name: str = "graph",
        seed: int = 0,
    ) -> "Graph":
        """Build a graph from an edge list, optionally symmetrising it."""
        edge_array = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if undirected and edge_array.size:
            edge_array = np.vstack([edge_array, edge_array[:, ::-1]])
        csr = CSRMatrix.from_edges(edge_array, num_vertices)
        if features is None:
            rng = np.random.default_rng(seed)
            features = rng.standard_normal((num_vertices, feature_length))
        return cls(csr, features, name=name)

    # ------------------------------------------------------------------ #
    # Views and basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return self.csr.num_rows

    @property
    def num_edges(self) -> int:
        return self.csr.nnz

    @property
    def feature_length(self) -> int:
        return int(self.features.shape[1])

    @property
    def csc(self) -> CSCMatrix:
        """Lazily derived CSC view (destination-major adjacency)."""
        if self._csc is None:
            self._csc = CSCMatrix.from_csr(self.csr)
        return self._csc

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbours of vertex ``v`` (== in-neighbours for undirected graphs)."""
        return self.csr.row(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbours of vertex ``v`` derived from the CSC view."""
        return self.csc.column(v)

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        return self.csr.degree(v)

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return self.csr.degrees()

    def with_features(self, features: np.ndarray, name: Optional[str] = None) -> "Graph":
        """Return a new graph sharing this structure but with different features."""
        return Graph(self.csr, features, name=name or self.name)

    # ------------------------------------------------------------------ #
    # Statistics / storage accounting
    # ------------------------------------------------------------------ #
    def storage_bytes(self, feature_bytes: int = 4, index_bytes: int = 4) -> int:
        """Approximate on-disk/in-memory footprint, matching Table 4 accounting.

        Storage is dominated by the feature matrix (``V x F`` values) plus the
        edge array; the paper reports single-precision features.
        """
        feature_storage = self.num_vertices * self.feature_length * feature_bytes
        edge_storage = self.num_edges * index_bytes
        offset_storage = (self.num_vertices + 1) * index_bytes
        return int(feature_storage + edge_storage + offset_storage)

    def stats(self) -> GraphStats:
        """Compute :class:`GraphStats` for this graph."""
        degs = self.degrees()
        return GraphStats(
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            feature_length=self.feature_length,
            avg_degree=float(degs.mean()) if len(degs) else 0.0,
            max_degree=int(degs.max()) if len(degs) else 0,
            storage_bytes=self.storage_bytes(),
        )

    def adjacency_dense(self) -> np.ndarray:
        """Dense adjacency matrix ``A`` with ``A[u, v] = 1`` for edge (u, v)."""
        return self.csr.to_dense().astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, feature_length={self.feature_length})"
        )


def merge_graphs(graphs: Sequence[Graph], name: str = "merged") -> Graph:
    """Assemble several graphs into one disjoint union.

    The paper assembles 128 randomly selected small graphs into one large graph
    before processing multi-graph datasets (Section 5.1); this helper performs
    that assembly.
    """
    if not graphs:
        raise ValueError("merge_graphs requires at least one graph")
    feature_length = graphs[0].feature_length
    for g in graphs:
        if g.feature_length != feature_length:
            raise ValueError("all graphs must share the same feature length")
    offsets = np.cumsum([0] + [g.num_vertices for g in graphs])
    edges = []
    for offset, g in zip(offsets[:-1], graphs):
        for v in range(g.num_vertices):
            for u in g.neighbors(v):
                edges.append((v + offset, int(u) + offset))
    features = np.vstack([g.features for g in graphs])
    csr = CSRMatrix.from_edges(edges, int(offsets[-1]))
    return Graph(csr, features, name=name)
