"""Interval-shard graph partitioning (Section 4.3.2, Fig. 5a/b).

HyGCN groups destination vertices into *intervals* and source vertices into
*shards*: the interval width is bounded by the Aggregation Buffer capacity
(intermediate results of the whole interval must stay on chip) and the shard
height by the Input Buffer capacity (the source features of one shard must fit
on chip).  The aggregation of an interval then walks its shards one by one,
reusing the loaded source features across all destination vertices of the
interval (Algorithm 2).

The partitioner works directly on the CSC view of the graph -- the paper
stresses that no explicit preprocessing is required because intervals/shards
are implicit in the CSC layout.

This module also hosts the **dataset partitioners** behind multi-chip
serving (:mod:`repro.serving.sharding`, the Fig. 18 scalability story taken
online): :func:`hash_partition` / :func:`locality_partition` assign every
vertex an owning shard, and :func:`build_shard_plan` derives the
:class:`ShardPlan` -- per-shard ownership, ghost/halo vertex sets and
edge-cut statistics -- from any ownership array with pure CSC array
arithmetic (one ``repeat`` + one comparison over the edge list).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .graph import Graph

__all__ = ["VertexInterval", "EdgeShard", "IntervalShardPartition",
           "partition_graph", "ShardPlan", "build_shard_plan",
           "hash_owner", "hash_partition", "locality_partition"]


@dataclass(frozen=True)
class VertexInterval:
    """A contiguous range ``[start, stop)`` of destination vertex ids."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def vertices(self) -> np.ndarray:
        """Vertex ids covered by this interval."""
        return np.arange(self.start, self.stop)

    def __contains__(self, vertex: int) -> bool:
        return self.start <= vertex < self.stop


@dataclass
class EdgeShard:
    """The block of edges whose sources lie in ``[src_start, src_stop)`` and
    whose destinations lie in the owning interval.

    ``edges`` stores ``(src, dst)`` pairs.  A shard with no edges is still a
    meaningful object for the static partition -- the dynamic sparsity
    eliminator is what skips it at runtime.
    """

    interval_index: int
    src_start: int
    src_stop: int
    edges: np.ndarray = field(repr=False)

    @property
    def height(self) -> int:
        """Number of source rows the shard spans."""
        return self.src_stop - self.src_start

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def is_empty(self) -> bool:
        return self.num_edges == 0

    def source_vertices(self) -> np.ndarray:
        """Distinct source vertex ids that actually appear in the shard."""
        if self.is_empty:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.edges[:, 0])

    def density(self, interval_size: int) -> float:
        """Fraction of the shard's cells occupied by edges."""
        cells = self.height * interval_size
        return self.num_edges / cells if cells else 0.0


class IntervalShardPartition:
    """The full static partition: a grid of shards indexed by (interval, row-block)."""

    def __init__(
        self,
        graph: Graph,
        intervals: Sequence[VertexInterval],
        shards: Sequence[Sequence[EdgeShard]],
        interval_size: int,
        shard_height: int,
    ):
        self.graph = graph
        self.intervals = list(intervals)
        self._shards = [list(row) for row in shards]
        self.interval_size = interval_size
        self.shard_height = shard_height

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    @property
    def num_row_blocks(self) -> int:
        return len(self._shards[0]) if self._shards else 0

    def shards_for_interval(self, interval_index: int) -> List[EdgeShard]:
        """All shards (including empty ones) feeding one destination interval."""
        return self._shards[interval_index]

    def nonempty_shards_for_interval(self, interval_index: int) -> List[EdgeShard]:
        """Shards that contain at least one edge."""
        return [s for s in self._shards[interval_index] if not s.is_empty]

    def iter_shards(self) -> Iterator[EdgeShard]:
        """Iterate over every shard in interval-major order."""
        for row in self._shards:
            for shard in row:
                yield shard

    def total_edges(self) -> int:
        """Total edges across all shards (== graph edge count)."""
        return sum(s.num_edges for s in self.iter_shards())

    def occupancy(self) -> float:
        """Fraction of shard cells that hold an edge (global sparsity measure)."""
        cells = sum(s.height * self.intervals[s.interval_index].size
                    for s in self.iter_shards())
        return self.total_edges() / cells if cells else 0.0


def partition_graph(
    graph: Graph,
    interval_size: int,
    shard_height: int,
) -> IntervalShardPartition:
    """Partition ``graph`` into vertex intervals and edge shards.

    Parameters
    ----------
    graph:
        The input graph; its CSC view supplies destination-major edges.
    interval_size:
        Number of destination vertices per interval (shard width).  In the
        accelerator this is derived from the Aggregation Buffer capacity.
    shard_height:
        Number of source vertices per shard row-block, derived from the Input
        Buffer capacity.
    """
    if interval_size < 1 or shard_height < 1:
        raise ValueError("interval_size and shard_height must be >= 1")
    n = graph.num_vertices
    csc = graph.csc
    intervals = [
        VertexInterval(index=i, start=start, stop=min(start + interval_size, n))
        for i, start in enumerate(range(0, n, interval_size))
    ]
    num_row_blocks = (n + shard_height - 1) // shard_height
    indptr, indices = csc.indptr, csc.indices
    shards: List[List[EdgeShard]] = []
    for interval in intervals:
        # Gather all (src, dst) edges with destination inside the interval.
        # CSC columns for a contiguous destination range are one contiguous
        # slice of the index array.
        lo_ptr, hi_ptr = indptr[interval.start], indptr[interval.stop]
        src_all = indices[lo_ptr:hi_ptr]
        col_lengths = np.diff(indptr[interval.start:interval.stop + 1])
        dst_all = np.repeat(np.arange(interval.start, interval.stop), col_lengths)
        # Sort by source row so each shard row-block is one contiguous slice.
        order = np.argsort(src_all, kind="stable")
        src_sorted, dst_sorted = src_all[order], dst_all[order]
        block_bounds = np.searchsorted(
            src_sorted, np.arange(0, (num_row_blocks + 1) * shard_height, shard_height)
        )
        row_blocks: List[EdgeShard] = []
        for block in range(num_row_blocks):
            lo, hi = block * shard_height, min((block + 1) * shard_height, n)
            b0, b1 = block_bounds[block], block_bounds[block + 1]
            edges = np.stack([src_sorted[b0:b1], dst_sorted[b0:b1]], axis=1) if b1 > b0 \
                else np.empty((0, 2), dtype=np.int64)
            row_blocks.append(EdgeShard(
                interval_index=interval.index,
                src_start=lo,
                src_stop=hi,
                edges=edges,
            ))
        shards.append(row_blocks)
    return IntervalShardPartition(graph, intervals, shards, interval_size, shard_height)


# --------------------------------------------------------------------------- #
# Dataset partitioning across a chip group (multi-chip serving)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, eq=False)
class ShardPlan:
    """Vertex ownership of one graph across a group of ``num_shards`` chips.

    ``owner[v]`` is the shard that holds vertex ``v``'s features in its
    chip's on-board memory; ``halo[s]`` is shard ``s``'s **ghost set** --
    the sorted vertex ids that are sources of in-edges into ``s``-owned
    destinations but are owned elsewhere, i.e. exactly the features shard
    ``s`` must fetch over the interconnect when a neighbourhood it
    aggregates crosses the cut.  ``edge_cut`` counts the directed edges
    whose endpoints live on different shards; minimising it is the whole
    point of the ``locality`` partitioner.

    The plan is static data derived once per (graph, partitioner, shards,
    seed); :mod:`repro.serving.sharding` memoises it across runs.
    """

    num_shards: int
    partitioner: str
    seed: int
    owner: np.ndarray = field(repr=False)
    halo: Tuple[np.ndarray, ...] = field(repr=False)
    shard_sizes: np.ndarray = field(repr=False)
    edge_cut: int = 0
    num_edges: int = 0

    @property
    def num_vertices(self) -> int:
        return int(self.owner.shape[0])

    @property
    def edge_cut_fraction(self) -> float:
        """Fraction of directed edges crossing shard boundaries."""
        return self.edge_cut / self.num_edges if self.num_edges else 0.0

    @property
    def halo_vertices(self) -> int:
        """Total ghost-set size summed over shards."""
        return int(sum(h.size for h in self.halo))

    @property
    def size_imbalance(self) -> float:
        """Largest shard's owned-vertex count over the mean (1.0 = balanced)."""
        if self.num_shards == 0 or self.num_vertices == 0:
            return 0.0
        mean = self.num_vertices / self.num_shards
        return float(self.shard_sizes.max()) / mean if mean else 0.0

    def owned(self, shard: int) -> np.ndarray:
        """Sorted vertex ids owned by ``shard``."""
        return np.flatnonzero(self.owner == shard)


def build_shard_plan(graph: Graph, owner: np.ndarray, *,
                     partitioner: str = "", seed: int = 0) -> ShardPlan:
    """Derive the :class:`ShardPlan` for an ownership array over ``graph``.

    ``owner`` must assign every vertex exactly one shard id in
    ``[0, max(owner) + 1)``; the number of shards is ``owner.max() + 1``
    unless the array is empty (one shard).  Edge-cut and the per-shard halo
    sets come straight from the CSC arrays: with ``dst_owner`` the owner of
    each edge's destination (``repeat`` of ``owner`` by in-degree) and
    ``src_owner = owner[indices]``, the cut edges are
    ``src_owner != dst_owner`` and shard ``s``'s halo is the unique sources
    of cut edges with ``dst_owner == s``.
    """
    owner = np.ascontiguousarray(owner, dtype=np.int64)
    if owner.shape != (graph.num_vertices,):
        raise ValueError(
            f"owner must have shape ({graph.num_vertices},), got {owner.shape}")
    num_shards = int(owner.max()) + 1 if owner.size else 1
    if owner.size and owner.min() < 0:
        raise ValueError("owner shard ids must be >= 0")
    csc = graph.csc
    indptr = np.asarray(csc.indptr)
    indices = np.asarray(csc.indices)
    if owner.size:
        dst_owner = np.repeat(owner, np.diff(indptr))
        src_owner = owner[indices]
        cut = src_owner != dst_owner
        edge_cut = int(np.count_nonzero(cut))
        halo = tuple(np.unique(indices[cut & (dst_owner == s)])
                     for s in range(num_shards))
        shard_sizes = np.bincount(owner, minlength=num_shards).astype(np.int64)
    else:
        edge_cut = 0
        halo = tuple(np.empty(0, dtype=np.int64) for _ in range(num_shards))
        shard_sizes = np.zeros(num_shards, dtype=np.int64)
    return ShardPlan(num_shards=num_shards, partitioner=partitioner, seed=seed,
                     owner=owner, halo=halo, shard_sizes=shard_sizes,
                     edge_cut=edge_cut, num_edges=int(indices.shape[0]))


def hash_owner(ids: np.ndarray, num_shards: int, seed: int = 0) -> np.ndarray:
    """Splitmix64 ownership of arbitrary vertex ids (the hash rule itself).

    Factored out of :func:`hash_partition` so streaming runs can assign
    newly inserted vertices the exact owner a from-scratch repartition
    would: the rule is a pure function of ``(id, num_shards, seed)``.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    ids = np.asarray(ids, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = ids + np.uint64(seed & 0xFFFFFFFFFFFFFFFF) \
            * np.uint64(0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return (x % np.uint64(num_shards)).astype(np.int64)


def hash_partition(graph: Graph, num_shards: int, seed: int = 0) -> np.ndarray:
    """Seeded multiplicative-hash ownership (the baseline partitioner).

    Every vertex id is mixed through a splitmix64-style avalanche keyed by
    ``seed`` and reduced modulo ``num_shards``, so ownership is uniform,
    seed-dependent and completely locality-oblivious -- the edge-cut of a
    random assignment, which is what ``locality`` is measured against.
    """
    return hash_owner(np.arange(graph.num_vertices, dtype=np.uint64),
                      num_shards, seed)


def locality_partition(graph: Graph, num_shards: int, seed: int = 0) -> np.ndarray:
    """Greedy streaming edge-cut minimiser (LDG, the METIS-style heuristic).

    Vertices are visited in descending total-degree order (hubs first, ties
    on the lower id) and each is placed on the shard maximising::

        |already-placed neighbours on s| * (1 - size(s) / capacity)

    with ``capacity = ceil(V / num_shards)`` -- the linear penalty is what
    keeps shard sizes balanced while neighbours cluster (Stanton & Kliot's
    linear deterministic greedy).  A vertex with no placed neighbours (or
    only zero scores) takes the emptiest shard, lowest id first.  The
    result is deterministic for any ``seed`` (the parameter exists for
    registry uniformity; the greedy consumes no randomness).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = graph.num_vertices
    if num_shards == 1 or n == 0:
        return np.zeros(n, dtype=np.int64)
    csc = graph.csc
    csr = graph.csr
    in_ptr, in_idx = np.asarray(csc.indptr), np.asarray(csc.indices)
    out_ptr, out_idx = np.asarray(csr.indptr), np.asarray(csr.indices)
    degree = np.diff(in_ptr) + np.diff(out_ptr)
    order = np.argsort(-degree, kind="stable")
    capacity = -(-n // num_shards)
    owner = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_shards, dtype=np.int64)
    for v in order:
        neighbours = np.concatenate((in_idx[in_ptr[v]:in_ptr[v + 1]],
                                     out_idx[out_ptr[v]:out_ptr[v + 1]]))
        placed = owner[neighbours]
        placed = placed[placed >= 0]
        open_shards = sizes < capacity
        best = -1
        if placed.size:
            counts = np.bincount(placed, minlength=num_shards)
            score = counts * (1.0 - sizes / capacity)
            score[~open_shards] = -1.0
            best = int(np.argmax(score))
            if score[best] <= 0.0:
                best = -1
        if best < 0:
            # no placed neighbours anywhere open: emptiest open shard wins
            masked = np.where(open_shards, sizes, n + 1)
            best = int(np.argmin(masked))
        owner[v] = best
        sizes[best] += 1
    return owner
