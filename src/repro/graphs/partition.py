"""Interval-shard graph partitioning (Section 4.3.2, Fig. 5a/b).

HyGCN groups destination vertices into *intervals* and source vertices into
*shards*: the interval width is bounded by the Aggregation Buffer capacity
(intermediate results of the whole interval must stay on chip) and the shard
height by the Input Buffer capacity (the source features of one shard must fit
on chip).  The aggregation of an interval then walks its shards one by one,
reusing the loaded source features across all destination vertices of the
interval (Algorithm 2).

The partitioner works directly on the CSC view of the graph -- the paper
stresses that no explicit preprocessing is required because intervals/shards
are implicit in the CSC layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import numpy as np

from .graph import Graph

__all__ = ["VertexInterval", "EdgeShard", "IntervalShardPartition", "partition_graph"]


@dataclass(frozen=True)
class VertexInterval:
    """A contiguous range ``[start, stop)`` of destination vertex ids."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def vertices(self) -> np.ndarray:
        """Vertex ids covered by this interval."""
        return np.arange(self.start, self.stop)

    def __contains__(self, vertex: int) -> bool:
        return self.start <= vertex < self.stop


@dataclass
class EdgeShard:
    """The block of edges whose sources lie in ``[src_start, src_stop)`` and
    whose destinations lie in the owning interval.

    ``edges`` stores ``(src, dst)`` pairs.  A shard with no edges is still a
    meaningful object for the static partition -- the dynamic sparsity
    eliminator is what skips it at runtime.
    """

    interval_index: int
    src_start: int
    src_stop: int
    edges: np.ndarray = field(repr=False)

    @property
    def height(self) -> int:
        """Number of source rows the shard spans."""
        return self.src_stop - self.src_start

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def is_empty(self) -> bool:
        return self.num_edges == 0

    def source_vertices(self) -> np.ndarray:
        """Distinct source vertex ids that actually appear in the shard."""
        if self.is_empty:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.edges[:, 0])

    def density(self, interval_size: int) -> float:
        """Fraction of the shard's cells occupied by edges."""
        cells = self.height * interval_size
        return self.num_edges / cells if cells else 0.0


class IntervalShardPartition:
    """The full static partition: a grid of shards indexed by (interval, row-block)."""

    def __init__(
        self,
        graph: Graph,
        intervals: Sequence[VertexInterval],
        shards: Sequence[Sequence[EdgeShard]],
        interval_size: int,
        shard_height: int,
    ):
        self.graph = graph
        self.intervals = list(intervals)
        self._shards = [list(row) for row in shards]
        self.interval_size = interval_size
        self.shard_height = shard_height

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    @property
    def num_row_blocks(self) -> int:
        return len(self._shards[0]) if self._shards else 0

    def shards_for_interval(self, interval_index: int) -> List[EdgeShard]:
        """All shards (including empty ones) feeding one destination interval."""
        return self._shards[interval_index]

    def nonempty_shards_for_interval(self, interval_index: int) -> List[EdgeShard]:
        """Shards that contain at least one edge."""
        return [s for s in self._shards[interval_index] if not s.is_empty]

    def iter_shards(self) -> Iterator[EdgeShard]:
        """Iterate over every shard in interval-major order."""
        for row in self._shards:
            for shard in row:
                yield shard

    def total_edges(self) -> int:
        """Total edges across all shards (== graph edge count)."""
        return sum(s.num_edges for s in self.iter_shards())

    def occupancy(self) -> float:
        """Fraction of shard cells that hold an edge (global sparsity measure)."""
        cells = sum(s.height * self.intervals[s.interval_index].size
                    for s in self.iter_shards())
        return self.total_edges() / cells if cells else 0.0


def partition_graph(
    graph: Graph,
    interval_size: int,
    shard_height: int,
) -> IntervalShardPartition:
    """Partition ``graph`` into vertex intervals and edge shards.

    Parameters
    ----------
    graph:
        The input graph; its CSC view supplies destination-major edges.
    interval_size:
        Number of destination vertices per interval (shard width).  In the
        accelerator this is derived from the Aggregation Buffer capacity.
    shard_height:
        Number of source vertices per shard row-block, derived from the Input
        Buffer capacity.
    """
    if interval_size < 1 or shard_height < 1:
        raise ValueError("interval_size and shard_height must be >= 1")
    n = graph.num_vertices
    csc = graph.csc
    intervals = [
        VertexInterval(index=i, start=start, stop=min(start + interval_size, n))
        for i, start in enumerate(range(0, n, interval_size))
    ]
    num_row_blocks = (n + shard_height - 1) // shard_height
    indptr, indices = csc.indptr, csc.indices
    shards: List[List[EdgeShard]] = []
    for interval in intervals:
        # Gather all (src, dst) edges with destination inside the interval.
        # CSC columns for a contiguous destination range are one contiguous
        # slice of the index array.
        lo_ptr, hi_ptr = indptr[interval.start], indptr[interval.stop]
        src_all = indices[lo_ptr:hi_ptr]
        col_lengths = np.diff(indptr[interval.start:interval.stop + 1])
        dst_all = np.repeat(np.arange(interval.start, interval.stop), col_lengths)
        # Sort by source row so each shard row-block is one contiguous slice.
        order = np.argsort(src_all, kind="stable")
        src_sorted, dst_sorted = src_all[order], dst_all[order]
        block_bounds = np.searchsorted(
            src_sorted, np.arange(0, (num_row_blocks + 1) * shard_height, shard_height)
        )
        row_blocks: List[EdgeShard] = []
        for block in range(num_row_blocks):
            lo, hi = block * shard_height, min((block + 1) * shard_height, n)
            b0, b1 = block_bounds[block], block_bounds[block + 1]
            edges = np.stack([src_sorted[b0:b1], dst_sorted[b0:b1]], axis=1) if b1 > b0 \
                else np.empty((0, 2), dtype=np.int64)
            row_blocks.append(EdgeShard(
                interval_index=interval.index,
                src_start=lo,
                src_stop=hi,
                edges=edges,
            ))
        shards.append(row_blocks)
    return IntervalShardPartition(graph, intervals, shards, interval_size, shard_height)
