"""Graph persistence.

Experiments that sweep many configurations over the same synthetic dataset
should not regenerate it every time; this module saves/loads :class:`Graph`
objects as compressed ``.npz`` archives (structure + features) and exports the
adjacency as an edge-list text file for interoperability with external graph
tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .graph import CSRMatrix, Graph

__all__ = ["save_graph", "load_graph", "export_edge_list", "import_edge_list"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: PathLike) -> Path:
    """Serialise ``graph`` (structure, features, name) to a ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    metadata = json.dumps({
        "version": _FORMAT_VERSION,
        "name": graph.name,
        "num_vertices": graph.num_vertices,
    })
    np.savez_compressed(
        path,
        indptr=graph.csr.indptr,
        indices=graph.csr.indices,
        features=graph.features,
        metadata=np.frombuffer(metadata.encode("utf-8"), dtype=np.uint8),
    )
    # np.savez appends .npz if missing; normalise the returned path
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: PathLike) -> Graph:
    """Load a graph previously written by :func:`save_graph`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        if metadata.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph archive version: {metadata.get('version')}")
        csr = CSRMatrix(archive["indptr"], archive["indices"],
                        num_cols=metadata["num_vertices"])
        return Graph(csr, archive["features"], name=metadata["name"])


def export_edge_list(graph: Graph, path: PathLike, header: bool = True) -> Path:
    """Write the adjacency as a whitespace-separated ``src dst`` text file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                         f"{graph.num_edges} edges\n")
        for src in range(graph.num_vertices):
            for dst in graph.neighbors(src):
                handle.write(f"{src} {int(dst)}\n")
    return path


def import_edge_list(path: PathLike, num_vertices: int = None,
                     feature_length: int = 16, undirected: bool = False,
                     name: str = None, seed: int = 0) -> Graph:
    """Read an edge-list text file (``src dst`` per line, ``#`` comments)."""
    path = Path(path)
    edges = []
    max_vertex = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            src_str, dst_str = line.split()[:2]
            src, dst = int(src_str), int(dst_str)
            edges.append((src, dst))
            max_vertex = max(max_vertex, src, dst)
    if num_vertices is None:
        num_vertices = max_vertex + 1
    return Graph.from_edge_list(
        edges, num_vertices, feature_length=feature_length,
        undirected=undirected, name=name or path.stem, seed=seed,
    )
