"""Streaming mutation overlay on the array-native CSC core.

:class:`DeltaGraph` makes a :class:`~repro.graphs.csc.CSCGraph` mutable
without giving up the flat-array layout the samplers' vectorized paths run
on.  The base arrays are treated as immutable (dataset graphs are memoised
and shared across runs -- see :func:`repro.graphs.datasets.load_dataset`);
mutations accumulate in append-only delta logs:

* **edge insertions** -- ``(src, dst)`` pairs appended to a pending log
  (an in-edge of ``dst``, exactly the CSC column orientation);
* **vertex insertions** -- new feature rows appended past the base vertex
  range (new vertices start isolated; edges referencing them arrive as
  ordinary edge insertions);
* **feature writes** -- per-vertex feature-row overrides.

Every applied mutation bumps the monotonically increasing :attr:`version`
and records the affected vertex in a dirty log, which consumers (the
serving sampler's memo invalidation, the consistency tracker) query with
:meth:`dirty_since`.

Reads go through a lazily materialised **snapshot**: flat ``colptr`` /
``row`` / ``features`` arrays with the deltas merged in canonical CSC
order (sources ascending within each column, matching what
:class:`~repro.graphs.graph.CSRMatrix` construction produces), cached
until the next mutation.  Because the snapshot is bit-for-bit identical to
the arrays of a ``CSCGraph`` rebuilt from scratch at the same version,
both sampler cores run unmodified -- and provably equivalently -- on a
mutating graph (``tests/serving/test_streaming_consistency.py``).

:meth:`compact` promotes the current snapshot to the new base and clears
the delta logs (the version is unchanged: compaction is a representation
change, not a mutation).  ``compact_every`` auto-compacts after that many
pending mutations, bounding snapshot rebuild cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .csc import CSCGraph
from .graph import CSCMatrix, CSRMatrix, Graph

__all__ = ["DeltaGraph"]


class DeltaGraph(Graph):
    """A mutable CSC-dispatch-compatible overlay on a base :class:`CSCGraph`.

    Parameters
    ----------
    base:
        The graph to overlay.  Any :class:`~repro.graphs.graph.Graph` is
        accepted; non-CSC bases are converted once.  The base's arrays are
        never written to.
    compact_every:
        Auto-compact after this many pending (uncompacted) mutations;
        ``0`` disables auto-compaction (call :meth:`compact` manually).
    """

    is_csc = True
    #: mutating content under a stable object id would silently satisfy the
    #: identity-keyed workload memo; the version-aware key in
    #: :func:`repro.models.model_zoo.workloads_for` handles that, but the
    #: flag keeps pre-version consumers honest too.
    memoize_workloads = True

    def __init__(self, base: Graph, compact_every: int = 0):
        if not isinstance(base, CSCGraph):
            from .csc import to_csc
            base = to_csc(base)
        if compact_every < 0:
            raise ValueError("compact_every must be >= 0")
        self.name = base.name
        self.compact_every = int(compact_every)
        #: monotonically increasing mutation counter (0 == the base graph).
        self.version = 0
        #: number of :meth:`compact` promotions performed so far.
        self.compactions = 0
        self._base_colptr = base.colptr
        self._base_row = base.row
        self._base_features = base.features
        self._num_vertices = base.num_vertices
        # pending (uncompacted) deltas
        self._pending_src: List[int] = []
        self._pending_dst: List[int] = []
        self._pending_set: set = set()
        self._new_features: List[np.ndarray] = []
        self._feature_overlay: Dict[int, np.ndarray] = {}
        # (version, vertex) per applied mutation, for targeted invalidation
        self._dirty_log: List[Tuple[int, int]] = []
        #: version of the last feature write (or creation) per vertex;
        #: vertices absent from the map carry their base features.
        self._feature_versions: Dict[int, int] = {}
        self._snapshot: Optional[Tuple[np.ndarray, np.ndarray,
                                       np.ndarray]] = None
        self._csr_cache: Optional[CSRMatrix] = None
        self._csc_cache: Optional[CSCMatrix] = None

    # ------------------------------------------------------------------ #
    # Mutation API
    # ------------------------------------------------------------------ #
    def add_edge(self, src: int, dst: int) -> bool:
        """Insert the in-edge ``src -> dst``.

        Returns ``False`` (a no-op, no version bump) when the edge already
        exists -- the canonical CSC layout is deduplicated, so a duplicate
        insert must not change the materialised arrays.
        """
        src, dst = int(src), int(dst)
        if not (0 <= src < self._num_vertices
                and 0 <= dst < self._num_vertices):
            raise ValueError(f"edge ({src}, {dst}) outside the "
                             f"{self._num_vertices}-vertex graph")
        if self.has_edge(src, dst):
            return False
        self._pending_src.append(src)
        self._pending_dst.append(dst)
        self._pending_set.add((src, dst))
        self._mutated(dst)
        return True

    def add_vertex(self, features: np.ndarray) -> int:
        """Append a new (initially isolated) vertex; returns its id."""
        row = np.ascontiguousarray(features, dtype=np.float64).reshape(-1)
        if row.size != self.feature_length:
            raise ValueError(
                f"feature row of length {row.size} does not match the "
                f"graph's feature length {self.feature_length}")
        vertex = self._num_vertices
        self._num_vertices += 1
        self._new_features.append(row)
        self._mutated(vertex)
        self._feature_versions[vertex] = self.version
        return vertex

    def write_features(self, vertex: int, features: np.ndarray) -> None:
        """Overwrite one vertex's feature row."""
        vertex = int(vertex)
        if not 0 <= vertex < self._num_vertices:
            raise ValueError(f"vertex {vertex} outside the "
                             f"{self._num_vertices}-vertex graph")
        row = np.ascontiguousarray(features, dtype=np.float64).reshape(-1)
        if row.size != self.feature_length:
            raise ValueError(
                f"feature row of length {row.size} does not match the "
                f"graph's feature length {self.feature_length}")
        base_vertices = len(self._base_colptr) - 1
        if vertex >= base_vertices:
            self._new_features[vertex - base_vertices] = row
        else:
            self._feature_overlay[vertex] = row
        self._mutated(vertex)
        self._feature_versions[vertex] = self.version

    def compact(self) -> None:
        """Promote the current snapshot to the new base and clear the logs.

        A representation change only: the version, dirty log and
        feature-version stamps are untouched, so consumers cannot tell a
        compacted graph from an uncompacted one (asserted by the
        differential suite).
        """
        colptr, row, features = self._materialize()
        self._base_colptr = colptr
        self._base_row = row
        self._base_features = features
        self._pending_src = []
        self._pending_dst = []
        self._pending_set = set()
        self._new_features = []
        self._feature_overlay = {}
        self.compactions += 1

    # ------------------------------------------------------------------ #
    # Change tracking
    # ------------------------------------------------------------------ #
    def dirty_since(self, version: int) -> np.ndarray:
        """Vertices whose in-neighbourhood or features changed after
        ``version`` (ascending, deduplicated)."""
        touched = {vertex for ver, vertex in self._dirty_log
                   if ver > version}
        return np.array(sorted(touched), dtype=np.int64)

    def feature_version(self, vertex: int) -> int:
        """Version of the last feature write to ``vertex`` (0 = base)."""
        return self._feature_versions.get(int(vertex), 0)

    @property
    def pending_mutations(self) -> int:
        """Mutations applied since the last compaction."""
        return (len(self._pending_src) + len(self._new_features)
                + len(self._feature_overlay))

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the in-edge ``src -> dst`` exists (base or pending).

        Checked against the base arrays and the pending set directly, so
        membership tests never force a snapshot rebuild.
        """
        base_vertices = len(self._base_colptr) - 1
        if dst < base_vertices:
            segment = self._base_row[
                self._base_colptr[dst]:self._base_colptr[dst + 1]]
            i = int(np.searchsorted(segment, src))
            if i < segment.size and int(segment[i]) == src:
                return True
        return (src, dst) in self._pending_set

    def _mutated(self, vertex: int) -> None:
        self.version += 1
        self._dirty_log.append((self.version, vertex))
        self._snapshot = None
        self._csr_cache = None
        self._csc_cache = None
        if self.compact_every and self.pending_mutations >= self.compact_every:
            self.compact()

    # ------------------------------------------------------------------ #
    # Snapshot materialisation
    # ------------------------------------------------------------------ #
    def _materialize(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._snapshot is not None:
            return self._snapshot
        base_colptr = self._base_colptr
        base_row = self._base_row
        base_vertices = len(base_colptr) - 1
        num_vertices = self._num_vertices
        if not self._pending_src and num_vertices == base_vertices:
            colptr, row = base_colptr, base_row
        else:
            degrees = np.zeros(num_vertices, dtype=np.int64)
            degrees[:base_vertices] = np.diff(base_colptr)
            pending_dst = np.asarray(self._pending_dst, dtype=np.int64)
            pending_src = np.asarray(self._pending_src, dtype=np.int64)
            if pending_dst.size:
                degrees += np.bincount(pending_dst, minlength=num_vertices)
            colptr = np.zeros(num_vertices + 1, dtype=np.int64)
            np.cumsum(degrees, out=colptr[1:])
            row = np.empty(int(colptr[-1]), dtype=np.int64)
            if base_row.size:
                dst_of_base = np.repeat(np.arange(base_vertices),
                                        np.diff(base_colptr))
                shifted = colptr[dst_of_base] + (
                    np.arange(base_row.size) - base_colptr[dst_of_base])
                row[shifted] = base_row
            # merge pending sources column by column (few columns are
            # touched between compactions), keeping the canonical
            # ascending order a from-scratch rebuild would produce
            for dst in np.unique(pending_dst):
                start, end = int(colptr[dst]), int(colptr[dst + 1])
                base_deg = 0
                if dst < base_vertices:
                    base_deg = int(base_colptr[dst + 1] - base_colptr[dst])
                row[start + base_deg:end] = pending_src[pending_dst == dst]
                row[start:end] = np.sort(row[start:end])
        if not self._new_features and not self._feature_overlay:
            features = self._base_features
        else:
            features = np.empty((num_vertices, self.feature_length),
                                dtype=np.float64)
            features[:base_vertices] = self._base_features
            for i, extra in enumerate(self._new_features):
                features[base_vertices + i] = extra
            for vertex, override in self._feature_overlay.items():
                features[vertex] = override
        self._snapshot = (colptr, row, features)
        return self._snapshot

    # ------------------------------------------------------------------ #
    # Graph / CSCGraph surface
    # ------------------------------------------------------------------ #
    @property
    def colptr(self) -> np.ndarray:
        return self._materialize()[0]

    @property
    def row(self) -> np.ndarray:
        return self._materialize()[1]

    @property
    def features(self) -> np.ndarray:
        return self._materialize()[2]

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return int(self._base_row.size + len(self._pending_src))

    @property
    def feature_length(self) -> int:
        return int(self._base_features.shape[1])

    @property
    def csr(self) -> CSRMatrix:
        if self._csr_cache is None:
            colptr, row, _ = self._materialize()
            self._csr_cache = CSCMatrix(
                colptr, row, self._num_vertices)._csr.transpose()
        return self._csr_cache

    @property
    def csc(self) -> CSCMatrix:
        if self._csc_cache is None:
            colptr, row, _ = self._materialize()
            self._csc_cache = CSCMatrix(colptr, row, self._num_vertices)
        return self._csc_cache

    def in_neighbors(self, v: int) -> np.ndarray:
        colptr, row, _ = self._materialize()
        return row[colptr[v]:colptr[v + 1]]

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.colptr)

    def as_csc(self) -> CSCGraph:
        """A frozen :class:`CSCGraph` of the current snapshot (copies the
        arrays, so later mutations cannot alias into it)."""
        colptr, row, features = self._materialize()
        return CSCGraph(colptr.copy(), row.copy(), features.copy(),
                        name=self.name)

    def with_features(self, features: np.ndarray,
                      name: Optional[str] = None) -> CSCGraph:
        """Frozen snapshot structure with a different feature matrix."""
        colptr, row, _ = self._materialize()
        return CSCGraph(colptr, row, features, name=name or self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, version={self.version}, "
            f"pending={self.pending_mutations})"
        )
