"""Benchmark dataset registry (Table 4 of the paper).

The registry describes the six evaluation datasets -- IMDB-BIN, Cora,
Citeseer, COLLAB, Pubmed and Reddit -- and materialises synthetic stand-ins
with matching statistics.  Reddit and COLLAB are scaled down (documented via
:attr:`DatasetSpec.scale_factor`) because a pure-Python transaction-level
simulator cannot sweep a 115-million-edge graph in CI; the scaling preserves
average degree and feature length, which are the properties the accelerator's
behaviour depends on.  The per-experiment effect of the scaling is recorded in
``EXPERIMENTS.md``.

Datasets come back CSC-backed (:class:`~repro.graphs.csc.CSCGraph`, via the
generators): structure and features are identical to the historical
object-core build, but the samplers' vectorized array paths engage on them
by default.  ``from_csc(load_dataset(...))`` recovers the object-core twin.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional

from .generators import community_graph, power_law_graph
from .graph import Graph

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names", "dataset_table"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one benchmark dataset.

    Attributes
    ----------
    name / abbrev:
        Full and short names as used in the paper's figures (e.g. ``CR``).
    num_vertices / num_edges / feature_length:
        The published Table 4 statistics (full-scale, before any scaling).
    kind:
        ``"citation"`` (community structured), ``"social"`` (power-law) or
        ``"collaboration"``; selects the synthetic generator.
    multi_graph:
        Whether the dataset is a collection of small graphs (IMDB-BIN,
        COLLAB) that the paper assembles into one large graph before running.
    scale_factor:
        Down-scaling applied to the synthetic stand-in (1 = full size).
    """

    name: str
    abbrev: str
    num_vertices: int
    num_edges: int
    feature_length: int
    kind: str
    multi_graph: bool = False
    scale_factor: int = 1

    @property
    def scaled_vertices(self) -> int:
        return max(2, self.num_vertices // self.scale_factor)

    @property
    def scaled_edges(self) -> int:
        return max(2, self.num_edges // self.scale_factor)

    @property
    def avg_degree(self) -> float:
        return self.num_edges / self.num_vertices

    @property
    def storage_mb(self) -> float:
        """Approximate full-scale storage in MB (4-byte features + edges)."""
        feature_bytes = self.num_vertices * self.feature_length * 4
        edge_bytes = self.num_edges * 4
        return (feature_bytes + edge_bytes) / (1 << 20)


#: Table 4 of the paper.  Edge counts are the published (directed) counts.
DATASETS: Dict[str, DatasetSpec] = {
    "IB": DatasetSpec("IMDB-BIN", "IB", 2_647, 28_624, 136, "social",
                      multi_graph=True),
    "CR": DatasetSpec("Cora", "CR", 2_708, 10_556, 1_433, "citation"),
    "CS": DatasetSpec("Citeseer", "CS", 3_327, 9_104, 3_703, "citation"),
    "CL": DatasetSpec("COLLAB", "CL", 12_087, 1_446_010, 492, "collaboration",
                      multi_graph=True, scale_factor=8),
    "PB": DatasetSpec("Pubmed", "PB", 19_717, 88_648, 500, "citation",
                      scale_factor=2),
    "RD": DatasetSpec("Reddit", "RD", 232_965, 114_615_892, 602, "social",
                      scale_factor=128),
}

_GENERATORS: Dict[str, Callable[..., Graph]] = {
    "citation": community_graph,
    "social": power_law_graph,
    "collaboration": power_law_graph,
}


def dataset_names() -> list:
    """Return the dataset abbreviations in the order the paper plots them."""
    return list(DATASETS.keys())


@lru_cache(maxsize=32)
def load_dataset(
    abbrev: str,
    seed: int = 0,
    scale_factor: Optional[int] = None,
    feature_length: Optional[int] = None,
) -> Graph:
    """Materialise a synthetic stand-in for one of the Table 4 datasets.

    Results are cached (datasets are immutable by convention) so benchmark
    sweeps that revisit the same dataset do not pay the generation cost again.

    Parameters
    ----------
    abbrev:
        Dataset abbreviation (``IB``, ``CR``, ``CS``, ``CL``, ``PB``, ``RD``).
    seed:
        RNG seed so experiments are reproducible.
    scale_factor:
        Override the registry's default down-scaling (1 = full published size).
    feature_length:
        Override the feature length (used by a few unit tests).
    """
    if abbrev not in DATASETS:
        raise KeyError(f"unknown dataset {abbrev!r}; known: {sorted(DATASETS)}")
    spec = DATASETS[abbrev]
    factor = spec.scale_factor if scale_factor is None else max(1, scale_factor)
    num_vertices = max(2, spec.num_vertices // factor)
    num_edges = max(2, spec.num_edges // factor)
    flen = spec.feature_length if feature_length is None else feature_length
    generator = _GENERATORS[spec.kind]
    kwargs = {}
    if spec.kind == "citation":
        kwargs["num_communities"] = max(4, num_vertices // 256)
    else:
        kwargs["skew"] = 1.3 if spec.abbrev in ("CL", "RD") else 1.1
    graph = generator(
        num_vertices, num_edges, flen, seed=seed, name=spec.name, **kwargs
    )
    return graph


def dataset_table() -> list:
    """Return Table 4 as a list of row dictionaries (full-scale statistics)."""
    rows = []
    for spec in DATASETS.values():
        rows.append({
            "dataset": f"{spec.name} ({spec.abbrev})",
            "num_vertices": spec.num_vertices,
            "feature_length": spec.feature_length,
            "num_edges": spec.num_edges,
            "storage_mb": round(spec.storage_mb, 1),
        })
    return rows
