"""Array-native CSC graph core.

:class:`CSCGraph` is the contiguous-array layout the hot paths run on: one
``colptr`` offset array, one ``row`` index array (together the in-neighbour
CSC adjacency -- column ``v``'s slice ``row[colptr[v]:colptr[v+1]]`` is the
in-neighbour list of ``v``) and one C-contiguous feature matrix.  It is the
layout both reference stacks converge on (PyG ``sampler/utils.py::to_csc``,
DGL ``csc_sampling_graph.py``) because k-hop sampling over it is pure array
slicing: no per-vertex Python objects, no dict unions.

Memory layout::

    colptr   int64[V + 1]   monotone, colptr[0] == 0, colptr[V] == E
    row      int64[E]       source vertex of each in-edge, grouped by dst
    features float64[V, F]  one contiguous matrix, row v = vertex v

``CSCGraph`` subclasses :class:`~repro.graphs.graph.Graph`, so every
existing consumer (models, cycle model, partitioner, serving) works
unchanged; the samplers (:mod:`repro.graphs.sampling`,
:mod:`repro.serving.sampler`) check :attr:`Graph.is_csc` and dispatch to
vectorized array paths that are **bit-for-bit equivalent** to the object
paths -- same seeded phase-stream consumption, same local-id assignment,
same canonical CSR output -- which is what the differential suite in
``tests/graphs/test_csc_equivalence.py`` proves.

Conversion shims:

* :func:`to_csc` -- wrap any :class:`Graph` into a :class:`CSCGraph`
  (idempotent; shares the feature matrix, derives the CSC arrays once);
* :func:`from_csc` -- unwrap back to a plain object-core :class:`Graph`
  sharing the same structure and features (the differential tests' twin).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .graph import CSCMatrix, CSRMatrix, Graph

__all__ = ["CSCGraph", "to_csc", "from_csc", "graphs_equal"]


class CSCGraph(Graph):
    """A :class:`Graph` whose primary storage is the in-neighbour CSC arrays.

    Parameters
    ----------
    colptr / row:
        In-neighbour CSC adjacency: ``row[colptr[v]:colptr[v+1]]`` are the
        source vertices of ``v``'s in-edges.  Both are forced to contiguous
        ``int64`` arrays.
    features:
        ``(num_vertices, feature_length)`` matrix, forced C-contiguous.
    csr:
        Optional pre-built out-neighbour CSR view.  When omitted it is
        derived by transposing the CSC structure (exactly what
        :attr:`Graph.csc` does in the other direction).
    """

    is_csc = True

    def __init__(self, colptr: np.ndarray, row: np.ndarray,
                 features: np.ndarray, name: str = "graph",
                 csr: Optional[CSRMatrix] = None):
        self.colptr = np.ascontiguousarray(colptr, dtype=np.int64)
        self.row = np.ascontiguousarray(row, dtype=np.int64)
        num_vertices = len(self.colptr) - 1
        csc = CSCMatrix(self.colptr, self.row, num_vertices)
        if csr is None:
            # CSC is the CSR of the transposed structure: transpose back
            csr = csc._csr.transpose()
        super().__init__(csr, np.ascontiguousarray(features), name=name)
        self._csc = csc

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbours of ``v`` as a direct slice of the ``row`` array."""
        return self.row[self.colptr[v]:self.colptr[v + 1]]

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (``diff(colptr)``)."""
        return np.diff(self.colptr)

    def with_features(self, features: np.ndarray,
                      name: Optional[str] = None) -> "CSCGraph":
        """Same structure, different features -- stays CSC-backed."""
        return CSCGraph(self.colptr, self.row, features,
                        name=name or self.name, csr=self.csr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSCGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, feature_length={self.feature_length})"
        )


def to_csc(graph: Graph) -> CSCGraph:
    """Return a CSC-backed view of ``graph`` (idempotent).

    The feature matrix is shared (made contiguous if it was not); the CSC
    arrays come from the graph's own :attr:`~repro.graphs.graph.Graph.csc`
    view, so structure is preserved exactly and the conversion costs one
    transpose at most.
    """
    if isinstance(graph, CSCGraph):
        return graph
    csc = graph.csc
    return CSCGraph(csc.indptr, csc.indices, graph.features,
                    name=graph.name, csr=graph.csr)


def from_csc(graph: Graph) -> Graph:
    """Return a plain object-core :class:`Graph` twin of ``graph``.

    Shares the CSR structure and feature matrix; only the type (and hence
    which sampler code path runs) changes.  ``from_csc(to_csc(g))`` is
    structurally identical to ``g``.
    """
    if not isinstance(graph, CSCGraph):
        return graph
    return Graph(graph.csr, graph.features, name=graph.name)


def graphs_equal(a: Graph, b: Graph) -> bool:
    """Structural + feature equality (layout-agnostic).

    Two graphs are equal when their canonical CSR structure, vertex count
    and feature matrices match exactly; whether either side is CSC-backed
    is irrelevant.  This is the equality the round-trip property tests and
    the differential suite assert.
    """
    return (
        a.num_vertices == b.num_vertices
        and a.num_edges == b.num_edges
        and np.array_equal(a.csr.indptr, b.csr.indptr)
        and np.array_equal(a.csr.indices, b.csr.indices)
        and a.features.shape == b.features.shape
        and np.array_equal(a.features, b.features)
    )
