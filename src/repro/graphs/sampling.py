"""Neighbour sampling (the paper's ``Sample`` function, Eq. 2).

GraphSage samples a fixed number of neighbours per vertex; the scalability
study in Section 5.4 instead sweeps a *sampling factor* ``f`` so that only
``1/f`` of each vertex's edges are kept.  Both styles are provided here, plus
a helper that materialises the sampled graph so the rest of the stack (the
partitioner, the engines, the baselines) can stay sampling-agnostic.

The Sampler hardware unit supports two index sources (Section 4.2): uniform
random selection generated at runtime, and a predefined interval-strided
selection read from memory.  ``strategy`` selects between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .graph import CSRMatrix, Graph

__all__ = ["SamplingConfig", "NeighborSampler", "sample_graph"]


@dataclass(frozen=True)
class SamplingConfig:
    """Configuration of the neighbour sampler.

    Exactly one of ``max_neighbors`` (GraphSage-style fixed fan-in) or
    ``sampling_factor`` (keep ``1/factor`` of the edges, Section 5.4) should
    be meaningful; ``sampling_factor=1`` and ``max_neighbors=None`` means no
    sampling.
    """

    max_neighbors: Optional[int] = None
    sampling_factor: int = 1
    strategy: str = "uniform"  # "uniform" (runtime random) or "strided" (predefined)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sampling_factor < 1:
            raise ValueError("sampling_factor must be >= 1")
        if self.max_neighbors is not None and self.max_neighbors < 1:
            raise ValueError("max_neighbors must be >= 1 when set")
        if self.strategy not in ("uniform", "strided"):
            raise ValueError("strategy must be 'uniform' or 'strided'")

    @property
    def enabled(self) -> bool:
        """Whether any sampling is applied at all."""
        return self.max_neighbors is not None or self.sampling_factor > 1


class NeighborSampler:
    """Samples each vertex's neighbour list according to a :class:`SamplingConfig`."""

    def __init__(self, config: SamplingConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def sample_neighbors(self, neighbors: np.ndarray) -> np.ndarray:
        """Return the sampled subset of one vertex's neighbour array."""
        cfg = self.config
        if not cfg.enabled or len(neighbors) == 0:
            return neighbors
        keep = len(neighbors)
        if cfg.sampling_factor > 1:
            keep = max(1, len(neighbors) // cfg.sampling_factor)
        if cfg.max_neighbors is not None:
            keep = min(keep, cfg.max_neighbors)
        if keep >= len(neighbors):
            return neighbors
        if cfg.strategy == "uniform":
            idx = self._rng.choice(len(neighbors), size=keep, replace=False)
            idx.sort()
        else:
            # Predefined interval-strided indices, as when sampling indices are
            # precomputed and streamed from off-chip memory.
            idx = np.linspace(0, len(neighbors) - 1, num=keep).astype(np.int64)
            idx = np.unique(idx)
        return neighbors[idx]

    def sample_graph(self, graph: Graph) -> Graph:
        """Materialise the sampled graph (structure only; features are shared).

        The sampled adjacency is directed from the surviving in-neighbours to
        each destination vertex, mirroring how the hardware Sampler filters the
        edge list of each aggregating vertex.
        """
        if not self.config.enabled:
            return graph
        if getattr(graph, "is_csc", False):
            return self._sample_graph_arrays(graph)
        edges = []
        for v in range(graph.num_vertices):
            kept = self.sample_neighbors(graph.in_neighbors(v))
            edges.extend((int(u), v) for u in kept)
        csr = CSRMatrix.from_edges(edges, graph.num_vertices, deduplicate=False) \
            if edges else CSRMatrix.from_edges([], graph.num_vertices)
        return Graph(csr, graph.features, name=f"{graph.name}[sampled]")

    def _sample_graph_arrays(self, graph: Graph) -> Graph:
        """Array-core :meth:`sample_graph` for CSC-backed graphs.

        Bit-for-bit equivalent to the object path: the shared RNG is
        consulted once per vertex whose kept-count is below its in-degree
        (in ascending vertex order, exactly when the object path's
        :meth:`sample_neighbors` draws), while every fully-kept neighbour
        list is gathered in one vectorized shot.  The edge multiset is then
        canonicalised by the same
        :meth:`~repro.graphs.graph.CSRMatrix.from_edges` sort the object
        path ends in, so the sampled structure is identical.  The result
        stays CSC-backed so downstream samplers keep their array paths.
        """
        from .csc import to_csc

        cfg = self.config
        colptr, row = graph.colptr, graph.row
        num_vertices = graph.num_vertices
        degs = np.diff(colptr)
        keep = degs.copy()
        if cfg.sampling_factor > 1:
            keep = np.maximum(1, degs // cfg.sampling_factor)
        if cfg.max_neighbors is not None:
            keep = np.minimum(keep, cfg.max_neighbors)
        # zero-degree vertices keep their (empty) lists untouched
        keep = np.where(degs == 0, 0, keep)
        sampled = np.nonzero(keep < degs)[0]
        full_counts = np.where(keep < degs, 0, degs)
        total_full = int(full_counts.sum())
        excl = np.zeros(num_vertices, dtype=np.int64)
        if num_vertices:
            excl[1:] = np.cumsum(full_counts[:-1])
        rel = np.arange(total_full) - np.repeat(excl, full_counts)
        src_parts = [row[np.repeat(colptr[:-1], full_counts) + rel]]
        dst_parts = [np.repeat(np.arange(num_vertices), full_counts)]
        for v in sampled:
            neighbors = row[colptr[v]:colptr[v + 1]]
            k = int(keep[v])
            if cfg.strategy == "uniform":
                idx = self._rng.choice(len(neighbors), size=k, replace=False)
                idx.sort()
            else:
                idx = np.linspace(0, len(neighbors) - 1,
                                  num=k).astype(np.int64)
                idx = np.unique(idx)
            src_parts.append(neighbors[idx])
            dst_parts.append(np.full(len(idx), v, dtype=np.int64))
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        if src.size:
            csr = CSRMatrix.from_arrays(src, dst, num_vertices,
                                        deduplicate=False)
        else:
            csr = CSRMatrix.from_edges([], num_vertices)
        return to_csc(Graph(csr, graph.features,
                            name=f"{graph.name}[sampled]"))

    def sampled_degree_map(self, graph: Graph) -> Dict[int, int]:
        """Per-vertex sampled in-degree without materialising the graph."""
        return {
            v: len(self.sample_neighbors(graph.in_neighbors(v)))
            for v in range(graph.num_vertices)
        }


def sample_graph(graph: Graph, config: SamplingConfig) -> Graph:
    """Convenience wrapper: sample ``graph`` according to ``config``."""
    return NeighborSampler(config).sample_graph(graph)
