"""Graph substrate: data structures, synthetic datasets, partitioning, sampling."""

from .graph import CSCMatrix, CSRMatrix, Graph, GraphStats, merge_graphs
from .csc import CSCGraph, from_csc, graphs_equal, to_csc
from .delta import DeltaGraph
from .generators import (
    community_graph,
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
    star_graph,
)
from .datasets import DATASETS, DatasetSpec, dataset_names, dataset_table, load_dataset
from .partition import EdgeShard, IntervalShardPartition, VertexInterval, partition_graph
from .sampling import NeighborSampler, SamplingConfig, sample_graph
from .io import export_edge_list, import_edge_list, load_graph, save_graph

__all__ = [
    "CSCGraph",
    "CSCMatrix",
    "CSRMatrix",
    "DeltaGraph",
    "Graph",
    "from_csc",
    "graphs_equal",
    "to_csc",
    "GraphStats",
    "merge_graphs",
    "community_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "power_law_graph",
    "star_graph",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "dataset_table",
    "load_dataset",
    "EdgeShard",
    "IntervalShardPartition",
    "VertexInterval",
    "partition_graph",
    "NeighborSampler",
    "SamplingConfig",
    "sample_graph",
    "export_edge_list",
    "import_edge_list",
    "load_graph",
    "save_graph",
]
