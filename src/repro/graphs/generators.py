"""Synthetic graph generators.

The paper evaluates on six public datasets (Table 4).  Those datasets are not
redistributable inside this repository, so we generate synthetic graphs whose
first-order statistics -- vertex count, edge count (hence average degree),
degree skew and feature vector length -- match the published numbers.  The
accelerator's behaviour depends on exactly these properties: the sparsity
pattern drives the window sliding/shrinking results, the degree distribution
drives the aggregation workload, and the feature length drives both DRAM
traffic and MVM compute.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .csc import to_csc
from .graph import Graph

__all__ = [
    "erdos_renyi_graph",
    "power_law_graph",
    "community_graph",
    "grid_graph",
    "star_graph",
]


def _features(num_vertices: int, feature_length: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a dense feature matrix; values are irrelevant to timing/energy."""
    return rng.standard_normal((num_vertices, feature_length))


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    feature_length: int,
    seed: int = 0,
    name: str = "erdos-renyi",
) -> Graph:
    """Generate a uniform random (Erdos-Renyi style) undirected graph.

    ``num_edges`` counts *directed* edges after symmetrisation, matching the
    edge counts reported in Table 4 (which count both directions).
    """
    if num_vertices <= 1:
        raise ValueError("num_vertices must be > 1")
    rng = np.random.default_rng(seed)
    target_undirected = max(1, num_edges // 2)
    src = rng.integers(0, num_vertices, size=target_undirected * 2)
    dst = rng.integers(0, num_vertices, size=target_undirected * 2)
    mask = src != dst
    pairs = np.stack([src[mask], dst[mask]], axis=1)[:target_undirected]
    edges = [(int(u), int(v)) for u, v in pairs]
    return to_csc(Graph.from_edge_list(
        edges, num_vertices,
        features=_features(num_vertices, feature_length, rng),
        undirected=True, name=name,
    ))


def power_law_graph(
    num_vertices: int,
    num_edges: int,
    feature_length: int,
    skew: float = 1.2,
    seed: int = 0,
    name: str = "power-law",
) -> Graph:
    """Generate a graph with a power-law (scale-free-like) degree distribution.

    Real GCN datasets such as Reddit and COLLAB are heavily skewed; the skew is
    what makes the aggregation workload irregular, so benchmarks that depend on
    irregularity use this generator.  ``skew`` is the Zipf-like exponent:
    larger values concentrate edges on fewer hub vertices.
    """
    if num_vertices <= 1:
        raise ValueError("num_vertices must be > 1")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    target_undirected = max(1, num_edges // 2)
    # Draw endpoints proportionally to the power-law weights so hub vertices
    # accumulate high degree.  Skewed sampling produces many duplicate pairs,
    # so keep topping up until the unique-pair count approaches the target
    # (dense graphs such as COLLAB need several rounds).
    unique_pairs = np.empty((0, 2), dtype=np.int64)
    for _ in range(12):
        remaining = target_undirected - len(unique_pairs)
        if remaining <= 0:
            break
        draw = max(remaining * 2, 1024)
        src = rng.choice(num_vertices, size=draw, p=weights)
        dst = rng.choice(num_vertices, size=draw, p=weights)
        mask = src != dst
        batch = np.stack([src[mask], dst[mask]], axis=1)
        # Canonicalise undirected pairs so (u, v) and (v, u) deduplicate.
        batch = np.sort(batch, axis=1)
        unique_pairs = np.unique(np.vstack([unique_pairs, batch]), axis=0)
    if len(unique_pairs) > target_undirected:
        keep = rng.choice(len(unique_pairs), size=target_undirected, replace=False)
        unique_pairs = unique_pairs[keep]
    if len(unique_pairs) == 0:
        unique_pairs = np.array([[0, 1]], dtype=np.int64)
    # Random vertex relabelling so hubs are not clustered at low indices,
    # which would make the interval/shard sparsity artificially regular.
    perm = rng.permutation(num_vertices)
    relabelled = perm[unique_pairs]
    return to_csc(Graph.from_edge_list(
        relabelled, num_vertices,
        features=_features(num_vertices, feature_length, rng),
        undirected=True, name=name,
    ))


def community_graph(
    num_vertices: int,
    num_edges: int,
    feature_length: int,
    num_communities: int = 8,
    intra_fraction: float = 0.85,
    seed: int = 0,
    name: str = "community",
) -> Graph:
    """Generate a stochastic-block-model-like graph with dense communities.

    Citation networks (Cora, Citeseer, Pubmed) have strong community structure
    *and* the crawl order that assigns vertex ids tends to keep community
    members close together in id space.  Communities are therefore laid out as
    contiguous id blocks: that id locality is what gives the interval-shard
    partitioning its reuse and the window sliding/shrinking its skippable runs
    of empty source rows.  ``intra_fraction`` controls how many edges stay
    inside a community.
    """
    if num_communities < 1:
        raise ValueError("num_communities must be >= 1")
    rng = np.random.default_rng(seed)
    # contiguous id blocks, with mildly uneven sizes
    boundaries = np.sort(rng.choice(
        np.arange(1, num_vertices), size=min(num_communities - 1, num_vertices - 1),
        replace=False)) if num_communities > 1 else np.array([], dtype=np.int64)
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [num_vertices]])
    community_members = [np.arange(lo, hi) for lo, hi in zip(starts, stops)]
    community_members = [m for m in community_members if len(m) > 1]
    target_undirected = max(1, num_edges // 2)
    edges = []
    for _ in range(target_undirected):
        if community_members and rng.random() < intra_fraction:
            members = community_members[rng.integers(len(community_members))]
            u, v = rng.choice(members, size=2, replace=False)
        else:
            u, v = rng.integers(0, num_vertices, size=2)
        if u != v:
            edges.append((int(u), int(v)))
    if not edges:
        edges = [(0, 1)]
    return to_csc(Graph.from_edge_list(
        edges, num_vertices,
        features=_features(num_vertices, feature_length, rng),
        undirected=True, name=name,
    ))


def grid_graph(side: int, feature_length: int, seed: int = 0, name: str = "grid") -> Graph:
    """Generate a 2-D grid graph (regular degree, used for edge-case tests)."""
    if side < 2:
        raise ValueError("side must be >= 2")
    num_vertices = side * side
    edges = []
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if c + 1 < side:
                edges.append((v, v + 1))
            if r + 1 < side:
                edges.append((v, v + side))
    rng = np.random.default_rng(seed)
    return to_csc(Graph.from_edge_list(
        edges, num_vertices,
        features=_features(num_vertices, feature_length, rng),
        undirected=True, name=name,
    ))


def star_graph(num_leaves: int, feature_length: int, seed: int = 0, name: str = "star") -> Graph:
    """Generate a star graph: one hub connected to every leaf.

    An extreme-skew corner case for the aggregation engine and the readout
    formulation ("an additional single vertex that connects all vertices").
    """
    if num_leaves < 1:
        raise ValueError("num_leaves must be >= 1")
    edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    rng = np.random.default_rng(seed)
    return to_csc(Graph.from_edge_list(
        edges, num_leaves + 1,
        features=_features(num_leaves + 1, feature_length, rng),
        undirected=True, name=name,
    ))
