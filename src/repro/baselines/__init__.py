"""General-purpose-processor baselines and the CPU characterisation harness."""

from .base import BaselineReport
from .cache import (
    CacheConfig,
    CacheHierarchy,
    CacheLevel,
    CacheStats,
    aggregation_trace,
    combination_trace,
)
from .cpu import CPUConfig, PyGCPUModel
from .gpu import GPUConfig, PyGGPUModel
from .characterization import (
    PhaseCharacterization,
    characterize_phases,
    execution_pattern_table,
    execution_time_breakdown,
)

__all__ = [
    "BaselineReport",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevel",
    "CacheStats",
    "aggregation_trace",
    "combination_trace",
    "CPUConfig",
    "PyGCPUModel",
    "GPUConfig",
    "PyGGPUModel",
    "PhaseCharacterization",
    "characterize_phases",
    "execution_pattern_table",
    "execution_time_breakdown",
]
