"""Shared result container for the general-purpose-processor baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["BaselineReport"]


@dataclass
class BaselineReport:
    """Execution estimate of one model on one dataset for a baseline platform.

    The per-phase split (``aggregation_time_s`` / ``combination_time_s``) is
    what Fig. 2 plots; the totals feed the speedup (Fig. 10), energy (Fig. 11),
    bandwidth-utilisation (Fig. 13) and DRAM-access (Fig. 14) comparisons.
    """

    platform: str
    model_name: str
    dataset_name: str
    aggregation_time_s: float = 0.0
    combination_time_s: float = 0.0
    other_time_s: float = 0.0
    aggregation_dram_bytes: int = 0
    combination_dram_bytes: int = 0
    energy_j: float = 0.0
    peak_bandwidth_gbps: float = 0.0
    out_of_memory: bool = False
    notes: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def total_time_s(self) -> float:
        return self.aggregation_time_s + self.combination_time_s + self.other_time_s

    @property
    def dram_bytes(self) -> int:
        return self.aggregation_dram_bytes + self.combination_dram_bytes

    @property
    def aggregation_fraction(self) -> float:
        """Fraction of execution time spent in the Aggregation phase (Fig. 2)."""
        total = self.total_time_s
        return self.aggregation_time_s / total if total else 0.0

    @property
    def combination_fraction(self) -> float:
        total = self.total_time_s
        return self.combination_time_s / total if total else 0.0

    @property
    def bandwidth_utilization(self) -> float:
        """Achieved fraction of peak DRAM bandwidth over the whole execution."""
        if self.total_time_s == 0 or self.peak_bandwidth_gbps == 0:
            return 0.0
        achieved = self.dram_bytes / self.total_time_s / 1e9
        return min(1.0, achieved / self.peak_bandwidth_gbps)

    def summary(self) -> Dict[str, float]:
        """Compact dictionary for the benchmark tables."""
        return {
            "platform": self.platform,
            "model": self.model_name,
            "dataset": self.dataset_name,
            "time_s": self.total_time_s,
            "aggregation_pct": 100.0 * self.aggregation_fraction,
            "combination_pct": 100.0 * self.combination_fraction,
            "energy_j": self.energy_j,
            "dram_mb": self.dram_bytes / (1 << 20),
            "bandwidth_utilization": self.bandwidth_utilization,
            "out_of_memory": self.out_of_memory,
        }
