"""Analytical model of PyTorch Geometric on a dual-socket Intel Xeon CPU.

The paper's CPU baseline is PyG on two Xeon E5-2680 v3 sockets (Table 6:
2.5 GHz x 24 cores, 60 MB of last-level cache, 136.5 GB/s DDR4).  We model the
two phases separately, following the characterisation of Section 3.1:

* **Aggregation** is a gather-dominated scatter/segment reduction.  Its DRAM
  traffic is governed by how much of the source-feature working set misses in
  the LLC (plus the prefetch waste the paper highlights), and its throughput by
  a low effective bandwidth -- PyG's scatter kernels leave most of the memory
  system idle (Fig. 13 shows single-digit utilisation).
* **Combination** is an MKL GEMM: compute-bound at a healthy fraction of peak
  FLOPs, but paying the shared-data copy / thread synchronisation overhead the
  paper measures at up to 36% of the phase time.

The interval-shard algorithm optimisation of Section 4.3 (evaluated on CPU in
Fig. 10a) is modelled by its effect on the aggregation working set: features
are reused within an L2-sized shard, cutting the aggregation DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..graphs.graph import Graph
from ..models.base import GCNModel
from ..models.diffpool import DiffPoolModel
from ..models.model_zoo import workloads_for
from .base import BaselineReport

__all__ = ["CPUConfig", "PyGCPUModel"]

AnyModel = Union[GCNModel, DiffPoolModel]


@dataclass(frozen=True)
class CPUConfig:
    """Dual-socket Xeon E5-2680 v3 workstation (Table 6)."""

    name: str = "PyG-CPU"
    num_cores: int = 24
    clock_ghz: float = 2.5
    llc_bytes: int = 60 * 1024 * 1024
    l2_bytes_per_core: int = 256 * 1024
    peak_bandwidth_gbps: float = 136.5
    #: sustained FLOP rate of the PyG/MKL GEMM path as a fraction of peak.
    #: PyG's skinny, per-layer GEMMs plus dispatch overhead land far below the
    #: machine's dense-GEMM roofline.
    gemm_efficiency: float = 0.08
    simd_flops_per_cycle: int = 32          # AVX2 FMA: 8 lanes x 2 ops x 2 ports
    #: effective fraction of peak bandwidth achieved by the scatter/gather kernels
    gather_bandwidth_fraction: float = 0.05
    #: scalar reduction ops the (mostly single-threaded) scatter kernels sustain
    gather_ops_per_second: float = 0.5e9
    #: fraction of Combination time lost to shared-data copy and thread sync
    sync_overhead_fraction: float = 0.36
    #: extra DRAM traffic factor for ineffective hardware prefetching
    prefetch_waste_factor: float = 1.8
    #: edge-wise tensors PyG materialises during gather/scatter (read src
    #: features, write gathered tensor, read it back for the reduction)
    materialization_traffic_factor: float = 3.0
    #: fixed framework (operator dispatch, allocation) overhead per layer
    aggregation_overhead_s: float = 1.5e-3
    combination_overhead_s: float = 0.5e-3
    #: average package + DRAM power drawn while running the workload (watts)
    active_power_w: float = 240.0
    dram_energy_pj_per_byte: float = 20.0

    @property
    def peak_gflops(self) -> float:
        return self.num_cores * self.clock_ghz * self.simd_flops_per_cycle

    @property
    def sustained_gemm_gflops(self) -> float:
        return self.peak_gflops * self.gemm_efficiency


class PyGCPUModel:
    """Estimates PyG execution time, energy and DRAM traffic on the CPU."""

    def __init__(self, config: Optional[CPUConfig] = None, algorithm_optimized: bool = False):
        self.config = config or CPUConfig()
        #: whether the interval-shard optimisation of Section 4.3 is applied
        self.algorithm_optimized = algorithm_optimized

    # ------------------------------------------------------------------ #
    # Phase models
    # ------------------------------------------------------------------ #
    def _aggregation_dram_bytes(self, graph: Graph, feature_length: int,
                                num_edges: Optional[int] = None) -> int:
        """DRAM traffic of one aggregation pass over the graph."""
        cfg = self.config
        bytes_per_row = feature_length * 4
        num_edges = graph.num_edges if num_edges is None else num_edges
        working_set = graph.num_vertices * bytes_per_row
        gathered = num_edges * bytes_per_row
        # PyG's gather/scatter path materialises edge-wise tensors: the source
        # rows are read, the gathered (E x F) tensor is written and read back
        # for the segment reduction.  This traffic is paid regardless of cache
        # capacity.
        traffic = gathered * cfg.materialization_traffic_factor + working_set
        if working_set > cfg.llc_bytes:
            # random gathers additionally thrash the LLC and trigger useless
            # prefetches once the feature matrix no longer fits on chip
            miss_fraction = 1.0 - cfg.llc_bytes / working_set
            traffic += gathered * miss_fraction * (cfg.prefetch_waste_factor - 1.0)
        if self.algorithm_optimized:
            # interval-shard execution: features are reused by the vertices of
            # one shard while it is L2 resident, so each loaded row serves
            # roughly the shard's average in-degree instead of one edge, and
            # the edge-wise materialisation disappears (in-place accumulation).
            reuse = self._reuse_factor(graph, num_edges)
            traffic = (gathered + working_set) / reuse + working_set
        return int(traffic)

    def _reuse_factor(self, graph: Graph, num_edges: int) -> float:
        """Feature reuse the interval-shard optimisation achieves on this graph."""
        avg_degree = max(1.0, num_edges / max(1, graph.num_vertices))
        return min(4.0, max(1.0, avg_degree / 2.0))

    def _aggregation_time(self, ops: int, dram_bytes: int,
                          throughput_boost: float = 1.0) -> float:
        cfg = self.config
        bandwidth_time = dram_bytes / (cfg.peak_bandwidth_gbps * 1e9
                                       * cfg.gather_bandwidth_fraction)
        # When the shard optimisation keeps source features L2-resident, the
        # gather kernel stops stalling on memory and its effective throughput
        # rises (this is where the Fig. 10a speedup comes from).
        compute_time = ops / (cfg.gather_ops_per_second * max(1.0, throughput_boost))
        return max(bandwidth_time, compute_time) + cfg.aggregation_overhead_s

    def _combination_time(self, macs: int, dram_bytes: int) -> float:
        cfg = self.config
        flop_time = 2.0 * macs / (cfg.sustained_gemm_gflops * 1e9)
        bandwidth_time = dram_bytes / (cfg.peak_bandwidth_gbps * 1e9 * 0.6)
        busy = max(flop_time, bandwidth_time)
        return busy / (1.0 - cfg.sync_overhead_fraction) + cfg.combination_overhead_s

    # ------------------------------------------------------------------ #
    def run(self, model: AnyModel, graph: Graph,
            dataset_name: Optional[str] = None) -> BaselineReport:
        """Estimate one full-model inference on ``graph``."""
        cfg = self.config
        report = BaselineReport(
            platform=cfg.name + ("-OP" if self.algorithm_optimized else ""),
            model_name=getattr(model, "name", model.__class__.__name__),
            dataset_name=dataset_name or graph.name,
            peak_bandwidth_gbps=cfg.peak_bandwidth_gbps,
        )
        for workload in workloads_for(model, graph):
            agg_len = workload.aggregation_feature_length
            agg_ops = workload.aggregation_ops()
            sampled_edges = None
            sampling = workload.aggregation.sampling
            if sampling is not None and sampling.enabled and agg_len:
                # approximate the sampled edge count from the op count
                sampled_edges = max(0, agg_ops // agg_len - graph.num_vertices)
            agg_dram = self._aggregation_dram_bytes(workload.graph, agg_len, sampled_edges)
            macs = workload.combination_macs()
            mlp = workload.combination.mlp
            comb_dram = (graph.num_vertices
                         * (mlp.input_size + mlp.output_size) * 4
                         + mlp.parameter_bytes())
            boost = 1.0
            if self.algorithm_optimized:
                boost = min(2.5, self._reuse_factor(
                    workload.graph,
                    workload.graph.num_edges if sampled_edges is None else sampled_edges))
            report.aggregation_time_s += self._aggregation_time(agg_ops, agg_dram, boost)
            report.combination_time_s += self._combination_time(macs, comb_dram)
            report.aggregation_dram_bytes += agg_dram
            report.combination_dram_bytes += comb_dram
        if isinstance(model, DiffPoolModel):
            extra_macs = sum(m.macs for m in model.extra_matmuls(graph))
            extra_bytes = graph.num_vertices * graph.num_vertices * 4
            report.combination_time_s += self._combination_time(extra_macs, extra_bytes)
            report.combination_dram_bytes += extra_bytes
        report.energy_j = cfg.active_power_w * report.total_time_s \
            + report.dram_bytes * cfg.dram_energy_pj_per_byte * 1e-12
        return report
