"""Analytical model of PyTorch Geometric on an NVIDIA V100 GPU.

Table 6: 1.25 GHz x 5120 CUDA cores, ~900 GB/s HBM2, 34 MB of on-chip storage
(register file + L1 + L2).  The model mirrors the CPU one with GPU-appropriate
constants:

* **Aggregation** (pytorch_scatter): massively parallel but still irregular --
  the gathers achieve only a fraction of the HBM2 bandwidth and pay atomic /
  segment-reduction overhead.
* **Combination** (cuBLAS): high-efficiency GEMM, plus per-layer kernel launch
  and inter-phase data movement / synchronisation overheads.
* **Out of memory**: PyG materialises edge-wise feature tensors during
  scatter-based aggregation; when ``num_edges x feature_length x 4 B`` exceeds
  device memory the run aborts -- exactly the OoM entries of Fig. 10/11/13/14
  (GCN and GIN on full-scale Reddit).
* The Fig. 10b experiment (interval-shard optimisation ported to the GPU) is
  modelled as a *slowdown*: each shard launches kernels over too few vertices
  to fill the machine, so occupancy and launch overheads dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..graphs.datasets import DatasetSpec
from ..graphs.graph import Graph
from ..models.base import GCNModel
from ..models.diffpool import DiffPoolModel
from ..models.model_zoo import workloads_for
from .base import BaselineReport

__all__ = ["GPUConfig", "PyGGPUModel"]

AnyModel = Union[GCNModel, DiffPoolModel]


@dataclass(frozen=True)
class GPUConfig:
    """NVIDIA V100 (Table 6)."""

    name: str = "PyG-GPU"
    num_cores: int = 5120
    clock_ghz: float = 1.25
    device_memory_bytes: int = 16 * 1024 ** 3
    peak_bandwidth_gbps: float = 900.0
    peak_fp32_tflops: float = 14.0
    #: sustained fraction of peak FLOPs for PyG's skinny per-layer GEMMs
    gemm_efficiency: float = 0.15
    #: effective fraction of HBM2 bandwidth achieved by scatter/gather kernels
    gather_bandwidth_fraction: float = 0.12
    #: per-kernel launch latency (seconds)
    kernel_launch_s: float = 20e-6
    #: fixed per-layer host/device synchronisation and data-copy overhead
    layer_overhead_s: float = 100e-6
    #: extra read traffic factor for edge-wise materialisation in scatter
    scatter_traffic_factor: float = 2.0
    #: occupancy penalty when the shard-wise algorithm optimisation is applied
    shard_occupancy_penalty: float = 2.5
    active_power_w: float = 300.0
    dram_energy_pj_per_byte: float = 7.0 * 8  # HBM2, ~7 pJ/bit

    @property
    def sustained_gemm_flops(self) -> float:
        return self.peak_fp32_tflops * 1e12 * self.gemm_efficiency


class PyGGPUModel:
    """Estimates PyG execution time, energy and DRAM traffic on the V100."""

    def __init__(self, config: Optional[GPUConfig] = None, algorithm_optimized: bool = False):
        self.config = config or GPUConfig()
        self.algorithm_optimized = algorithm_optimized

    # ------------------------------------------------------------------ #
    def scatter_footprint_bytes(self, num_edges: int, feature_length: int) -> int:
        """Edge-wise intermediate tensor PyG materialises during aggregation."""
        return num_edges * feature_length * 4

    def would_oom(self, num_edges: int, feature_length: int) -> bool:
        """Whether scatter aggregation exceeds device memory."""
        return self.scatter_footprint_bytes(num_edges, feature_length) \
            > self.config.device_memory_bytes

    # ------------------------------------------------------------------ #
    def _aggregation(self, graph: Graph, feature_length: int, agg_ops: int):
        cfg = self.config
        bytes_per_row = feature_length * 4
        gathered = max(agg_ops * 4, graph.num_vertices * bytes_per_row)
        traffic = int(gathered * cfg.scatter_traffic_factor)
        bandwidth_time = traffic / (cfg.peak_bandwidth_gbps * 1e9
                                    * cfg.gather_bandwidth_fraction)
        time = bandwidth_time + cfg.kernel_launch_s
        if self.algorithm_optimized:
            # shard-by-shard execution starves the GPU: occupancy drops and a
            # kernel launch is paid per shard.
            num_shards = max(1, (graph.num_vertices * bytes_per_row) // (2 << 20))
            time = time * cfg.shard_occupancy_penalty + num_shards * cfg.kernel_launch_s
        return time, traffic

    def _combination(self, num_vertices: int, macs: int, mlp_bytes: int):
        cfg = self.config
        flop_time = 2.0 * macs / cfg.sustained_gemm_flops
        traffic = num_vertices * 4 * 2 + mlp_bytes
        bandwidth_time = traffic / (cfg.peak_bandwidth_gbps * 1e9 * 0.7)
        time = max(flop_time, bandwidth_time) + cfg.layer_overhead_s
        return time, traffic

    # ------------------------------------------------------------------ #
    def run(self, model: AnyModel, graph: Graph,
            dataset_name: Optional[str] = None,
            full_scale_spec: Optional[DatasetSpec] = None) -> BaselineReport:
        """Estimate one full-model inference on ``graph``.

        ``full_scale_spec`` (when the graph is a scaled-down synthetic stand-in)
        lets the out-of-memory check use the published full-scale edge count,
        reproducing the OoM entries of the paper's figures.
        """
        cfg = self.config
        report = BaselineReport(
            platform=cfg.name + ("-OP" if self.algorithm_optimized else ""),
            model_name=getattr(model, "name", model.__class__.__name__),
            dataset_name=dataset_name or graph.name,
            peak_bandwidth_gbps=cfg.peak_bandwidth_gbps,
        )
        workloads = workloads_for(model, graph)
        # Out-of-memory check against the full-scale dataset when provided.
        for workload in workloads:
            feature_length = workload.aggregation_feature_length
            sampling = workload.aggregation.sampling
            if full_scale_spec is not None:
                edges = full_scale_spec.num_edges
                if sampling is not None and sampling.enabled and sampling.max_neighbors:
                    edges = min(edges, full_scale_spec.num_vertices * sampling.max_neighbors)
            else:
                edges = workload.graph.num_edges
            if self.would_oom(edges, feature_length):
                report.out_of_memory = True
                report.notes["oom_footprint_gb"] = \
                    self.scatter_footprint_bytes(edges, feature_length) / (1 << 30)
                return report

        for workload in workloads:
            agg_len = workload.aggregation_feature_length
            agg_time, agg_traffic = self._aggregation(
                workload.graph, agg_len, workload.aggregation_ops())
            mlp = workload.combination.mlp
            comb_time, comb_traffic = self._combination(
                graph.num_vertices, workload.combination_macs(),
                mlp.parameter_bytes() + graph.num_vertices * (mlp.input_size + mlp.output_size) * 4)
            report.aggregation_time_s += agg_time
            report.combination_time_s += comb_time
            report.aggregation_dram_bytes += agg_traffic
            report.combination_dram_bytes += comb_traffic
        if isinstance(model, DiffPoolModel):
            extra_macs = sum(m.macs for m in model.extra_matmuls(graph))
            extra_bytes = graph.num_vertices * graph.num_vertices * 4
            time, traffic = self._combination(graph.num_vertices, extra_macs, extra_bytes)
            report.combination_time_s += time
            report.combination_dram_bytes += traffic
        report.energy_j = cfg.active_power_w * report.total_time_s \
            + report.dram_bytes * cfg.dram_energy_pj_per_byte * 1e-12
        return report
