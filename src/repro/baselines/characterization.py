"""Workload characterisation harness (Section 3.1: Fig. 2, Table 2, Table 3).

The harness combines the analytical CPU model (for the execution-time
breakdown) with the cache-hierarchy simulator (for the L2/L3 MPKI of the two
phases) to regenerate the quantitative characterisation the paper uses to
motivate the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..graphs.datasets import load_dataset
from ..graphs.graph import Graph
from ..models.model_zoo import build_model, workloads_for
from .cache import CacheHierarchy, aggregation_trace, combination_trace
from .cpu import CPUConfig, PyGCPUModel

__all__ = [
    "PhaseCharacterization",
    "execution_time_breakdown",
    "characterize_phases",
    "execution_pattern_table",
]


@dataclass
class PhaseCharacterization:
    """Table 2 metrics for one phase of one workload."""

    phase: str
    dram_bytes_per_op: float
    dram_energy_per_op_nj: float
    l2_mpki: float
    l3_mpki: float
    sync_time_fraction: Optional[float] = None

    def as_row(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "dram_bytes_per_op": round(self.dram_bytes_per_op, 3),
            "dram_energy_per_op_nj": round(self.dram_energy_per_op_nj, 3),
            "l2_mpki": round(self.l2_mpki, 2),
            "l3_mpki": round(self.l3_mpki, 2),
            "sync_time_fraction": self.sync_time_fraction,
        }


def execution_time_breakdown(
    model_names: Sequence[str] = ("GCN", "GSC", "GIN"),
    dataset_names: Sequence[str] = ("IB", "CR", "CS", "CL", "PB"),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Regenerate Fig. 2: per-phase execution-time share of PyG-CPU."""
    cpu = PyGCPUModel()
    rows = []
    for model_name in model_names:
        for dataset in dataset_names:
            graph = load_dataset(dataset, seed=seed)
            model = build_model(model_name, input_length=graph.feature_length)
            report = cpu.run(model, graph, dataset_name=dataset)
            rows.append({
                "model": model_name,
                "dataset": dataset,
                "aggregation_pct": round(100.0 * report.aggregation_fraction, 2),
                "combination_pct": round(100.0 * report.combination_fraction, 2),
                "total_time_s": report.total_time_s,
            })
    return rows


def characterize_phases(
    dataset: str = "CL",
    model_name: str = "GCN",
    max_trace_vertices: int = 192,
    seed: int = 0,
    graph: Optional[Graph] = None,
) -> Dict[str, PhaseCharacterization]:
    """Regenerate Table 2: per-phase DRAM intensity and cache behaviour.

    The cache traces are truncated to ``max_trace_vertices`` destination
    vertices to keep the simulation tractable; MPKI is a per-instruction ratio
    so truncation does not bias it as long as the sample is representative.
    """
    graph = graph if graph is not None else load_dataset(dataset, seed=seed)
    model = build_model(model_name, input_length=graph.feature_length)
    workload = workloads_for(model, graph)[0]
    cpu_config = CPUConfig()
    cpu = PyGCPUModel(cpu_config)
    report = cpu.run(model, graph, dataset_name=dataset)

    # --- Aggregation -----------------------------------------------------
    agg_len = workload.aggregation_feature_length
    agg_ops = workload.aggregation_ops()
    agg_trace = aggregation_trace(graph, agg_len, max_vertices=max_trace_vertices)
    agg_cache = CacheHierarchy()
    agg_cache.run_trace(agg_trace)
    # one "operation" (instruction) per reduced scalar element, matching the
    # per-Op normalisation of Table 2
    sampled_vertices = min(max_trace_vertices, graph.num_vertices)
    sampled_edges = sum(graph.csc.in_degree(v) for v in range(sampled_vertices))
    agg_instructions = max(1, (sampled_edges + sampled_vertices) * agg_len)
    agg_char = PhaseCharacterization(
        phase="Aggregation",
        dram_bytes_per_op=report.aggregation_dram_bytes / max(1, agg_ops),
        dram_energy_per_op_nj=(report.aggregation_dram_bytes / max(1, agg_ops))
        * cpu_config.dram_energy_pj_per_byte * 1e-3,
        l2_mpki=agg_cache.stats_for("L2").mpki(agg_instructions),
        l3_mpki=agg_cache.stats_for("L3").mpki(agg_instructions),
        sync_time_fraction=None,
    )

    # --- Combination ------------------------------------------------------
    mlp = workload.combination.mlp
    comb_macs = workload.combination_macs()
    comb_trace = combination_trace(graph.num_vertices, mlp.input_size, mlp.output_size,
                                   max_vertices=max_trace_vertices)
    comb_cache = CacheHierarchy()
    comb_cache.run_trace(comb_trace)
    # one "operation" per MAC, matching the per-Op normalisation of Table 2
    comb_instructions = max(1, min(max_trace_vertices, graph.num_vertices)
                            * mlp.input_size * mlp.output_size)
    comb_dram = sum(r for r in [workload.graph.num_vertices
                                * (mlp.input_size + mlp.output_size) * 4,
                                mlp.parameter_bytes()])
    comb_char = PhaseCharacterization(
        phase="Combination",
        dram_bytes_per_op=comb_dram / max(1, comb_macs),
        dram_energy_per_op_nj=(comb_dram / max(1, comb_macs))
        * cpu_config.dram_energy_pj_per_byte * 1e-3,
        l2_mpki=comb_cache.stats_for("L2").mpki(comb_instructions),
        l3_mpki=comb_cache.stats_for("L3").mpki(comb_instructions),
        sync_time_fraction=cpu_config.sync_overhead_fraction,
    )
    return {"aggregation": agg_char, "combination": comb_char}


def execution_pattern_table(characterization: Dict[str, PhaseCharacterization]) -> List[Dict[str, str]]:
    """Derive Table 3 (qualitative execution patterns) from Table 2 data."""
    agg = characterization["aggregation"]
    comb = characterization["combination"]
    return [
        {"property": "Access Pattern",
         "aggregation": "Indirect & Irregular", "combination": "Direct & Regular"},
        {"property": "Data Reusability",
         "aggregation": "Low" if agg.l3_mpki > comb.l3_mpki else "High",
         "combination": "High" if agg.l3_mpki > comb.l3_mpki else "Low"},
        {"property": "Computation Pattern",
         "aggregation": "Dynamic & Irregular", "combination": "Static & Regular"},
        {"property": "Computation Intensity",
         "aggregation": "Low" if agg.dram_bytes_per_op > comb.dram_bytes_per_op else "High",
         "combination": "High" if agg.dram_bytes_per_op > comb.dram_bytes_per_op else "Low"},
        {"property": "Execution Bound",
         "aggregation": "Memory", "combination": "Compute"},
    ]
