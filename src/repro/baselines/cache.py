"""Set-associative cache hierarchy simulator.

Used by the CPU characterisation harness (Table 2) to measure L2/L3 misses per
kilo-instruction for the Aggregation and Combination phases.  The model is a
classic inclusive multi-level hierarchy with LRU replacement, driven by byte
address traces; only structure (hit/miss counts) is modelled, not timing --
timing comes from the analytical CPU model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["CacheConfig", "CacheLevel", "CacheHierarchy", "CacheStats"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    capacity_bytes: int
    associativity: int = 8
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        if self.capacity_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError("capacity must be a multiple of associativity * line size")

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // (self.associativity * self.line_bytes)


@dataclass
class CacheStats:
    """Hit/miss counters of one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction."""
        return 1000.0 * self.misses / instructions if instructions else 0.0


class CacheLevel:
    """One set-associative, LRU cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(config.num_sets)]

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        cache_set = self._sets[index]
        self.stats.accesses += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            return True
        self.stats.misses += 1
        cache_set[line] = True
        if len(cache_set) > self.config.associativity:
            cache_set.popitem(last=False)
        return False

    def reset(self) -> None:
        self.stats = CacheStats()
        for s in self._sets:
            s.clear()


class CacheHierarchy:
    """An inclusive multi-level hierarchy: misses propagate to the next level."""

    #: Xeon-E5-2680-v3-like defaults (per-socket aggregate L2 and shared L3).
    DEFAULT_LEVELS = (
        CacheConfig("L1", 32 * 1024, associativity=8),
        CacheConfig("L2", 256 * 1024, associativity=8),
        CacheConfig("L3", 30 * 1024 * 1024, associativity=16),
    )

    def __init__(self, levels: Optional[Sequence[CacheConfig]] = None):
        configs = list(levels) if levels is not None else list(self.DEFAULT_LEVELS)
        if not configs:
            raise ValueError("at least one cache level is required")
        self.levels = [CacheLevel(c) for c in configs]

    def access(self, address: int) -> str:
        """Access an address; returns the name of the level that hit (or 'DRAM')."""
        for level in self.levels:
            if level.access(address):
                return level.config.name
        return "DRAM"

    def run_trace(self, addresses: Iterable[int]) -> dict:
        """Run a whole address trace; returns per-level stats plus DRAM line traffic."""
        dram_accesses = 0
        for address in addresses:
            if self.access(int(address)) == "DRAM":
                dram_accesses += 1
        line_bytes = self.levels[-1].config.line_bytes
        return {
            "levels": {level.config.name: level.stats for level in self.levels},
            "dram_accesses": dram_accesses,
            "dram_bytes": dram_accesses * line_bytes,
        }

    def stats_for(self, name: str) -> CacheStats:
        for level in self.levels:
            if level.config.name == name:
                return level.stats
        raise KeyError(f"no cache level named {name!r}")

    def reset(self) -> None:
        for level in self.levels:
            level.reset()


# --------------------------------------------------------------------------- #
# Trace generators for the two GCN phases
# --------------------------------------------------------------------------- #
def aggregation_trace(graph, feature_length: int, feature_base: int = 0,
                      max_vertices: Optional[int] = None,
                      line_bytes: int = 64, bytes_per_value: int = 4,
                      seed: int = 0) -> np.ndarray:
    """Byte-address trace of the Aggregation phase's neighbour-feature gathers.

    For each destination vertex the trace touches the first cache line of each
    of its neighbours' feature vectors plus the vertex's own accumulator; the
    neighbour order follows the edge list, so the randomness of the graph (not
    of the generator) determines locality.
    """
    addresses = []
    vertices = range(graph.num_vertices if max_vertices is None
                     else min(max_vertices, graph.num_vertices))
    row_bytes = feature_length * bytes_per_value
    lines_per_row = max(1, row_bytes // line_bytes)
    for v in vertices:
        for u in graph.in_neighbors(v):
            base = feature_base + int(u) * row_bytes
            # touch every cache line of the neighbour's feature vector
            addresses.extend(base + i * line_bytes for i in range(lines_per_row))
        own = feature_base + v * row_bytes
        addresses.extend(own + i * line_bytes for i in range(lines_per_row))
    return np.asarray(addresses, dtype=np.int64)


def combination_trace(num_vertices: int, in_features: int, out_features: int,
                      feature_base: int = 0, weight_base: int = 1 << 34,
                      max_vertices: Optional[int] = None,
                      line_bytes: int = 64, bytes_per_value: int = 4) -> np.ndarray:
    """Byte-address trace of the Combination phase (blocked dense MVMs).

    Vertices stream sequentially; the shared weight matrix is revisited for
    every vertex, which is exactly the reuse a blocked GEMM exploits, so the
    trace exhibits high locality.
    """
    addresses = []
    vertices = num_vertices if max_vertices is None else min(max_vertices, num_vertices)
    in_row = in_features * bytes_per_value
    weight_lines = max(1, (in_features * out_features * bytes_per_value) // line_bytes)
    # sample of the weight lines touched per vertex: a blocked kernel keeps the
    # active weight panel resident, so only a panel's worth of lines stream.
    panel_lines = max(1, min(weight_lines, (64 * 1024) // line_bytes))
    for v in range(vertices):
        base = feature_base + v * in_row
        addresses.extend(base + i * line_bytes for i in range(max(1, in_row // line_bytes)))
        addresses.extend(weight_base + (i % weight_lines) * line_bytes
                         for i in range(panel_lines))
    return np.asarray(addresses, dtype=np.int64)
