"""Edge- and MVM-centric programming model (Section 4.1, Algorithm 1).

The programming model is the software-visible abstraction of HyGCN: the
Aggregation phase is expressed as gather-based, edge-centric traversal of each
vertex's (sampled) incoming edges, and the Combination phase as a matrix-vector
multiply against the shared MLP weights.  :class:`EdgeMVMProgram` executes a
layer exactly in this form and simultaneously records the execution trace
(edges processed, MVMs issued, per-vertex edge counts) that the hardware
simulator consumes, so the functional result and the performance model are
derived from one description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..graphs.graph import Graph
from ..graphs.sampling import NeighborSampler
from ..models.layers import LayerWorkload

__all__ = ["ExecutionTrace", "EdgeMVMProgram"]


@dataclass
class ExecutionTrace:
    """What one layer execution did, at edge/MVM granularity."""

    edges_processed: int = 0
    vertices_processed: int = 0
    mvms_executed: int = 0
    edges_per_vertex: Dict[int, int] = field(default_factory=dict)
    aggregation_elements: int = 0     # scalar reduction operations
    combination_macs: int = 0

    @property
    def max_vertex_edges(self) -> int:
        return max(self.edges_per_vertex.values()) if self.edges_per_vertex else 0

    @property
    def avg_vertex_edges(self) -> float:
        if not self.edges_per_vertex:
            return 0.0
        return self.edges_processed / len(self.edges_per_vertex)


class EdgeMVMProgram:
    """Executes one :class:`LayerWorkload` under the edge-/MVM-centric model."""

    def __init__(self, workload: LayerWorkload):
        self.workload = workload
        sampling = workload.aggregation.sampling
        self._sampler = NeighborSampler(sampling) if sampling and sampling.enabled else None

    # ------------------------------------------------------------------ #
    def sampled_neighbors(self, vertex: int) -> np.ndarray:
        """The (sampled) incoming edge sources of ``vertex`` -- Algorithm 1 line 5."""
        neighbors = self.workload.graph.in_neighbors(vertex)
        if self._sampler is not None:
            neighbors = self._sampler.sample_neighbors(neighbors)
        return neighbors

    def run(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Execute the layer functionally; equivalent to ``GCNLayer.forward``."""
        graph = self.workload.graph
        h = graph.features if features is None else np.asarray(features, dtype=np.float64)
        if self.workload.aggregate_first:
            aggregated = self.workload.aggregation.forward(graph, h)
            return self.workload.combination.forward(aggregated)
        transformed = self.workload.combination.forward(h)
        return self.workload.aggregation.forward(graph, transformed)

    # ------------------------------------------------------------------ #
    def trace(self) -> ExecutionTrace:
        """Collect the edge/MVM execution trace without touching feature data."""
        graph = self.workload.graph
        trace = ExecutionTrace()
        feature_length = self.workload.aggregation_feature_length
        for vertex in range(graph.num_vertices):
            edges = len(self.sampled_neighbors(vertex))
            trace.edges_per_vertex[vertex] = edges
            trace.edges_processed += edges
            trace.vertices_processed += 1
            trace.mvms_executed += 1
        # Each edge contributes one element-wise reduction per feature element,
        # plus the self contribution per vertex (gather-based accumulation).
        trace.aggregation_elements = (trace.edges_processed + trace.vertices_processed) \
            * feature_length
        trace.combination_macs = self.workload.combination_macs()
        return trace

    def edge_parallel_batches(self, batch_size: int) -> List[np.ndarray]:
        """Split all (dst, src) edge tasks into batches of ``batch_size``.

        This mirrors how the eSched dispatches edge sub-workloads to SIMD
        cores: the aggregation of a single vertex can be split across batches
        (edge-level parallelism) and multiple vertices can share one batch.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        pairs: List[tuple] = []
        for vertex in range(self.workload.graph.num_vertices):
            pairs.extend((vertex, int(src)) for src in self.sampled_neighbors(vertex))
        edge_array = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return [edge_array[i:i + batch_size]
                for i in range(0, len(edge_array), batch_size)] if len(edge_array) else []
