"""HyGCN accelerator configuration (Table 6 defaults).

The default values reproduce the evaluated configuration: 32 SIMD16 cores in
the Aggregation Engine, 8 systolic modules of 4x128 PEs in the Combination
Engine, 1 GHz clock, the five on-chip buffers (128 KB Input, 2 MB Edge, 2 MB
Weight, 4 MB Output, 16 MB Aggregation) and a 256 GB/s HBM 1.0 stack.  The
ablation switches (sparsity elimination, pipeline mode, memory coordination)
default to the fully optimised design; the optimisation-analysis benchmarks
flip them off one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..hw.dram import HBMConfig
from ..hw.energy import EnergyParams

__all__ = ["HyGCNConfig", "PipelineMode"]

KIB = 1024
MIB = 1024 * 1024


class PipelineMode:
    """Inter-engine pipeline modes (Section 4.5.1)."""

    NONE = "none"          # phase-by-phase, intermediate results spill to DRAM
    LATENCY = "latency"    # independent systolic modules, immediate processing
    ENERGY = "energy"      # cooperative systolic modules, burst processing

    ALL = (NONE, LATENCY, ENERGY)


@dataclass(frozen=True)
class HyGCNConfig:
    """Structural and policy parameters of the accelerator."""

    # --- Aggregation Engine ------------------------------------------------
    num_simd_cores: int = 32
    simd_width: int = 16
    # --- Combination Engine ------------------------------------------------
    num_systolic_modules: int = 8
    systolic_rows: int = 4
    systolic_cols: int = 128
    # --- On-chip buffers (bytes) --------------------------------------------
    input_buffer_bytes: int = 128 * KIB
    edge_buffer_bytes: int = 2 * MIB
    weight_buffer_bytes: int = 2 * MIB
    output_buffer_bytes: int = 4 * MIB
    aggregation_buffer_bytes: int = 16 * MIB
    # --- Datapath ------------------------------------------------------------
    bytes_per_value: int = 4        # 32-bit fixed point
    clock_ghz: float = 1.0
    # --- Policies / ablation switches ---------------------------------------
    enable_sparsity_elimination: bool = True
    pipeline_mode: str = PipelineMode.LATENCY
    enable_memory_coordination: bool = True
    # --- Memory & energy sub-configs ----------------------------------------
    hbm: HBMConfig = field(default_factory=HBMConfig)
    energy: EnergyParams = field(default_factory=EnergyParams)

    def __post_init__(self) -> None:
        if self.pipeline_mode not in PipelineMode.ALL:
            raise ValueError(
                f"pipeline_mode must be one of {PipelineMode.ALL}, got {self.pipeline_mode!r}"
            )
        for name in ("num_simd_cores", "simd_width", "num_systolic_modules",
                     "systolic_rows", "systolic_cols", "input_buffer_bytes",
                     "edge_buffer_bytes", "weight_buffer_bytes",
                     "output_buffer_bytes", "aggregation_buffer_bytes",
                     "bytes_per_value"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def total_simd_lanes(self) -> int:
        """Peak element-wise aggregation operations per cycle (lanes).

        ``num_simd_cores * simd_width``: the Aggregation Engine's compute
        roof.  An aggregation task of ``E`` edges over feature length ``F``
        needs at least ``E * F / total_simd_lanes`` cycles of SIMD time --
        the phase is only *compute*-bound when that exceeds its DRAM time,
        which on the default balance it rarely is (aggregation is the
        memory-bound phase; shape presets that widen this are buying
        headroom, not throughput, unless bandwidth grows too).
        """
        return self.num_simd_cores * self.simd_width

    @property
    def pes_per_module(self) -> int:
        """MAC units in one systolic module (``rows * cols``).

        ``systolic_cols`` is also the output-feature tile width: layers
        whose output length is below ``cols`` leave columns idle, so a
        module's *effective* PEs can be smaller than this peak.
        """
        return self.systolic_rows * self.systolic_cols

    @property
    def total_pes(self) -> int:
        """Peak MACs per cycle across all systolic modules.

        The Combination Engine's compute roof: a layer of ``V`` vertices,
        input length ``F`` and output length ``H`` needs at least
        ``V * F * H / total_pes`` cycles.  Because every sampled vertex of
        a fused serving batch is combined, wide/deep neighbourhoods are
        what makes a batch MAC-dense -- the regime the ``comb_heavy``
        shape preset (:mod:`repro.serving.hetero`) doubles this for.
        """
        return self.num_systolic_modules * self.pes_per_module

    @property
    def aggregation_chunk_bytes(self) -> int:
        """Capacity (bytes) of one ping-pong chunk of the Aggregation Buffer.

        The buffer is split in two so the Combination Engine drains one
        chunk while the Aggregation Engine fills the other; a chunk bounds
        how many destination vertices' partial results stay on chip, which
        is exactly what :meth:`interval_size` converts to vertices.
        """
        return self.aggregation_buffer_bytes // 2

    @property
    def input_working_bytes(self) -> int:
        """Usable Input Buffer bytes per shard (double buffered).

        Half the physical buffer: the other half prefetches the next
        shard's source-vertex features.  Bounds how many source vertices'
        features are resident per shard (:meth:`shard_height`) -- the
        knob that controls how often the irregular aggregation phase
        re-streams features from DRAM.
        """
        return self.input_buffer_bytes // 2

    @property
    def edge_working_bytes(self) -> int:
        """Usable Edge Buffer bytes per shard (double buffered).

        Half the physical buffer, same ping-pong scheme as the Input
        Buffer; bounds the CSR edge slice held on chip while a shard's
        edges are walked.
        """
        return self.edge_buffer_bytes // 2

    # ------------------------------------------------------------------ #
    # Workload-dependent tiling
    # ------------------------------------------------------------------ #
    def interval_size(self, feature_length: int) -> int:
        """Destination vertices per interval (count, not bytes).

        One interval's partial aggregation results -- ``feature_length``
        values of ``bytes_per_value`` each per destination vertex -- must
        fit one Aggregation Buffer chunk, so longer features mean fewer
        vertices per interval and more intervals per layer.
        """
        per_vertex = max(1, feature_length) * self.bytes_per_value
        return max(1, self.aggregation_chunk_bytes // per_vertex)

    def shard_height(self, feature_length: int) -> int:
        """Source vertices per shard (count, not bytes).

        One shard's source-vertex features must fit the Input Buffer
        working set; graphs taller than this are processed in multiple
        shards per interval, each re-walking its edge slice.
        """
        per_vertex = max(1, feature_length) * self.bytes_per_value
        return max(1, self.input_working_bytes // per_vertex)

    def with_overrides(self, **kwargs) -> "HyGCNConfig":
        """Return a copy with selected fields replaced (ablation helper)."""
        return replace(self, **kwargs)
