"""The HyGCN accelerator: engines, coordinator, memory handler, simulator."""

from .config import HyGCNConfig, PipelineMode
from .sparsity import EffectualWindow, SparsityEliminator, SparsityReport
from .programming_model import EdgeMVMProgram, ExecutionTrace
from .aggregation_engine import AggregationEngine, IntervalAggregation
from .systolic import SystolicArrayModel, SystolicGroupCost
from .combination_engine import CombinationEngine, IntervalCombination
from .coordinator import Coordinator, IntervalTiming, LayerTiming
from .memory_handler import ACCESS_PRIORITY, AccessBatchResult, MemoryAccessHandler
from .stats import LayerReport, SimulationReport
from .simulator import HyGCNSimulator
from .quantization import (
    FixedPointFormat,
    compare_precision,
    dequantize,
    quantization_error,
    quantize,
    quantize_graph,
    quantize_model,
)

__all__ = [
    "HyGCNConfig",
    "PipelineMode",
    "EffectualWindow",
    "SparsityEliminator",
    "SparsityReport",
    "EdgeMVMProgram",
    "ExecutionTrace",
    "AggregationEngine",
    "IntervalAggregation",
    "SystolicArrayModel",
    "SystolicGroupCost",
    "CombinationEngine",
    "IntervalCombination",
    "Coordinator",
    "IntervalTiming",
    "LayerTiming",
    "ACCESS_PRIORITY",
    "AccessBatchResult",
    "MemoryAccessHandler",
    "LayerReport",
    "SimulationReport",
    "HyGCNSimulator",
    "FixedPointFormat",
    "compare_precision",
    "dequantize",
    "quantization_error",
    "quantize",
    "quantize_graph",
    "quantize_model",
]
