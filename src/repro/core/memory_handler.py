"""Off-chip memory access handler and coordination (Section 4.5.2, Fig. 9).

Four buffers compete for the single HBM stack: the Edge and Input buffers of
the Aggregation Engine and the Weight and Output buffers of the Combination
Engine.  Their fill/drain requests arrive concurrently; handled naively the
interleaving destroys DRAM row-buffer locality and confines each stream to a
few banks.

The coordinated handler reorders each batch of concurrent requests by the
fixed priority ``edges > input features > weights > output features`` so same-
stream requests issue back to back (restoring row-buffer hits), and remaps the
reordered addresses so the low bits select channel and bank (exposing channel-
and bank-level parallelism).  The uncoordinated handler round-robins between
streams with a naive per-stream channel map -- the ablation baseline of
Fig. 17.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..hw.dram import DRAMStats, HBMModel, MemoryRequest
from .config import HyGCNConfig

__all__ = ["AccessBatchResult", "MemoryAccessHandler", "ACCESS_PRIORITY"]

#: Fixed stream priority (Section 4.5.2).
ACCESS_PRIORITY: Tuple[str, ...] = (
    "edges", "input_features", "weights", "output_features",
)


@dataclass
class AccessBatchResult:
    """DRAM outcome of one concurrent request batch (one interval step)."""

    stats: DRAMStats
    cycles_by_stream: Dict[str, int]

    @property
    def total_cycles(self) -> int:
        return self.stats.busy_cycles

    def cycles_for(self, streams: Sequence[str]) -> int:
        """DRAM cycles attributable to the given streams."""
        return sum(self.cycles_by_stream.get(s, 0) for s in streams)


class MemoryAccessHandler:
    """Services request batches with or without access coordination."""

    def __init__(self, config: HyGCNConfig):
        self.config = config
        self.coordinated = config.enable_memory_coordination
        self.hbm = HBMModel(config.hbm, interleave_low_bits=self.coordinated)
        self.total_stats = DRAMStats()

    # ------------------------------------------------------------------ #
    def _order_requests(self, requests: Sequence[MemoryRequest]) -> List[MemoryRequest]:
        """Order a concurrent batch according to the coordination policy."""
        if self.coordinated:
            rank = {stream: i for i, stream in enumerate(ACCESS_PRIORITY)}
            return sorted(requests, key=lambda r: rank.get(r.stream, len(rank)))
        # Uncoordinated: the engines' requests interleave as they arrive --
        # round-robin across streams models the worst-case fine-grained mix.
        by_stream: Dict[str, List[MemoryRequest]] = {}
        for request in requests:
            by_stream.setdefault(request.stream, []).append(request)
        ordered: List[MemoryRequest] = []
        queues = list(by_stream.values())
        index = 0
        while any(queues):
            queue = queues[index % len(queues)]
            if queue:
                ordered.append(queue.pop(0))
            index += 1
        return ordered

    # ------------------------------------------------------------------ #
    def service_batch(self, requests: Sequence[MemoryRequest]) -> AccessBatchResult:
        """Service one batch of concurrent requests and attribute cycles per stream."""
        if not requests:
            return AccessBatchResult(DRAMStats(), {})
        ordered = self._order_requests(requests)
        stats = self.hbm.service(ordered)
        self.total_stats = self.total_stats.merge(stats)
        # Attribute the busy time to streams proportionally to bytes moved:
        # the row-hit benefit of coordination is shared by all streams.
        bytes_by_stream: Dict[str, int] = {}
        for request in ordered:
            bytes_by_stream[request.stream] = bytes_by_stream.get(request.stream, 0) \
                + request.num_bytes
        total_bytes = sum(bytes_by_stream.values()) or 1
        cycles_by_stream = {
            stream: int(round(stats.busy_cycles * b / total_bytes))
            for stream, b in bytes_by_stream.items()
        }
        return AccessBatchResult(stats, cycles_by_stream)

    def bandwidth_utilization(self, elapsed_cycles: int) -> float:
        """Fraction of peak HBM bandwidth achieved over the whole run."""
        return self.total_stats.bandwidth_utilization(self.config.hbm, elapsed_cycles)

    def reset(self) -> None:
        """Forget DRAM state and counters between independent experiments."""
        self.hbm.reset()
        self.total_stats = DRAMStats()
