"""Simulation result containers.

A :class:`LayerReport` captures everything the evaluation section plots for a
single GCN layer execution on HyGCN: cycle counts per engine, DRAM traffic per
stream, bandwidth utilisation, energy breakdown, average vertex latency and
the effect of sparsity elimination.  A :class:`SimulationReport` aggregates
the layer reports of a whole model run and offers the derived metrics
(execution time, total energy, speedups against a baseline measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hw.dram import DRAMStats
from ..hw.energy import EnergyBreakdown

__all__ = ["LayerReport", "SimulationReport"]


@dataclass
class LayerReport:
    """Metrics of one layer (one :class:`LayerWorkload`) on the accelerator."""

    name: str
    total_cycles: int
    aggregation_cycles: int
    combination_cycles: int
    num_vertices: int
    num_edges: int
    simd_ops: int
    macs: int
    dram_stats: DRAMStats
    dram_bytes_by_stream: Dict[str, int]
    energy: EnergyBreakdown
    avg_vertex_latency_cycles: float
    sparsity_reduction: float
    loaded_feature_rows: int
    baseline_feature_rows: int
    num_intervals: int
    buffer_overflows: int = 0

    @property
    def dram_bytes(self) -> int:
        return self.dram_stats.bytes_transferred

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of peak HBM bandwidth used over the layer's execution time."""
        if self.total_cycles == 0:
            return 0.0
        from ..hw.dram import HBMConfig
        return self.dram_stats.bandwidth_utilization(HBMConfig(), self.total_cycles)


@dataclass
class SimulationReport:
    """Aggregate result of running a whole model (all layers) on HyGCN."""

    model_name: str
    dataset_name: str
    layers: List[LayerReport] = field(default_factory=list)
    clock_ghz: float = 1.0

    # ------------------------------------------------------------------ #
    # Totals
    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> int:
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def execution_time_s(self) -> float:
        return self.total_cycles / (self.clock_ghz * 1e9)

    @property
    def aggregation_cycles(self) -> int:
        return sum(layer.aggregation_cycles for layer in self.layers)

    @property
    def combination_cycles(self) -> int:
        return sum(layer.combination_cycles for layer in self.layers)

    @property
    def total_dram_bytes(self) -> int:
        return sum(layer.dram_bytes for layer in self.layers)

    @property
    def dram_stats(self) -> DRAMStats:
        stats = DRAMStats()
        for layer in self.layers:
            stats = stats.merge(layer.dram_stats)
        return stats

    @property
    def energy(self) -> EnergyBreakdown:
        breakdown = EnergyBreakdown()
        for layer in self.layers:
            breakdown = breakdown.merge(layer.energy)
        return breakdown

    @property
    def total_energy_j(self) -> float:
        return self.energy.total_joules

    @property
    def avg_vertex_latency_cycles(self) -> float:
        if not self.layers:
            return 0.0
        return sum(l.avg_vertex_latency_cycles for l in self.layers) / len(self.layers)

    @property
    def bandwidth_utilization(self) -> float:
        """DRAM bandwidth utilisation over the whole execution."""
        cycles = self.total_cycles
        if cycles == 0:
            return 0.0
        from ..hw.dram import HBMConfig
        return self.dram_stats.bandwidth_utilization(HBMConfig(), cycles)

    @property
    def avg_sparsity_reduction(self) -> float:
        if not self.layers:
            return 0.0
        return sum(l.sparsity_reduction for l in self.layers) / len(self.layers)

    def dram_bytes_by_stream(self) -> Dict[str, int]:
        """Total DRAM bytes per logical stream across layers."""
        totals: Dict[str, int] = {}
        for layer in self.layers:
            for stream, value in layer.dram_bytes_by_stream.items():
                totals[stream] = totals.get(stream, 0) + value
        return totals

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def speedup_over(self, other_time_s: float) -> float:
        """Speedup of this run versus a baseline execution time in seconds."""
        if self.execution_time_s == 0:
            return float("inf")
        return other_time_s / self.execution_time_s

    def energy_ratio_to(self, other_energy_j: float) -> float:
        """This run's energy as a fraction of a baseline's energy."""
        if other_energy_j == 0:
            return float("inf")
        return self.total_energy_j / other_energy_j

    def summary(self) -> Dict[str, float]:
        """Compact dictionary used by the benchmark harness tables."""
        return {
            "model": self.model_name,
            "dataset": self.dataset_name,
            "cycles": self.total_cycles,
            "time_s": self.execution_time_s,
            "energy_j": self.total_energy_j,
            "dram_mb": self.total_dram_bytes / (1 << 20),
            "bandwidth_utilization": self.bandwidth_utilization,
            "avg_vertex_latency_cycles": self.avg_vertex_latency_cycles,
        }
