"""Top-level HyGCN simulator.

:class:`HyGCNSimulator` stitches the pieces together for every layer of a GCN
model: the Aggregation Engine produces per-interval aggregation transactions,
the Combination Engine produces the matching MVM transactions, the Memory
Access Handler services their DRAM requests (with or without coordination),
and the Coordinator composes engine times according to the pipeline mode.
Event counts feed the energy model, and everything is collected into
:class:`~repro.core.stats.LayerReport` / :class:`~repro.core.stats.SimulationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..graphs.graph import Graph
from ..hw.buffer import BufferStats
from ..hw.dram import DRAMStats, MemoryRequest
from ..hw.energy import EnergyModel
from ..models.base import GCNModel
from ..models.diffpool import DiffPoolModel
from ..models.layers import LayerWorkload
from ..models.model_zoo import workloads_for
from .aggregation_engine import AggregationEngine, IntervalAggregation, _chunk_requests
from .combination_engine import CombinationEngine, IntervalCombination
from .config import HyGCNConfig, PipelineMode
from .coordinator import Coordinator, IntervalTiming
from .memory_handler import MemoryAccessHandler
from .stats import LayerReport, SimulationReport

__all__ = ["HyGCNSimulator"]

AnyModel = Union[GCNModel, DiffPoolModel]

#: streams owned by each engine, used to attribute DRAM time
_AGGREGATION_STREAMS = ("edges", "input_features")
_COMBINATION_STREAMS = ("weights", "output_features")


class HyGCNSimulator:
    """Phase-accurate, transaction-level simulator of the HyGCN accelerator."""

    def __init__(self, config: Optional[HyGCNConfig] = None):
        self.config = config or HyGCNConfig()
        self.energy_model = EnergyModel(self.config.energy)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run_model(self, model: AnyModel, graph: Graph,
                  dataset_name: Optional[str] = None) -> SimulationReport:
        """Simulate inference of ``model`` on ``graph`` and return the report."""
        workloads = workloads_for(model, graph)
        report = SimulationReport(
            model_name=getattr(model, "name", model.__class__.__name__),
            dataset_name=dataset_name or graph.name,
            clock_ghz=self.config.clock_ghz,
        )
        for workload in workloads:
            report.layers.append(self.run_workload(workload))
        if isinstance(model, DiffPoolModel):
            report.layers.append(self._run_diffpool_matmuls(model, graph))
        return report

    def run_workload(self, workload: LayerWorkload) -> LayerReport:
        """Simulate one GCN layer and return its :class:`LayerReport`."""
        cfg = self.config
        aggregation_engine = AggregationEngine(cfg)
        combination_engine = CombinationEngine(cfg)
        coordinator = Coordinator(cfg)
        memory = MemoryAccessHandler(cfg)

        graph = aggregation_engine.prepare_graph(workload)
        # The hardware follows Algorithm 1 (aggregate, then combine), so the
        # Aggregation Engine always works at the layer's input feature length.
        partition = aggregation_engine.partition(graph, workload.in_feature_length)
        agg_tasks = aggregation_engine.process_layer(workload, graph, partition)
        cooperative = cfg.pipeline_mode == PipelineMode.ENERGY
        comb_tasks = combination_engine.process_layer(workload, agg_tasks, cooperative)
        if cfg.pipeline_mode == PipelineMode.NONE:
            self._add_spill_requests(workload, agg_tasks, comb_tasks)
        coordinator.record_buffer_traffic(workload, agg_tasks)

        timings, stream_bytes, dram_stats = self._service_memory(
            memory, agg_tasks, comb_tasks)
        layer_timing = coordinator.compose(workload, timings)

        energy = self.energy_model.compute(
            simd_ops=sum(t.simd_ops for t in agg_tasks),
            macs=sum(t.macs for t in comb_tasks),
            aggregation_buffer_bytes={
                "edge_buffer": aggregation_engine.edge_buffer.stats.total_bytes,
                "input_buffer": aggregation_engine.input_buffer.stats.total_bytes,
            },
            combination_buffer_bytes={
                "weight_buffer": combination_engine.weight_buffer.stats.total_bytes,
                "output_buffer": combination_engine.output_buffer.stats.total_bytes,
            },
            coordinator_buffer_bytes=coordinator.aggregation_buffer.stats.total_bytes,
            dram_bytes=dram_stats.bytes_transferred,
            cycles=layer_timing.total_cycles,
        )

        loaded_rows = sum(t.loaded_rows for t in agg_tasks)
        baseline_rows = sum(t.baseline_rows for t in agg_tasks)
        sparsity_reduction = 1.0 - loaded_rows / baseline_rows if baseline_rows else 0.0
        overflow = (aggregation_engine.edge_buffer.stats.overflow_events
                    + aggregation_engine.input_buffer.stats.overflow_events
                    + combination_engine.weight_buffer.stats.overflow_events
                    + combination_engine.output_buffer.stats.overflow_events
                    + coordinator.aggregation_buffer.stats.overflow_events)

        return LayerReport(
            name=workload.name,
            total_cycles=layer_timing.total_cycles,
            aggregation_cycles=layer_timing.aggregation_cycles,
            combination_cycles=layer_timing.combination_cycles,
            num_vertices=graph.num_vertices,
            num_edges=sum(t.num_edges for t in agg_tasks),
            simd_ops=sum(t.simd_ops for t in agg_tasks),
            macs=sum(t.macs for t in comb_tasks),
            dram_stats=dram_stats,
            dram_bytes_by_stream=stream_bytes,
            energy=energy,
            avg_vertex_latency_cycles=layer_timing.avg_vertex_latency_cycles,
            sparsity_reduction=sparsity_reduction,
            loaded_feature_rows=loaded_rows,
            baseline_feature_rows=baseline_rows,
            num_intervals=len(agg_tasks),
            buffer_overflows=overflow,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _service_memory(
        self,
        memory: MemoryAccessHandler,
        agg_tasks: Sequence[IntervalAggregation],
        comb_tasks: Sequence[IntervalCombination],
    ):
        """Service DRAM requests interval by interval and attribute cycles.

        In the pipelined modes the aggregation requests of interval ``i``
        arrive concurrently with the combination requests of interval ``i-1``
        (that is exactly the contention the access coordination addresses); in
        the non-pipelined mode the two engines never overlap, so their batches
        are serviced separately.
        """
        pipelined = self.config.pipeline_mode != PipelineMode.NONE
        num_intervals = len(agg_tasks)
        agg_dram = [0] * num_intervals
        comb_dram = [0] * num_intervals
        stream_bytes: Dict[str, int] = {}
        total_stats = DRAMStats()

        def account(requests: Sequence[MemoryRequest]) -> None:
            for request in requests:
                stream_bytes[request.stream] = stream_bytes.get(request.stream, 0) \
                    + request.num_bytes

        if pipelined:
            for step in range(num_intervals + 1):
                batch: List[MemoryRequest] = []
                if step < num_intervals:
                    batch.extend(agg_tasks[step].dram_requests)
                if step > 0:
                    batch.extend(comb_tasks[step - 1].dram_requests)
                if not batch:
                    continue
                account(batch)
                result = memory.service_batch(batch)
                total_stats = total_stats.merge(result.stats)
                if step < num_intervals:
                    agg_dram[step] += result.cycles_for(_AGGREGATION_STREAMS)
                if step > 0:
                    comb_dram[step - 1] += result.cycles_for(_COMBINATION_STREAMS)
        else:
            for i in range(num_intervals):
                account(agg_tasks[i].dram_requests)
                result = memory.service_batch(agg_tasks[i].dram_requests)
                total_stats = total_stats.merge(result.stats)
                agg_dram[i] = result.total_cycles
                account(comb_tasks[i].dram_requests)
                result = memory.service_batch(comb_tasks[i].dram_requests)
                total_stats = total_stats.merge(result.stats)
                comb_dram[i] = result.total_cycles

        timings = [
            IntervalTiming(
                interval_index=agg_tasks[i].interval_index,
                aggregation_cycles=max(agg_tasks[i].compute_cycles, agg_dram[i]),
                combination_cycles=max(comb_tasks[i].compute_cycles, comb_dram[i]),
            )
            for i in range(num_intervals)
        ]
        return timings, stream_bytes, total_stats

    def _add_spill_requests(
        self,
        workload: LayerWorkload,
        agg_tasks: Sequence[IntervalAggregation],
        comb_tasks: Sequence[IntervalCombination],
    ) -> None:
        """Without the inter-engine pipeline, aggregated features round-trip DRAM."""
        cfg = self.config
        granularity = cfg.hbm.row_buffer_bytes
        bytes_per_vertex = workload.combination.mlp.input_size * cfg.bytes_per_value
        for agg, comb in zip(agg_tasks, comb_tasks):
            spill = agg.num_vertices * bytes_per_vertex
            if spill <= 0:
                continue
            write_back = _chunk_requests("output_features",
                                         agg.interval_index * spill, spill, granularity)
            for request in write_back:
                request.is_write = True
            agg.dram_requests.extend(write_back)
            comb.dram_requests.extend(_chunk_requests(
                "input_features", agg.interval_index * spill, spill, granularity))

    def _run_diffpool_matmuls(self, model: DiffPoolModel, graph: Graph) -> LayerReport:
        """Account the three Eq. 8 matrix multiplications on the Combination Engine."""
        cfg = self.config
        from .systolic import SystolicArrayModel

        systolic = SystolicArrayModel(cfg.num_systolic_modules, cfg.systolic_rows,
                                      cfg.systolic_cols, cfg.bytes_per_value)
        cooperative = cfg.pipeline_mode == PipelineMode.ENERGY
        cycles = 0
        macs = 0
        dram_bytes = 0
        for matmul in model.extra_matmuls(graph):
            cost = systolic.layer_cost(matmul.m, matmul.k, matmul.n, cooperative)
            cycles += cost.cycles
            macs += cost.macs
            dram_bytes += (matmul.m * matmul.k + matmul.k * matmul.n
                           + matmul.m * matmul.n) * cfg.bytes_per_value
        dram_cycles = dram_bytes // cfg.hbm.peak_bandwidth_bytes_per_cycle
        total_cycles = max(cycles, dram_cycles)
        stats = DRAMStats(requests=0, bytes_transferred=dram_bytes,
                          busy_cycles=dram_cycles, total_channel_cycles=dram_cycles,
                          energy_pj=dram_bytes * 8 * cfg.hbm.energy_pj_per_bit)
        energy = self.energy_model.compute(
            simd_ops=0, macs=macs,
            aggregation_buffer_bytes={}, combination_buffer_bytes={},
            coordinator_buffer_bytes=0, dram_bytes=dram_bytes, cycles=total_cycles)
        return LayerReport(
            name="diffpool_matmuls",
            total_cycles=total_cycles,
            aggregation_cycles=0,
            combination_cycles=cycles,
            num_vertices=graph.num_vertices,
            num_edges=0,
            simd_ops=0,
            macs=macs,
            dram_stats=stats,
            dram_bytes_by_stream={"weights": dram_bytes},
            energy=energy,
            avg_vertex_latency_cycles=0.0,
            sparsity_reduction=0.0,
            loaded_feature_rows=0,
            baseline_feature_rows=0,
            num_intervals=1,
        )
