"""Combination Engine model (Section 4.4).

The engine takes the aggregated feature vectors of one interval from the
Aggregation Buffer and pushes them through the (possibly multi-layer) MLP on
the multi-granular systolic arrays, applying the activation in the Activate
Unit and coalescing the new features in the Output Buffer before they are
written back to DRAM.

Weights are fetched from DRAM into the Weight Buffer once per layer (they are
fully shared between vertices); if the weight matrices exceed the Weight
Buffer they are re-fetched per interval, which the model accounts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..hw.buffer import ScratchpadBuffer
from ..hw.dram import MemoryRequest
from ..models.layers import LayerWorkload
from .aggregation_engine import IntervalAggregation, _chunk_requests
from .config import HyGCNConfig, PipelineMode
from .systolic import SystolicArrayModel

__all__ = ["IntervalCombination", "CombinationEngine"]


@dataclass
class IntervalCombination:
    """The Combination Engine's work for one destination interval."""

    interval_index: int
    num_vertices: int
    macs: int
    compute_cycles: int
    weight_dram_bytes: int
    output_dram_bytes: int
    weight_buffer_read_bytes: int
    output_buffer_bytes: int
    activation_ops: int
    dram_requests: List[MemoryRequest] = field(default_factory=list)

    @property
    def dram_bytes(self) -> int:
        return sum(r.num_bytes for r in self.dram_requests)


class CombinationEngine:
    """Transaction-level model of the Combination Engine."""

    def __init__(self, config: HyGCNConfig):
        self.config = config
        self.weight_buffer = ScratchpadBuffer("weight_buffer", config.weight_buffer_bytes)
        self.output_buffer = ScratchpadBuffer("output_buffer", config.output_buffer_bytes)
        self.systolic = SystolicArrayModel(
            num_modules=config.num_systolic_modules,
            rows=config.systolic_rows,
            cols=config.systolic_cols,
            bytes_per_value=config.bytes_per_value,
        )

    # ------------------------------------------------------------------ #
    def mlp_weight_bytes(self, workload: LayerWorkload) -> int:
        """Total bytes of the layer's (multi-layer) MLP weights and biases."""
        return workload.combination.mlp.parameter_bytes(self.config.bytes_per_value)

    def weights_fit_on_chip(self, workload: LayerWorkload) -> bool:
        """Whether the whole MLP stays resident in the Weight Buffer."""
        return self.mlp_weight_bytes(workload) <= self.config.weight_buffer_bytes

    # ------------------------------------------------------------------ #
    def process_layer(
        self,
        workload: LayerWorkload,
        aggregation_tasks: Sequence[IntervalAggregation],
        cooperative: bool = None,
    ) -> List[IntervalCombination]:
        """Produce one :class:`IntervalCombination` per destination interval."""
        cfg = self.config
        if cooperative is None:
            cooperative = cfg.pipeline_mode == PipelineMode.ENERGY
        mlp = workload.combination.mlp
        weights_resident = self.weights_fit_on_chip(workload)
        weight_bytes_total = self.mlp_weight_bytes(workload)
        granularity = cfg.hbm.row_buffer_bytes
        out_bytes_per_vertex = workload.out_feature_length * cfg.bytes_per_value
        tasks: List[IntervalCombination] = []

        for i, agg in enumerate(aggregation_tasks):
            vertices = agg.num_vertices
            # --- systolic compute across all MLP layers ----------------------
            cycles = 0
            macs = 0
            weight_buffer_reads = 0
            for w in mlp.weights:
                cost = self.systolic.layer_cost(vertices, w.shape[0], w.shape[1], cooperative)
                cycles += cost.cycles
                macs += cost.macs
                weight_buffer_reads += cost.weight_buffer_read_bytes
            activation_ops = vertices * workload.out_feature_length

            # --- DRAM traffic -------------------------------------------------
            # Weights: fetched once per layer if resident, else once per interval.
            fetch_weights = (i == 0) or not weights_resident
            weight_dram = weight_bytes_total if fetch_weights else 0
            output_dram = vertices * out_bytes_per_vertex
            requests = []
            if weight_dram:
                requests.extend(_chunk_requests("weights", 0, weight_dram, granularity))
            requests.extend(_chunk_requests(
                "output_features",
                agg.interval_index * out_bytes_per_vertex * max(vertices, 1),
                output_dram, granularity))
            for request in requests:
                if request.stream == "output_features":
                    request.is_write = True

            # --- on-chip buffer traffic --------------------------------------
            self.weight_buffer.allocate("mlp", min(weight_bytes_total, cfg.weight_buffer_bytes))
            if weight_dram:
                self.weight_buffer.write(weight_dram)
            self.weight_buffer.read(weight_buffer_reads)
            self.output_buffer.write(output_dram)
            self.output_buffer.read(output_dram)

            tasks.append(IntervalCombination(
                interval_index=agg.interval_index,
                num_vertices=vertices,
                macs=macs,
                compute_cycles=cycles,
                weight_dram_bytes=weight_dram,
                output_dram_bytes=output_dram,
                weight_buffer_read_bytes=weight_buffer_reads,
                output_buffer_bytes=2 * output_dram,
                activation_ops=activation_ops,
                dram_requests=requests,
            ))
        return tasks
