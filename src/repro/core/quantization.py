"""Fixed-point quantisation utilities.

HyGCN computes in 32-bit fixed point, which the paper states "is enough to
maintain the accuracy of GCN inference" (Section 5.2.1).  The functional
models in :mod:`repro.models` use float64; this module provides the
fixed-point datatype and conversion helpers so the claim can be checked
end-to-end: quantise the inputs and parameters, run the same model, and
measure how far the embeddings (and the resulting predictions) move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..graphs.graph import Graph
from ..models.base import GCNModel

__all__ = ["FixedPointFormat", "quantize", "dequantize", "quantization_error",
           "quantize_model", "quantize_graph"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``total_bits`` and ``frac_bits``.

    The default Q16.15-in-32 format mirrors the paper's 32-bit datapath: one
    sign bit, 16 integer bits and 15 fractional bits.
    """

    total_bits: int = 32
    frac_bits: int = 15

    def __post_init__(self) -> None:
        if self.total_bits <= 1 or not (0 <= self.frac_bits < self.total_bits):
            raise ValueError("invalid fixed-point format")

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        return -(2 ** (self.total_bits - 1)) * self.scale

    @property
    def bytes_per_value(self) -> int:
        return (self.total_bits + 7) // 8


def quantize(values: np.ndarray, fmt: FixedPointFormat = FixedPointFormat()) -> np.ndarray:
    """Quantise ``values`` to integers in the given fixed-point format."""
    values = np.asarray(values, dtype=np.float64)
    scaled = np.round(values / fmt.scale)
    lo = -(2 ** (fmt.total_bits - 1))
    hi = 2 ** (fmt.total_bits - 1) - 1
    return np.clip(scaled, lo, hi).astype(np.int64)


def dequantize(codes: np.ndarray, fmt: FixedPointFormat = FixedPointFormat()) -> np.ndarray:
    """Convert fixed-point integer codes back to floats."""
    return np.asarray(codes, dtype=np.float64) * fmt.scale


def quantization_error(values: np.ndarray,
                       fmt: FixedPointFormat = FixedPointFormat()) -> float:
    """Maximum absolute round-trip error of quantising ``values``."""
    round_trip = dequantize(quantize(values, fmt), fmt)
    return float(np.max(np.abs(np.asarray(values, dtype=np.float64) - round_trip)))


def quantize_graph(graph: Graph, fmt: FixedPointFormat = FixedPointFormat()) -> Graph:
    """Return a graph whose feature matrix has been round-tripped through ``fmt``."""
    features = dequantize(quantize(graph.features, fmt), fmt)
    return graph.with_features(features, name=f"{graph.name}[q{fmt.total_bits}]")


def quantize_model(model: GCNModel, fmt: FixedPointFormat = FixedPointFormat()) -> GCNModel:
    """Round-trip every MLP weight and bias of ``model`` through ``fmt`` in place.

    Returns the same model object for convenience (the functional models keep
    their parameters as plain numpy arrays, so in-place quantisation is the
    least surprising behaviour for experiment scripts).
    """
    for layer in model.layers:
        mlp = layer.combination.mlp
        mlp.weights = [dequantize(quantize(w, fmt), fmt) for w in mlp.weights]
        mlp.biases = [dequantize(quantize(b, fmt), fmt) for b in mlp.biases]
    return model


def compare_precision(model: GCNModel, graph: Graph,
                      fmt: FixedPointFormat = FixedPointFormat()) -> Tuple[float, float]:
    """Run ``model`` in float and fixed point; return (max abs error, rel error).

    The relative error is measured against the float result's dynamic range,
    which is the metric that determines whether downstream predictions change.
    """
    reference = model.forward(graph)
    quantized_graph = quantize_graph(graph, fmt)
    quantized_model = quantize_model(model, fmt)
    result = quantized_model.forward(quantized_graph)
    abs_error = float(np.max(np.abs(reference - result)))
    dynamic_range = float(np.max(np.abs(reference))) or 1.0
    return abs_error, abs_error / dynamic_range
