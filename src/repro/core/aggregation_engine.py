"""Aggregation Engine model (Section 4.3).

The engine processes one destination-vertex interval at a time.  For each
interval it:

1. samples the incoming edges (the Sampler),
2. determines which source-feature rows must be loaded -- every row-block of
   the static partition without optimisation, or only the effectual windows
   produced by the Sparsity Eliminator (window sliding + shrinking),
3. streams edges through the SIMD cores in vertex-disperse mode: the
   element-wise reductions of all vertices are spread over all
   ``num_simd_cores x simd_width`` lanes so no lane idles,
4. accumulates partial results in the Aggregation Buffer.

The output is a list of :class:`IntervalAggregation` transactions carrying the
compute-cycle cost, the DRAM requests and the buffer traffic of each interval;
the Coordinator composes them with the Combination Engine's transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import IntervalShardPartition, partition_graph
from ..graphs.sampling import NeighborSampler
from ..hw.buffer import DoubleBuffer
from ..hw.dram import MemoryRequest
from ..models.layers import LayerWorkload
from .config import HyGCNConfig
from .sparsity import SparsityEliminator, SparsityReport

__all__ = ["IntervalAggregation", "AggregationEngine"]


@dataclass
class IntervalAggregation:
    """The Aggregation Engine's work for one destination interval."""

    interval_index: int
    num_vertices: int
    num_edges: int
    loaded_rows: int
    baseline_rows: int
    compute_cycles: int
    simd_ops: int
    input_feature_bytes: int
    edge_bytes: int
    aggregation_buffer_bytes: int
    dram_requests: List[MemoryRequest] = field(default_factory=list)
    sparsity: Optional[SparsityReport] = None

    @property
    def dram_bytes(self) -> int:
        return sum(r.num_bytes for r in self.dram_requests)


class AggregationEngine:
    """Transaction-level model of the Aggregation Engine."""

    def __init__(self, config: HyGCNConfig):
        self.config = config
        self.edge_buffer = DoubleBuffer("edge_buffer", config.edge_buffer_bytes)
        self.input_buffer = DoubleBuffer("input_buffer", config.input_buffer_bytes)

    # ------------------------------------------------------------------ #
    def prepare_graph(self, workload: LayerWorkload) -> Graph:
        """Apply the Sampler: materialise the sampled edge structure."""
        sampling = workload.aggregation.sampling
        if sampling is not None and sampling.enabled:
            return NeighborSampler(sampling).sample_graph(workload.graph)
        return workload.graph

    def partition(self, graph: Graph, feature_length: int) -> IntervalShardPartition:
        """Interval-shard partition sized by the on-chip buffer capacities."""
        interval_size = min(self.config.interval_size(feature_length), graph.num_vertices)
        shard_height = min(self.config.shard_height(feature_length), graph.num_vertices)
        return partition_graph(graph, interval_size, shard_height)

    # ------------------------------------------------------------------ #
    def process_layer(
        self,
        workload: LayerWorkload,
        graph: Optional[Graph] = None,
        partition: Optional[IntervalShardPartition] = None,
        feature_length: Optional[int] = None,
    ) -> List[IntervalAggregation]:
        """Produce one :class:`IntervalAggregation` per destination interval.

        HyGCN follows the edge-centric programming model (Algorithm 1):
        aggregation runs before combination and therefore operates at the
        layer's *input* feature length, regardless of the algebraic reordering
        PyG applies on CPU/GPU.  ``feature_length`` can override this for
        what-if studies.
        """
        cfg = self.config
        feature_length = feature_length or workload.in_feature_length
        graph = graph if graph is not None else self.prepare_graph(workload)
        partition = partition if partition is not None else self.partition(graph, feature_length)
        bytes_per_feature_row = feature_length * cfg.bytes_per_value
        bytes_per_edge = 2 * cfg.bytes_per_value
        eliminator = SparsityEliminator(partition.shard_height)
        tasks: List[IntervalAggregation] = []

        for interval in partition.intervals:
            edges = self._interval_edges(graph, interval.start, interval.stop)
            num_edges = int(edges.shape[0])
            baseline_rows = graph.num_vertices
            if cfg.enable_sparsity_elimination:
                report = eliminator.eliminate(edges[:, 0] if num_edges else [],
                                              graph.num_vertices,
                                              baseline_rows=baseline_rows)
                loaded_rows = report.loaded_rows
            else:
                report = None
                loaded_rows = baseline_rows if num_edges else 0

            # --- compute: vertex-disperse mode keeps every SIMD lane busy ---
            simd_ops = (num_edges + interval.size) * feature_length
            compute_cycles = int(np.ceil(simd_ops / cfg.total_simd_lanes)) if simd_ops else 0

            # --- DRAM traffic -------------------------------------------------
            input_bytes = loaded_rows * bytes_per_feature_row
            edge_bytes = num_edges * bytes_per_edge
            requests = self._build_requests(report, loaded_rows, bytes_per_feature_row,
                                            edge_bytes)

            # --- on-chip buffer traffic --------------------------------------
            # the double buffer holds one interval's edges at a time
            self.edge_buffer.allocate("current_interval", min(
                edge_bytes, self.edge_buffer.working_capacity))
            self.edge_buffer.write(edge_bytes)
            self.edge_buffer.read(edge_bytes)
            self.input_buffer.write(input_bytes)
            # each edge reads its source feature vector from the Input Buffer
            self.input_buffer.read(num_edges * bytes_per_feature_row)
            # partial results are read-modified-written per edge, and the final
            # aggregated interval is written once for the Combination Engine
            agg_buffer_bytes = (2 * num_edges + interval.size) * bytes_per_feature_row

            tasks.append(IntervalAggregation(
                interval_index=interval.index,
                num_vertices=interval.size,
                num_edges=num_edges,
                loaded_rows=loaded_rows,
                baseline_rows=baseline_rows,
                compute_cycles=compute_cycles,
                simd_ops=simd_ops,
                input_feature_bytes=input_bytes,
                edge_bytes=edge_bytes,
                aggregation_buffer_bytes=agg_buffer_bytes,
                dram_requests=requests,
                sparsity=report,
            ))
        return tasks

    # ------------------------------------------------------------------ #
    @staticmethod
    def _interval_edges(graph: Graph, start: int, stop: int) -> np.ndarray:
        """All (src, dst) edges whose destination lies in ``[start, stop)``."""
        csc = graph.csc
        lo, hi = csc.indptr[start], csc.indptr[stop]
        srcs = csc.indices[lo:hi]
        if srcs.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        lengths = np.diff(csc.indptr[start:stop + 1])
        dsts = np.repeat(np.arange(start, stop), lengths)
        return np.stack([srcs, dsts], axis=1)

    def _build_requests(
        self,
        report: Optional[SparsityReport],
        loaded_rows: int,
        bytes_per_feature_row: int,
        edge_bytes: int,
    ) -> List[MemoryRequest]:
        """DRAM requests for one interval: the edge list plus feature windows."""
        granularity = self.config.hbm.row_buffer_bytes
        requests: List[MemoryRequest] = []
        # Edge array: streamed sequentially from the CSC structure.
        requests.extend(_chunk_requests("edges", 0, edge_bytes, granularity))
        # Input features: one contiguous run per effectual window (or one big
        # run covering all rows when sparsity elimination is off).
        if report is not None:
            for window in report.windows:
                start = window.start * bytes_per_feature_row
                size = window.num_rows * bytes_per_feature_row
                requests.extend(_chunk_requests("input_features", start, size, granularity))
        elif loaded_rows:
            requests.extend(_chunk_requests(
                "input_features", 0, loaded_rows * bytes_per_feature_row, granularity))
        return requests


def _chunk_requests(stream: str, base_address: int, total_bytes: int,
                    granularity: int) -> List[MemoryRequest]:
    """Split a contiguous transfer into row-buffer-sized DRAM requests."""
    requests = []
    offset = 0
    while offset < total_bytes:
        chunk = min(granularity, total_bytes - offset)
        requests.append(MemoryRequest(stream, base_address + offset, chunk))
        offset += chunk
    return requests
