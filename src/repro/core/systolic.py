"""Multi-granular systolic array model (Section 4.4).

The Combination Engine contains ``num_systolic_modules`` systolic modules of
``systolic_rows x systolic_cols`` processing elements each.  The modules can be
used *independently* (each module combines a small group of vertices as soon
as their aggregated features are ready -- low vertex latency) or
*cooperatively* (all modules are chained into one large array and a large
group of vertices is combined together; the weights stream from the Weight
Buffer once and flow module to module, so Weight Buffer traffic and hence
energy drop).

Weight streaming is double-buffered inside the PEs, so re-streaming weights
for a new vertex group costs Weight Buffer *energy* but is hidden behind the
previous group's computation; cycle cost is therefore throughput-bound
(``macs / PEs``) plus a one-time pipeline fill per layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

__all__ = ["SystolicGroupCost", "SystolicArrayModel"]


@dataclass(frozen=True)
class SystolicGroupCost:
    """Cost of combining a set of vertices through one MVM layer."""

    group_vertices: int
    cycles: int
    macs: int
    weight_buffer_read_bytes: int

    @property
    def cycles_per_vertex(self) -> float:
        return self.cycles / self.group_vertices if self.group_vertices else 0.0


class SystolicArrayModel:
    """Cycle/traffic cost model of the multi-granular systolic array."""

    def __init__(self, num_modules: int, rows: int, cols: int, bytes_per_value: int = 4):
        if min(num_modules, rows, cols) < 1:
            raise ValueError("array dimensions must be positive")
        self.num_modules = num_modules
        self.rows = rows
        self.cols = cols
        self.bytes_per_value = bytes_per_value

    # ------------------------------------------------------------------ #
    @property
    def pes_per_module(self) -> int:
        return self.rows * self.cols

    @property
    def total_pes(self) -> int:
        return self.num_modules * self.pes_per_module

    def small_group_size(self) -> int:
        """Vertices one module combines per wave in independent mode (Fig. 7a)."""
        return self.rows

    def large_group_size(self) -> int:
        """Vertices assembled before the cooperative (chained) array starts (Fig. 7b)."""
        return self.rows * self.num_modules

    def group_size(self, cooperative: bool) -> int:
        """Vertices that must be aggregated before combination can start."""
        return self.large_group_size() if cooperative else self.small_group_size()

    # ------------------------------------------------------------------ #
    def _fill_cycles(self, cooperative: bool) -> int:
        """Pipeline fill latency of the array configuration."""
        rows = self.rows * self.num_modules if cooperative else self.rows
        return rows + self.cols

    def weight_tile_bytes(self, in_features: int, out_features: int) -> int:
        return in_features * out_features * self.bytes_per_value

    def group_cost(self, group_vertices: int, in_features: int, out_features: int,
                   cooperative: bool) -> SystolicGroupCost:
        """Cost of combining one vertex group (a wave or a burst)."""
        if group_vertices <= 0:
            return SystolicGroupCost(0, 0, 0, 0)
        macs = group_vertices * in_features * out_features
        compute_pes = self.total_pes if cooperative else \
            self.pes_per_module * max(1, min(self.num_modules, ceil(group_vertices / self.rows)))
        cycles = ceil(macs / compute_pes) + self._fill_cycles(cooperative)
        # In either mode a group's weights are streamed from the Weight Buffer
        # once; the modes differ in how many vertices share that stream.
        weight_reads = self.weight_tile_bytes(in_features, out_features)
        return SystolicGroupCost(group_vertices, int(cycles), macs, int(weight_reads))

    def layer_cost(self, num_vertices: int, in_features: int, out_features: int,
                   cooperative: bool) -> SystolicGroupCost:
        """Cost of combining ``num_vertices`` vertices, grouped by the mode's granularity.

        Cycle cost is throughput-bound with a single pipeline fill (weight
        re-streaming between groups is hidden by double buffering); Weight
        Buffer traffic is paid per group, which is where the independent and
        cooperative modes diverge.
        """
        if num_vertices <= 0:
            return SystolicGroupCost(0, 0, 0, 0)
        macs = num_vertices * in_features * out_features
        cycles = ceil(macs / self.total_pes) + self._fill_cycles(cooperative)
        group = self.group_size(cooperative)
        num_groups = ceil(num_vertices / group)
        tile = self.weight_tile_bytes(in_features, out_features)
        # Each group streams the weights from the Weight Buffer once.  The
        # cooperative mode's groups are ``num_modules`` times larger, so the
        # same weights are shared by many more vertices and the buffer traffic
        # (hence energy) drops accordingly.
        weight_reads = num_groups * tile
        return SystolicGroupCost(num_vertices, int(cycles), macs, int(weight_reads))
