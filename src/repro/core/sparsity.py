"""Data-aware sparsity elimination: window sliding and shrinking.

Section 4.3.3 / Fig. 5(c)(d) / Algorithm 4 of the paper.  For one destination
interval, the adjacency column block is scanned top-to-bottom with a window of
``shard_height`` source rows:

* **sliding** -- the window slides downward until an edge appears in its top
  row; everything it skipped over contains no edges and is never loaded;
* **shrinking** -- the bottom row of the stopped window moves upward until it
  meets an edge, trimming trailing empty rows.

The recorded *effectual windows* are the only source-feature ranges the
Aggregation Engine loads from DRAM.  Without elimination the engine loads
every row-block of the static partition for every interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["EffectualWindow", "SparsityReport", "SparsityEliminator"]


@dataclass(frozen=True)
class EffectualWindow:
    """A contiguous source-row range ``[start, stop)`` that must be loaded."""

    start: int
    stop: int

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError("window must contain at least one row")


@dataclass
class SparsityReport:
    """Outcome of sparsity elimination for one destination interval."""

    windows: List[EffectualWindow]
    total_rows: int          # rows the baseline (no elimination) would load
    effectual_rows: int      # rows with at least one edge

    @property
    def loaded_rows(self) -> int:
        """Rows actually loaded after sliding + shrinking."""
        return sum(w.num_rows for w in self.windows)

    @property
    def eliminated_rows(self) -> int:
        return self.total_rows - self.loaded_rows

    @property
    def sparsity_reduction(self) -> float:
        """Fraction of baseline row loads removed (the Fig. 15c metric)."""
        if self.total_rows == 0:
            return 0.0
        return self.eliminated_rows / self.total_rows

    @property
    def residual_waste(self) -> int:
        """Loaded rows that carry no edge (sparsity that shrinking cannot remove)."""
        return self.loaded_rows - self.effectual_rows


class SparsityEliminator:
    """Implements window sliding/shrinking over one interval's source rows."""

    def __init__(self, window_height: int):
        if window_height < 1:
            raise ValueError("window_height must be >= 1")
        self.window_height = window_height

    # ------------------------------------------------------------------ #
    def windows_for_rows(self, effectual_rows: Sequence[int], num_rows: int) -> List[EffectualWindow]:
        """Compute effectual windows from the sorted set of rows holding edges.

        ``effectual_rows`` are the source-vertex rows with at least one edge
        into the current interval; ``num_rows`` is the total number of source
        rows (graph vertices).
        """
        rows = np.unique(np.asarray(effectual_rows, dtype=np.int64))
        if rows.size and (rows[0] < 0 or rows[-1] >= num_rows):
            raise ValueError("effectual rows out of range")
        windows: List[EffectualWindow] = []
        i = 0
        height = self.window_height
        while i < len(rows):
            # Sliding: the window's top row lands on the next effectual row.
            win_start = int(rows[i])
            win_end_excl = min(win_start + height, num_rows)
            # All effectual rows covered by this (pre-shrink) window.
            j = int(np.searchsorted(rows, win_end_excl, side="left"))
            covered_last = int(rows[j - 1])
            # Shrinking: pull the bottom up to the last effectual row.
            windows.append(EffectualWindow(win_start, covered_last + 1))
            # The next window's search starts below the pre-shrink bottom row.
            next_row_pos = win_start + height
            while j < len(rows) and rows[j] < next_row_pos:  # pragma: no cover - defensive
                j += 1
            i = j
        return windows

    def eliminate(self, source_rows: Sequence[int], num_rows: int,
                  baseline_rows: int = None) -> SparsityReport:
        """Run elimination for one interval.

        Parameters
        ----------
        source_rows:
            Source-vertex ids of every edge landing in the interval (duplicates
            allowed; they are collapsed internally).
        num_rows:
            Total number of source rows in the graph.
        baseline_rows:
            Rows the unoptimised design would load for this interval; defaults
            to ``num_rows`` (i.e. the whole feature matrix, interval by
            interval, per Algorithm 2).
        """
        rows = np.unique(np.asarray(source_rows, dtype=np.int64)) if len(source_rows) \
            else np.empty(0, dtype=np.int64)
        windows = self.windows_for_rows(rows, num_rows) if rows.size else []
        return SparsityReport(
            windows=windows,
            total_rows=num_rows if baseline_rows is None else baseline_rows,
            effectual_rows=int(rows.size),
        )
