"""Coordinator: inter-engine pipeline and the ping-pong Aggregation Buffer.

Section 4.5.1.  The Coordinator owns the Aggregation Buffer that decouples the
two engines and composes their per-interval transactions according to the
selected pipeline mode:

* ``none``      -- phase-by-phase execution: every interval's aggregated
  features spill to DRAM and are read back for combination, and the two
  engines never overlap (the N-PP baseline of Fig. 16a/b);
* ``latency``   -- the ping-pong buffer lets interval ``i+1`` aggregate while
  interval ``i`` combines; the systolic modules work independently so small
  vertex groups are combined as soon as they are ready;
* ``energy``    -- same overlap, but the systolic modules cooperate on large
  assembled groups to maximise weight reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..hw.buffer import PingPongBuffer
from ..models.layers import LayerWorkload
from .aggregation_engine import IntervalAggregation
from .combination_engine import IntervalCombination
from .config import HyGCNConfig, PipelineMode
from .systolic import SystolicArrayModel

__all__ = ["IntervalTiming", "LayerTiming", "Coordinator"]


@dataclass
class IntervalTiming:
    """Engine-ready times of one interval after DRAM attribution."""

    interval_index: int
    aggregation_cycles: int
    combination_cycles: int


@dataclass
class LayerTiming:
    """Composed timing of one layer under a pipeline mode."""

    total_cycles: int
    aggregation_cycles: int
    combination_cycles: int
    avg_vertex_latency_cycles: float
    pipeline_mode: str


class Coordinator:
    """Composes engine transactions into end-to-end layer timing."""

    def __init__(self, config: HyGCNConfig):
        self.config = config
        self.aggregation_buffer = PingPongBuffer(
            "aggregation_buffer", config.aggregation_buffer_bytes)
        self.systolic = SystolicArrayModel(
            num_modules=config.num_systolic_modules,
            rows=config.systolic_rows,
            cols=config.systolic_cols,
            bytes_per_value=config.bytes_per_value,
        )

    # ------------------------------------------------------------------ #
    def record_buffer_traffic(
        self,
        workload: LayerWorkload,
        aggregation_tasks: Sequence[IntervalAggregation],
    ) -> None:
        """Account the Aggregation (ping-pong) Buffer traffic of one layer."""
        bytes_per_value = self.config.bytes_per_value
        mlp_in = workload.combination.mlp.input_size
        for task in aggregation_tasks:
            # partial-result read-modify-write during aggregation
            self.aggregation_buffer.write(task.aggregation_buffer_bytes // 2)
            self.aggregation_buffer.read(task.aggregation_buffer_bytes // 2)
            # the Combination Engine drains the finished chunk
            self.aggregation_buffer.read(task.num_vertices * mlp_in * bytes_per_value)
            # one ping-pong chunk holds the active interval's aggregated features
            self.aggregation_buffer.allocate(
                "active_chunk",
                min(task.num_vertices * mlp_in * bytes_per_value,
                    self.aggregation_buffer.chunk_capacity))
            self.aggregation_buffer.swap()

    # ------------------------------------------------------------------ #
    def compose(
        self,
        workload: LayerWorkload,
        timings: Sequence[IntervalTiming],
        pipeline_mode: str = None,
    ) -> LayerTiming:
        """Compose per-interval engine times into the layer's execution time."""
        mode = pipeline_mode or self.config.pipeline_mode
        if mode not in PipelineMode.ALL:
            raise ValueError(f"unknown pipeline mode {mode!r}")
        agg = [t.aggregation_cycles for t in timings]
        comb = [t.combination_cycles for t in timings]
        total_agg, total_comb = sum(agg), sum(comb)
        if not timings:
            return LayerTiming(0, 0, 0, 0.0, mode)

        if mode == PipelineMode.NONE:
            total = total_agg + total_comb
        else:
            # Two-stage pipeline over intervals: while interval i combines,
            # interval i+1 aggregates out of the other ping-pong chunk.
            total = agg[0]
            for i in range(1, len(timings)):
                total += max(agg[i], comb[i - 1])
            total += comb[-1]

        vertex_latency = self._vertex_latency(workload, timings, mode)
        return LayerTiming(
            total_cycles=int(total),
            aggregation_cycles=int(total_agg),
            combination_cycles=int(total_comb),
            avg_vertex_latency_cycles=vertex_latency,
            pipeline_mode=mode,
        )

    # ------------------------------------------------------------------ #
    def _vertex_latency(
        self,
        workload: LayerWorkload,
        timings: Sequence[IntervalTiming],
        mode: str,
    ) -> float:
        """Average per-vertex latency: group assembly wait + group combination.

        A vertex's new feature is ready once (a) its own aggregation and that
        of the other vertices in its combination group have finished and (b)
        the group has moved through the systolic array.  The latency-aware
        pipeline uses small groups (one module), the energy-aware pipeline
        waits for the large cooperative group; without a pipeline the vertex
        additionally waits for its whole interval to spill to and return from
        DRAM, which we approximate with the interval's full aggregation time.
        """
        total_vertices = workload.graph.num_vertices or 1
        total_agg = sum(t.aggregation_cycles for t in timings)
        agg_per_vertex = total_agg / total_vertices
        cooperative = mode == PipelineMode.ENERGY
        group = self.systolic.group_size(cooperative)
        mlp = workload.combination.mlp
        group_cycles = 0
        for w in mlp.weights:
            cost = self.systolic.group_cost(min(group, total_vertices),
                                            w.shape[0], w.shape[1], cooperative)
            group_cycles += cost.cycles
        assembly_wait = min(group, total_vertices) * agg_per_vertex
        if mode == PipelineMode.NONE:
            avg_interval_vertices = total_vertices / max(1, len(timings))
            assembly_wait = avg_interval_vertices * agg_per_vertex
        return float(assembly_wait + group_cycles)
