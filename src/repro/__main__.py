"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the common workflows without writing a script:

* ``simulate`` -- run one model on one dataset on the HyGCN simulator and
  print the report (optionally comparing against the CPU/GPU baselines);
* ``serve``    -- replay request traffic against a fleet of simulated HyGCN
  chips with batching, dispatch and caching, and print the latency /
  throughput / SLO report; with ``--tenants spec.json`` the fleet is shared
  by several tenants behind a weighted-fair-queueing scheduler and the
  report adds fairness and cross-tenant isolation tables; ``--autoscale`` /
  ``--admission`` / ``--degrade`` arm the elastic control plane;
  ``--fleet-spec`` / ``--shape-mix`` mix HyGCN chip shapes in one fleet
  and ``--dispatch shape-aware`` routes each batch to the shape that
  serves it fastest; ``--trace-out`` records per-request spans as Chrome
  trace-event JSON and ``--metrics-out`` scrapes a metrics registry on the
  simulated clock (docs/observability.md); ``--trace-capture`` records the
  offered request stream into a compact binary trace and ``--replay``
  serves a captured trace back, reproducing the original report
  bit-for-bit (docs/loadtest.md); ``--json`` emits the full
  machine-readable report;
* ``trace-report`` -- summarize a trace written by ``serve --trace-out``:
  per-phase p50/p99 time-in-phase and the slowest requests' span trees;
* ``trace-stats`` -- characterise a request trace written by
  ``serve --trace-capture``: arrival burstiness, Zipf popularity fit,
  per-tenant shares and the overlap-potential histogram;
* ``loadtest`` -- sweep arrival rate to the SLO knee (max sustainable
  RPS) per chip count and write the ``BENCH_loadtest.json`` trajectory;
* ``sweep``    -- run one of the named ablation/scalability sweeps;
* ``info``     -- print the dataset registry (Table 4), the model zoo
  (Table 5) and the default accelerator configuration (Table 6/7 view).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional, Sequence

from .analysis import (
    memory_coordination_sweep,
    pipeline_mode_sweep,
    print_table,
    sampling_factor_sweep,
    sparsity_elimination_sweep,
    stacked_optimization_ablation,
    systolic_module_sweep,
    aggregation_buffer_sweep,
)
from .baselines import PyGCPUModel, PyGGPUModel
from .core import HyGCNConfig, HyGCNSimulator, PipelineMode
from .graphs import DATASETS, dataset_table, load_dataset
from .hw import AreaPowerModel
from .models import MODEL_NAMES, build_model, model_table
from .serving import (
    ALL_BATCH_POLICIES,
    ARRIVAL_PROCESSES,
    AUTOSCALE_POLICIES,
    DISPATCH_POLICIES,
    INVALIDATION_POLICIES,
    PARTITIONERS,
    SCALE_SHAPE_POLICIES,
    SHAPE_MIXES,
    ControlConfig,
    FleetConfig,
    Instrumentation,
    InterconnectConfig,
    LoadTestConfig,
    ShardingConfig,
    TraceWriter,
    fleet_spec_for_mix,
    format_trace_report,
    format_trace_stats,
    load_fleet_spec,
    load_request_trace,
    load_tenant_specs,
    load_trace,
    run_loadtest,
    run_multi_tenant,
    run_serving,
    trace_report,
    trace_stats,
    validate_trace,
)

_LOG_LEVELS = ("debug", "info", "warning", "error")

_SWEEPS = {
    "sparsity": sparsity_elimination_sweep,
    "pipeline": pipeline_mode_sweep,
    "memory": memory_coordination_sweep,
    "sampling": sampling_factor_sweep,
    "buffer": aggregation_buffer_sweep,
    "systolic": systolic_module_sweep,
    "ablation": None,  # handled separately (per-dataset signature differs)
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HyGCN reproduction: simulate GCN workloads on the hybrid accelerator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one model on one dataset")
    simulate.add_argument("--model", choices=MODEL_NAMES, default="GCN")
    simulate.add_argument("--dataset", choices=sorted(DATASETS), default="CR")
    simulate.add_argument("--pipeline", choices=PipelineMode.ALL,
                          default=PipelineMode.LATENCY)
    simulate.add_argument("--no-sparsity", action="store_true",
                          help="disable window sliding/shrinking")
    simulate.add_argument("--no-coordination", action="store_true",
                          help="disable memory access coordination")
    simulate.add_argument("--compare", action="store_true",
                          help="also run the PyG-CPU / PyG-GPU baseline models")
    simulate.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="serve request traffic on a fleet of simulated chips")
    serve.add_argument("--model", type=str.upper, choices=MODEL_NAMES, default="GCN")
    serve.add_argument("--dataset", type=str.upper, choices=sorted(DATASETS),
                       default="CR")
    serve.add_argument("--chips", type=int, default=4,
                       help="number of accelerator instances in the fleet")
    serve.add_argument("--requests", type=int, default=1000,
                       help="number of inference requests to replay")
    serve.add_argument("--rate", type=float, default=None,
                       help="mean arrival rate in requests/s of simulated time "
                            "(default: calibrated to --utilization of capacity)")
    serve.add_argument("--utilization", type=float, default=0.7,
                       help="target fleet load when --rate is not given")
    serve.add_argument("--arrival", choices=ARRIVAL_PROCESSES, default="poisson")
    serve.add_argument("--trace-file", default=None,
                       help="file with one arrival timestamp (seconds) per line, "
                            "required for --arrival trace")
    serve.add_argument("--skew", type=float, default=0.8,
                       help="Zipf exponent of target-vertex popularity (0 = uniform)")
    serve.add_argument("--batch-policy", choices=ALL_BATCH_POLICIES,
                       default="timeout",
                       help="flush trigger (size/timeout/slo) or formation "
                            "policy (fifo/overlap/continuous, see "
                            "docs/batching.md)")
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--batch-timeout-ms", type=float, default=None,
                       help="timeout-flush budget (default: adaptive)")
    batching = serve.add_argument_group(
        "overlap-aware batching",
        "tuning for the overlap/continuous formation policies "
        "(see docs/batching.md); these flags error unless --batch-policy "
        "is overlap or continuous (--tenants mode: any tenant may opt in, "
        "so they always apply there)")
    batching.add_argument("--overlap-k", type=int, default=None,
                          help="hop depth of the neighbourhood signatures "
                               "(default 1, capped to --hops)")
    batching.add_argument("--min-overlap", type=float, default=None,
                          help="similarity floor for growing an overlap "
                               "group; 0 always fills batches (default 0)")
    batching.add_argument("--join-window-ms", type=float, default=None,
                          help="continuous: late-join window after batch "
                               "formation (default: adaptive, the batch "
                               "timeout)")
    batching.add_argument("--staleness-ms", type=float, default=None,
                          help="continuous: max wait of a batch's oldest "
                               "request before joins stop (default: "
                               "adaptive, half the SLO)")
    serve.add_argument("--dispatch", choices=DISPATCH_POLICIES,
                       default="round-robin",
                       help="chip-selection policy; shape-aware routes each "
                            "batch to the chip shape that serves its "
                            "profile fastest (docs/heterogeneity.md)")
    hetero = serve.add_argument_group(
        "heterogeneous fleet",
        "mix HyGCN chip shapes in one fleet (see docs/heterogeneity.md); "
        "--fleet-spec and --shape-mix are mutually exclusive, and either "
        "works for single- and multi-tenant serving alike")
    hetero.add_argument("--fleet-spec", default=None, metavar="SPEC.JSON",
                        help="JSON fleet spec, e.g. {\"shapes\": [{\"preset\""
                             ": \"agg_heavy\", \"count\": 4}]}; overrides "
                             "--chips with the spec's roster size")
    hetero.add_argument("--shape-mix", choices=sorted(SHAPE_MIXES),
                        default=None,
                        help="named shape mix sized to --chips "
                             "(mixed = 50/50 agg_heavy/comb_heavy)")
    sharding = serve.add_argument_group(
        "sharded execution",
        "partition the dataset across the whole fleet and serve every "
        "request on the resulting chip group (see docs/sharding.md); "
        "--shards arms it (overriding --chips with the group size) and "
        "the remaining flags tune an armed group and error without one; "
        "incompatible with the elastic control plane")
    sharding.add_argument("--shards", type=int, default=None,
                          help="number of graph shards = chips in the "
                               "group (1 reproduces the unsharded report "
                               "bit-for-bit)")
    sharding.add_argument("--partitioner", choices=sorted(PARTITIONERS),
                          default=None,
                          help="dataset partitioner (default locality, "
                               "the greedy edge-cut minimiser)")
    sharding.add_argument("--halo-cache-mb", type=float, default=None,
                          help="per-chip ghost-feature cache in MiB "
                               "(default 4; 0 disables it)")
    sharding.add_argument("--interconnect-gbps", type=float, default=None,
                          help="chip-to-chip link bandwidth in GB/s for "
                               "halo exchange and gather (default 24)")
    serve.add_argument("--hops", type=int, default=2,
                       help="k-hop neighbourhood depth per request")
    serve.add_argument("--fanout", type=int, default=8,
                       help="max sampled in-neighbours per hop")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="result-cache entries (0 disables the cache)")
    serve.add_argument("--slo-ms", type=float, default=None,
                       help="latency SLO in milliseconds (default: adaptive)")
    serve.add_argument("--tenants", default=None, metavar="SPEC.JSON",
                       help="multi-tenant mode: JSON spec binding each tenant "
                            "to a model, dataset, arrival process, WFQ weight "
                            "and SLO (per-stream flags above are then ignored; "
                            "--chips/--utilization/--seed still apply)")
    serve.add_argument("--no-isolation", action="store_true",
                       help="multi-tenant mode: skip the run-alone baselines "
                            "(faster, but no cross-tenant p99 inflation)")
    control = serve.add_argument_group(
        "elastic control plane",
        "autoscaling / admission control / graceful degradation for "
        "single- and multi-tenant serving alike (see docs/control.md). "
        "--autoscale, --admission/--admission-rate and --degrade arm the "
        "control plane; the remaining flags tune an armed plane and error "
        "without one")
    control.add_argument("--autoscale", choices=AUTOSCALE_POLICIES,
                         default=None,
                         help="grow/shrink the fleet under this policy")
    control.add_argument("--min-chips", type=int, default=1,
                         help="autoscaler floor (default 1)")
    control.add_argument("--max-chips", type=int, default=None,
                         help="autoscaler ceiling (default: 2x --chips)")
    control.add_argument("--control-interval-ms", type=float, default=None,
                         help="control-loop observation interval "
                              "(default: adaptive, ~2 probe-batch times)")
    control.add_argument("--warmup-ms", type=float, default=None,
                         help="per-added-chip warm-up during which it serves "
                              "nothing (default: adaptive)")
    control.add_argument("--admission", action="store_true",
                         help="token-bucket rate policing + shedding of "
                              "requests whose delay estimate blows the SLO")
    control.add_argument("--admission-rate", type=float, default=None,
                         help="token-bucket refill rate in req/s (default: "
                              "auto-sized to the largest fleet the run can "
                              "hold, with burst headroom)")
    control.add_argument("--degrade", action="store_true",
                         help="serve over-budget requests at reduced "
                              "sampling fidelity instead of shedding them")
    control.add_argument("--scale-shape", choices=SCALE_SHAPE_POLICIES,
                         default=None,
                         help="which chip shape heterogeneous scale-ups "
                              "commission (default cheapest-adequate; only "
                              "meaningful with --autoscale on a mixed fleet)")
    observe = serve.add_argument_group(
        "observability",
        "request span tracing and metrics scraping on the simulated clock "
        "(see docs/observability.md); instrumentation never perturbs the "
        "simulation -- a traced run reports bit-for-bit the same numbers "
        "as an untraced one")
    observe.add_argument("--trace-out", default=None, metavar="TRACE.JSON",
                         help="write per-request spans, batch spans with "
                              "cycle-model phase breakdowns and control-plane "
                              "instants as Chrome trace-event JSON (open in "
                              "https://ui.perfetto.dev or feed to "
                              "`repro trace-report`)")
    observe.add_argument("--metrics-out", default=None, metavar="METRICS.JSONL",
                         help="scrape queue depth, in-flight batches, overlap "
                              "ratio, per-shape busy fraction and control "
                              "counters into JSONL rows, plus a final "
                              "Prometheus text snapshot next to it (.prom)")
    observe.add_argument("--metrics-interval-ms", type=float, default=None,
                         help="simulated-time scrape interval (default: "
                              "adaptive, ~2 probe-batch times); errors "
                              "without --metrics-out")
    observe.add_argument("--log-level", choices=_LOG_LEVELS, default=None,
                         help="emit stdlib-logging diagnostics from the "
                              "serving/control paths to stderr at this level")
    capture = serve.add_argument_group(
        "request-trace capture / replay",
        "record the offered request stream into a compact binary trace, "
        "or serve a captured trace back (see docs/loadtest.md); replaying "
        "a capture under the same configuration reproduces the original "
        "report bit-for-bit, single- and multi-tenant alike")
    capture.add_argument("--trace-capture", default=None, metavar="TRACE.BIN",
                         help="record every offered request (arrival time, "
                              "target vertex, tenant, degradation stamps) "
                              "plus the workload metadata a replay needs; "
                              "characterise the file with "
                              "`repro trace-stats`")
    capture.add_argument("--replay", default=None, metavar="TRACE.BIN",
                         help="serve a trace captured with --trace-capture "
                              "instead of generating traffic (--requests/"
                              "--rate/--arrival/--skew are then taken from "
                              "the trace; multi-tenant traces also need the "
                              "capturing run's --tenants spec)")
    streaming = serve.add_argument_group(
        "streaming graph updates",
        "interleave live graph mutations (edge inserts, feature writes, "
        "vertex inserts) with the request stream and invalidate the "
        "derived-state caches they touch (see docs/streaming.md); "
        "--update-rate arms it, the remaining flags tune an armed stream "
        "and error without one; a capture records the update stream too, "
        "so --replay reproduces mutating runs bit-for-bit")
    streaming.add_argument("--update-rate", type=float, default=None,
                           help="graph updates offered per request (0.05 = "
                                "a 5%% update mix); the stream runs at this "
                                "fraction of the request rate")
    streaming.add_argument("--update-mix", default=None,
                           metavar="KIND=W,...",
                           help="update-kind weights, e.g. "
                                "edge=0.8,feature=0.15,vertex=0.05 "
                                "(default: that mix); omitted kinds get 0")
    streaming.add_argument("--invalidation",
                           choices=INVALIDATION_POLICIES, default=None,
                           help="cache-invalidation policy: targeted drops "
                                "only entries the update touches (default), "
                                "flush drops everything on every update, "
                                "none disables invalidation and counts the "
                                "stale serves that result")
    streaming.add_argument("--staleness-budget", type=int, default=None,
                           metavar="VERSIONS",
                           help="tolerated staleness in graph versions for "
                                "the stale_beyond_budget counter (default 0: "
                                "any stale serve is a violation)")
    serve.add_argument("--json", default=None, metavar="PATH",
                       help="also serialize the full report as JSON to PATH "
                            "('-' writes JSON to stdout instead of tables)")
    serve.add_argument("--seed", type=int, default=0)

    tracerep = sub.add_parser(
        "trace-report",
        help="summarize a trace written by serve --trace-out")
    tracerep.add_argument("trace", metavar="TRACE.JSON",
                          help="Chrome trace-event JSON file produced by "
                               "`repro serve --trace-out`")
    tracerep.add_argument("--top-k", type=int, default=5,
                          help="number of slowest requests to detail "
                               "(default 5)")

    tracestats = sub.add_parser(
        "trace-stats",
        help="characterise a request trace written by serve --trace-capture")
    tracestats.add_argument("trace", metavar="TRACE.BIN",
                            help="binary request trace produced by "
                                 "`repro serve --trace-capture`")
    tracestats.add_argument("--top-k", type=int, default=8,
                            help="most-popular targets to list (default 8)")
    tracestats.add_argument("--windows", type=int, default=20,
                            help="count windows for the index-of-dispersion "
                                 "burstiness estimate (default 20)")
    tracestats.add_argument("--max-targets", type=int, default=64,
                            help="most-popular targets to compute minhash "
                                 "signatures for in the overlap histogram "
                                 "(default 64)")
    tracestats.add_argument("--max-pairs", type=int, default=256,
                            help="popularity-weighted target pairs scored "
                                 "for the overlap histogram (default 256)")
    tracestats.add_argument("--no-overlap", action="store_true",
                            help="skip the overlap-potential histogram "
                                 "(no dataset load)")
    tracestats.add_argument("--json", default=None, metavar="PATH",
                            help="also serialize the statistics as JSON to "
                                 "PATH ('-' writes JSON to stdout instead "
                                 "of text)")

    loadtest = sub.add_parser(
        "loadtest",
        help="sweep arrival rate to the SLO knee per chip count")
    loadtest.add_argument("--model", type=str.upper, choices=MODEL_NAMES,
                          default="GCN")
    loadtest.add_argument("--dataset", type=str.upper,
                          choices=sorted(DATASETS), default="IB")
    loadtest.add_argument("--chips", type=int, nargs="+", default=[1, 2, 4],
                          help="chip counts to sweep (default: 1 2 4)")
    loadtest.add_argument("--requests", type=int, default=768,
                          help="requests per chip per measurement; each "
                               "sweep serves requests x chips so every "
                               "chip count faces the same per-chip "
                               "pressure (default 768)")
    loadtest.add_argument("--slo-target", type=float, default=0.99,
                          help="required SLO attainment at the knee "
                               "(default 0.99)")
    loadtest.add_argument("--slo-ms", type=float, default=None,
                          help="latency SLO in milliseconds (default: "
                               "adaptive; the adaptive SLO derives from a "
                               "chip-count-independent probe, so knees "
                               "stay comparable across the sweep)")
    loadtest.add_argument("--batch-policy", choices=ALL_BATCH_POLICIES,
                          default="size",
                          help="flush trigger or formation policy "
                               "(default size, see docs/batching.md)")
    loadtest.add_argument("--max-batch", type=int, default=32)
    loadtest.add_argument("--dispatch", choices=DISPATCH_POLICIES,
                          default="round-robin")
    loadtest.add_argument("--hops", type=int, default=2,
                          help="k-hop neighbourhood depth per request")
    loadtest.add_argument("--fanout", type=int, default=8,
                          help="max sampled in-neighbours per hop")
    loadtest.add_argument("--skew", type=float, default=0.8,
                          help="Zipf exponent of target popularity")
    loadtest.add_argument("--cache-size", type=int, default=0,
                          help="result-cache entries (default 0: the knee "
                               "measures chip capacity, not cache luck)")
    loadtest.add_argument("--rel-tol", type=float, default=0.1,
                          help="stop bisecting when the bracket is within "
                               "this fraction of the knee (default 0.1)")
    loadtest.add_argument("--start-utilization", type=float, default=0.4,
                          help="utilisation seeding the first probed rate "
                               "(default 0.4)")
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--json", default="BENCH_loadtest.json",
                          metavar="PATH",
                          help="knee/p99-vs-rate trajectory output "
                               "(default BENCH_loadtest.json; '-' writes "
                               "JSON to stdout instead of tables)")

    sweep = sub.add_parser("sweep", help="run an ablation / scalability sweep")
    sweep.add_argument("name", choices=sorted(_SWEEPS))
    sweep.add_argument("--datasets", nargs="+", default=["CR", "CS", "PB"],
                       choices=sorted(DATASETS))

    sub.add_parser("info", help="print datasets, models and the default configuration")
    return parser


def _run_simulate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed)
    model = build_model(args.model, input_length=graph.feature_length)
    config = HyGCNConfig(
        pipeline_mode=args.pipeline,
        enable_sparsity_elimination=not args.no_sparsity,
        enable_memory_coordination=not args.no_coordination,
    )
    report = HyGCNSimulator(config).run_model(model, graph, dataset_name=args.dataset)
    print_table([report.summary()], title=f"HyGCN: {args.model} on {args.dataset}")
    print_table(
        [{"layer": layer.name, "cycles": layer.total_cycles,
          "aggregation_cycles": layer.aggregation_cycles,
          "combination_cycles": layer.combination_cycles,
          "dram_mb": round(layer.dram_bytes / (1 << 20), 2),
          "sparsity_reduction_pct": round(100 * layer.sparsity_reduction, 1)}
         for layer in report.layers],
        title="per-layer breakdown",
    )
    if args.compare:
        cpu = PyGCPUModel().run(model, graph, dataset_name=args.dataset)
        gpu = PyGGPUModel().run(model, graph, dataset_name=args.dataset,
                                full_scale_spec=DATASETS[args.dataset])
        rows = [cpu.summary(), gpu.summary(),
                {"platform": "HyGCN", "model": args.model, "dataset": args.dataset,
                 "time_s": report.execution_time_s, "energy_j": report.total_energy_j,
                 "dram_mb": report.total_dram_bytes / (1 << 20),
                 "bandwidth_utilization": report.bandwidth_utilization}]
        print_table(rows, title="platform comparison",
                    columns=["platform", "time_s", "energy_j", "dram_mb",
                             "bandwidth_utilization"])
    return 0


def _control_config_from_args(args: argparse.Namespace
                              ) -> Optional[ControlConfig]:
    """Build a ControlConfig when an arming flag is set.

    Raises ValueError (-> `error: ...`, exit 2) when tuning flags are given
    without an arming flag, instead of silently dropping them.
    """
    if args.autoscale is None and not args.admission \
            and args.admission_rate is None and not args.degrade:
        tuning = [flag for flag, given in (
            ("--min-chips", args.min_chips != 1),
            ("--max-chips", args.max_chips is not None),
            ("--control-interval-ms", args.control_interval_ms is not None),
            ("--warmup-ms", args.warmup_ms is not None),
            ("--scale-shape", args.scale_shape is not None),
        ) if given]
        if tuning:
            raise ValueError(
                f"{', '.join(tuning)} tune the control plane but nothing "
                f"arms it; add --autoscale, --admission/--admission-rate "
                f"or --degrade")
        return None
    max_chips = args.max_chips if args.max_chips is not None \
        else max(2 * args.chips, args.min_chips)
    return ControlConfig(
        autoscale=args.autoscale,
        min_chips=args.min_chips,
        max_chips=max_chips,
        control_interval_s=None if args.control_interval_ms is None
        else args.control_interval_ms * 1e-3,
        warmup_s=None if args.warmup_ms is None else args.warmup_ms * 1e-3,
        admission=args.admission or args.admission_rate is not None,
        admission_rate_rps=args.admission_rate,
        degrade=args.degrade,
        scale_shape=args.scale_shape if args.scale_shape is not None
        else "cheapest-adequate",
    )


def _sharding_config_from_args(args: argparse.Namespace
                               ) -> Optional[ShardingConfig]:
    """Build a ShardingConfig when --shards arms sharded execution.

    Raises ValueError (-> `error: ...`, exit 2) when tuning flags are given
    without the arming flag, mirroring the control-plane idiom.
    """
    if args.shards is None:
        tuning = [flag for flag, given in (
            ("--partitioner", args.partitioner is not None),
            ("--halo-cache-mb", args.halo_cache_mb is not None),
            ("--interconnect-gbps", args.interconnect_gbps is not None),
        ) if given]
        if tuning:
            raise ValueError(
                f"{', '.join(tuning)} tune sharded execution but nothing "
                f"arms it; add --shards N")
        return None
    interconnect = InterconnectConfig() if args.interconnect_gbps is None \
        else InterconnectConfig(link_gbps=args.interconnect_gbps)
    overrides = {}
    if args.partitioner is not None:
        overrides["partitioner"] = args.partitioner
    if args.halo_cache_mb is not None:
        overrides["halo_cache_mb"] = args.halo_cache_mb
    return ShardingConfig(num_shards=args.shards, interconnect=interconnect,
                          seed=args.seed, **overrides)


def _streaming_overrides(args: argparse.Namespace) -> dict:
    """run_serving / run_multi_tenant kwargs from the streaming-update flags.

    ``--update-rate`` arms the update stream; the tuning flags error without
    it (mirroring the sharding idiom).  ``--replay`` needs no flags at all --
    a mutating capture carries its update stream, invalidation policy and
    staleness budget, and restores them itself.
    """
    if args.update_rate is None:
        tuning = [flag for flag, given in (
            ("--update-mix", args.update_mix is not None),
            ("--invalidation", args.invalidation is not None),
            ("--staleness-budget", args.staleness_budget is not None),
        ) if given]
        if tuning:
            hint = ("--replay restores the capturing run's update stream "
                    "and policy by itself" if args.replay is not None
                    else "add --update-rate R")
            raise ValueError(
                f"{', '.join(tuning)} tune streaming graph updates but "
                f"nothing arms them; {hint}")
        return {}
    overrides: dict = {"update_rate": args.update_rate}
    if args.update_mix is not None:
        overrides["update_mix"] = args.update_mix
    if args.invalidation is not None:
        overrides["invalidation"] = args.invalidation
    if args.staleness_budget is not None:
        overrides["staleness_budget"] = args.staleness_budget
    return overrides


def _fleet_spec_from_args(args: argparse.Namespace):
    """Resolve --fleet-spec / --shape-mix into a FleetSpec (or None).

    Raises ValueError (-> `error: ...`, exit 2) on conflicting or broken
    specs so the CLI fails loudly with the valid alternatives listed.
    """
    if args.fleet_spec is not None and args.shape_mix is not None:
        raise ValueError("--fleet-spec and --shape-mix both describe the "
                         "fleet's shapes; give exactly one")
    if args.fleet_spec is not None:
        try:
            return load_fleet_spec(args.fleet_spec)
        except OSError as exc:
            raise ValueError(f"cannot read fleet spec "
                            f"{args.fleet_spec!r}: {exc}") from exc
    if args.shape_mix is not None:
        return fleet_spec_for_mix(args.shape_mix, args.chips)
    return None


def _batching_overrides(args: argparse.Namespace,
                        tenants_mode: bool) -> dict:
    """FleetConfig overrides from the overlap-batching flags.

    In single-tenant mode the flags error unless ``--batch-policy`` is one
    of the overlap-aware formation policies (mirroring how control-plane
    tuning flags error without an arming flag); in ``--tenants`` mode any
    tenant may opt in via its spec, so the flags always apply.
    """
    given = [flag for flag, value in (
        ("--overlap-k", args.overlap_k),
        ("--min-overlap", args.min_overlap),
        ("--join-window-ms", args.join_window_ms),
        ("--staleness-ms", args.staleness_ms),
    ) if value is not None]
    if not tenants_mode and args.batch_policy not in ("overlap", "continuous"):
        if given:
            raise ValueError(
                f"{', '.join(given)} only tune overlap-aware batching but "
                f"--batch-policy is {args.batch_policy!r}; use "
                f"--batch-policy overlap or continuous")
        return {}
    if not tenants_mode and args.batch_policy == "overlap":
        joiners = [f for f in given if f in ("--join-window-ms",
                                             "--staleness-ms")]
        if joiners:
            raise ValueError(
                f"{', '.join(joiners)} only apply under continuous "
                f"batching; use --batch-policy continuous")
    overrides = {}
    if args.overlap_k is not None:
        overrides["overlap_k"] = args.overlap_k
    if args.min_overlap is not None:
        overrides["min_overlap"] = args.min_overlap
    if args.join_window_ms is not None:
        overrides["join_window_s"] = args.join_window_ms * 1e-3
    if args.staleness_ms is not None:
        overrides["staleness_s"] = args.staleness_ms * 1e-3
    return overrides


def _instrumentation_from_args(args: argparse.Namespace
                               ) -> Optional[Instrumentation]:
    """Build the Instrumentation hub when --trace-out / --metrics-out ask.

    Raises ValueError (-> `error: ...`, exit 2) when --metrics-interval-ms
    is given without --metrics-out, mirroring how control-plane tuning
    flags error without an arming flag.
    """
    if args.metrics_interval_ms is not None and args.metrics_out is None:
        raise ValueError("--metrics-interval-ms tunes the metrics scrape "
                         "but nothing records it; add --metrics-out")
    if args.trace_out is None and args.metrics_out is None:
        return None
    return Instrumentation(
        trace=args.trace_out is not None,
        metrics=args.metrics_out is not None,
        metrics_interval_s=None if args.metrics_interval_ms is None
        else args.metrics_interval_ms * 1e-3,
    )


def _write_observability(observe: Optional[Instrumentation],
                         args: argparse.Namespace) -> None:
    """Flush --trace-out / --metrics-out files after a serve run."""
    if observe is None:
        return
    # keep stdout pure JSON under --json -
    out = sys.stderr if args.json == "-" else sys.stdout
    if args.trace_out is not None:
        observe.write_trace(args.trace_out)
        print(f"wrote trace: {args.trace_out} ({len(observe.events)} events; "
              f"open in https://ui.perfetto.dev or run "
              f"`repro trace-report {args.trace_out}`)", file=out)
    if args.metrics_out is not None:
        prom_path = observe.write_metrics(args.metrics_out)
        print(f"wrote metrics: {args.metrics_out} (JSONL scrapes) and "
              f"{prom_path} (Prometheus text)", file=out)


def _write_capture(capture: Optional[TraceWriter],
                   args: argparse.Namespace) -> None:
    """Flush --trace-capture after a serve run (both tenancy modes)."""
    if capture is None:
        return
    # keep stdout pure JSON under --json -
    out = sys.stderr if args.json == "-" else sys.stdout
    trace = capture.write(args.trace_capture)
    print(f"wrote request trace: {args.trace_capture} "
          f"({trace.num_requests} requests; replay with "
          f"`repro serve --replay {args.trace_capture}`, characterise with "
          f"`repro trace-stats {args.trace_capture}`)", file=out)


def _emit_json(report, args: argparse.Namespace) -> None:
    """Write the report's to_dict() to --json PATH ('-' = stdout)."""
    payload = report.to_dict()
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=2, default=float)
        sys.stdout.write("\n")
    else:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, default=float)


def _print_control_tables(control) -> None:
    print_table([control.summary()], title="control plane: summary")
    if control.samples:
        print_table(control.scaling_table(),
                    title="control plane: scaling timeline")
        print("fleet-size timeline")
        print(control.timeline_text())
        print()
    if control.admission:
        print_table(control.admission_table(),
                    title="control plane: admission / degradation")


def _run_serve_tenants(args: argparse.Namespace, replay=None) -> int:
    """Multi-tenant serving: shared fleet, WFQ scheduling, isolation report."""
    try:
        tenants = load_tenant_specs(args.tenants)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load tenant spec {args.tenants!r}: {exc}",
              file=sys.stderr)
        return 2
    capture = TraceWriter() if args.trace_capture is not None else None
    try:
        control = _control_config_from_args(args)
        observe = _instrumentation_from_args(args)
        sharding = _sharding_config_from_args(args)
        fleet = FleetConfig(num_chips=args.shards if sharding is not None
                            else args.chips,
                            seed=args.seed,
                            dispatch=args.dispatch,
                            fleet_spec=_fleet_spec_from_args(args),
                            sharding=sharding,
                            **_batching_overrides(args, tenants_mode=True))
        report = run_multi_tenant(
            tenants, fleet, utilization_target=args.utilization,
            include_isolation_baseline=not args.no_isolation,
            control=control, observe=observe,
            capture=capture, replay=replay,
            **_streaming_overrides(args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _write_observability(observe, args)
    _write_capture(capture, args)
    if args.json == "-":
        _emit_json(report, args)
        return 0
    names = ", ".join(f"{t.name} (w={t.weight:g})" for t in tenants)
    print_table(report.summary_table(),
                title=f"multi-tenant serving on {report.num_chips} chips "
                      f"({report.scheduler}): {names}")
    print_table(report.fairness_table(),
                title="WFQ fairness: configured vs. measured service shares")
    if not args.no_isolation:
        print_table(report.isolation_table(),
                    title="isolation: shared fleet vs. running alone")
    print_table(report.per_chip_table(), title="per-chip utilization")
    if report.hetero is not None:
        print_table(report.shape_table(),
                    title="per-shape utilization (docs/heterogeneity.md)")
        print_table([report.hetero.summary()], title="shape-aware dispatch")
    batching_rows = report.batching_table()
    if batching_rows:
        print_table(batching_rows,
                    title="batch formation per tenant (docs/batching.md)")
    if report.sharding is not None:
        print_table([report.sharding.summary()],
                    title="sharded execution (docs/sharding.md)")
    if report.consistency is not None:
        print_table([report.consistency.summary()],
                    title="streaming graph updates (docs/streaming.md)")
    if report.control is not None:
        _print_control_tables(report.control)
    print_table([{
        "completed": report.completed,
        "throughput_rps": round(report.throughput_rps, 1),
        "avg_in_flight_requests": round(report.avg_in_flight, 2),
        "max_backlog_batches": report.max_backlog_batches,
    }], title="traffic summary")
    if args.json is not None:
        _emit_json(report, args)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    if args.log_level is not None:
        logging.basicConfig(level=getattr(logging, args.log_level.upper()),
                            stream=sys.stderr, force=True)
    replay = None
    if args.replay is not None:
        if args.arrival == "trace":
            print("error: --replay already carries arrival timestamps; "
                  "drop --arrival trace (that path replays bare timestamp "
                  "files via --trace-file)", file=sys.stderr)
            return 2
        if args.trace_file is not None:
            print("error: --trace-file feeds --arrival trace, not --replay; "
                  "give exactly one replay source", file=sys.stderr)
            return 2
        try:
            replay = load_request_trace(args.replay)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read request trace {args.replay!r}: {exc}",
                  file=sys.stderr)
            return 2
    if args.tenants is not None:
        return _run_serve_tenants(args, replay)
    trace = None
    if args.arrival == "trace":
        if args.trace_file is None:
            print("error: --arrival trace requires --trace-file", file=sys.stderr)
            return 2
        try:
            with open(args.trace_file) as handle:
                trace = [float(line) for line in handle if line.strip()]
        except (OSError, ValueError) as exc:
            print(f"error: cannot read trace file {args.trace_file!r}: {exc}",
                  file=sys.stderr)
            return 2
    capture = TraceWriter() if args.trace_capture is not None else None
    try:
        control = _control_config_from_args(args)
        observe = _instrumentation_from_args(args)
        sharding = _sharding_config_from_args(args)
        config = FleetConfig(
            num_chips=args.shards if sharding is not None else args.chips,
            fleet_spec=_fleet_spec_from_args(args),
            sharding=sharding,
            dispatch=args.dispatch,
            batch_policy=args.batch_policy,
            max_batch_size=args.max_batch,
            batch_timeout_s=None if args.batch_timeout_ms is None
            else args.batch_timeout_ms * 1e-3,
            slo_s=None if args.slo_ms is None else args.slo_ms * 1e-3,
            cache_size=args.cache_size,
            num_hops=args.hops,
            fanout=args.fanout,
            seed=args.seed,
            **_batching_overrides(args, tenants_mode=False),
        )
        report = run_serving(
            dataset=args.dataset,
            model_name=args.model,
            num_requests=args.requests,
            rate_rps=args.rate,
            arrival=args.arrival,
            popularity_skew=args.skew,
            config=config,
            trace=trace,
            utilization_target=args.utilization,
            seed=args.seed,
            control=control,
            observe=observe,
            capture=capture,
            replay=replay,
            **_streaming_overrides(args),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _write_observability(observe, args)
    _write_capture(capture, args)
    if args.json == "-":
        _emit_json(report, args)
        return 0
    title = (f"serving: {args.model} on {args.dataset}, "
             f"{report.num_chips} chips, "
             f"{args.batch_policy} batching, {args.dispatch} dispatch")
    print_table([report.summary()], title=title)
    print_table([{
        "p50_ms": round(report.p50_latency_s * 1e3, 4),
        "p95_ms": round(report.p95_latency_s * 1e3, 4),
        "p99_ms": round(report.p99_latency_s * 1e3, 4),
        "mean_ms": round(report.mean_latency_s * 1e3, 4),
        "max_ms": round(report.max_latency_s * 1e3, 4),
        "slo_ms": round(report.slo_s * 1e3, 4),
        "slo_violations": report.slo_violations,
        **report.latency_breakdown(),
    }], title="latency profile (simulated time)")
    print_table(report.per_chip_table(), title="per-chip utilization")
    if report.hetero is not None:
        print_table(report.shape_table(),
                    title="per-shape utilization (docs/heterogeneity.md)")
        print_table([report.hetero.summary()], title="shape-aware dispatch")
    if report.batching is not None:
        print_table([report.batching.summary()],
                    title="batch formation (docs/batching.md)")
    if report.sharding is not None:
        print_table([report.sharding.summary()],
                    title="sharded execution (docs/sharding.md)")
    if report.consistency is not None:
        print_table([report.consistency.summary()],
                    title="streaming graph updates (docs/streaming.md)")
    if report.control is not None:
        _print_control_tables(report.control)
    print_table([{
        "arrival_rate_rps": round(report.rate_rps, 1),
        "throughput_rps": round(report.throughput_rps, 1),
        "cache_hit_rate_pct": round(100.0 * report.cache.hit_rate, 2),
        "avg_in_flight_requests": round(report.avg_in_flight, 2),
        "max_queue_depth": report.max_queue_depth,
    }], title="traffic summary")
    if args.json is not None:
        _emit_json(report, args)
    return 0


def _run_trace_report(args: argparse.Namespace) -> int:
    try:
        events = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 2
    problems = validate_trace(events)
    if problems:
        for problem in problems:
            print(f"error: invalid trace event: {problem}", file=sys.stderr)
        return 2
    print(format_trace_report(trace_report(events, top_k=args.top_k)))
    return 0


def _run_trace_stats(args: argparse.Namespace) -> int:
    try:
        trace = load_request_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read request trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 2
    try:
        stats = trace_stats(trace, windows=args.windows, top_k=args.top_k,
                            max_targets=args.max_targets,
                            max_pairs=args.max_pairs,
                            include_overlap=not args.no_overlap)
    except (KeyError, ValueError) as exc:
        print(f"error: cannot characterise {args.trace!r}: {exc} "
              f"(corrupt capture metadata? --no-overlap skips the section "
              f"that needs it)", file=sys.stderr)
        return 2
    if args.json == "-":
        json.dump(stats, sys.stdout, indent=2, default=float)
        sys.stdout.write("\n")
        return 0
    print(format_trace_stats(stats))
    if args.json is not None:
        with open(args.json, "w") as handle:
            json.dump(stats, handle, indent=2, default=float)
    return 0


def _run_loadtest(args: argparse.Namespace) -> int:
    try:
        fleet = FleetConfig(
            batch_policy=args.batch_policy,
            max_batch_size=args.max_batch,
            dispatch=args.dispatch,
            num_hops=args.hops,
            fanout=args.fanout,
            cache_size=args.cache_size,
            slo_s=None if args.slo_ms is None else args.slo_ms * 1e-3,
            seed=args.seed,
        )
        config = LoadTestConfig(
            dataset=args.dataset, model_name=args.model,
            num_requests=args.requests, chip_counts=tuple(args.chips),
            slo_target=args.slo_target, popularity_skew=args.skew,
            seed=args.seed, rel_tol=args.rel_tol,
            start_utilization=args.start_utilization, fleet=fleet)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # keep stdout pure JSON under --json -
    out = sys.stderr if args.json == "-" else sys.stdout
    report = run_loadtest(config, progress=lambda line: print(line, file=out))
    if args.json == "-":
        json.dump(report.to_dict(), sys.stdout, indent=2, default=float)
        sys.stdout.write("\n")
        return 0
    print_table(report.summary_rows(),
                title=f"loadtest: {args.model} on {args.dataset}, knee = max "
                      f"RPS with SLO attainment >= {args.slo_target:g}")
    with open(args.json, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, default=float)
    print(f"wrote knee trajectory: {args.json} "
          f"({sum(len(s['points']) for s in report.sweeps)} measurements "
          f"in {report.wall_time_s:.1f}s)")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    if args.name == "ablation":
        rows: List[dict] = []
        for dataset in args.datasets:
            rows.extend(stacked_optimization_ablation(dataset=dataset))
        print_table(rows, title="cumulative optimisation ablation")
        return 0
    sweep_fn = _SWEEPS[args.name]
    rows = sweep_fn(datasets=tuple(args.datasets))
    print_table(rows, title=f"{args.name} sweep")
    return 0


def _run_info() -> int:
    print_table(dataset_table(), title="Table 4: datasets")
    print_table(model_table(), title="Table 5: models")
    config = HyGCNConfig()
    print_table([{
        "simd_cores": config.num_simd_cores,
        "simd_width": config.simd_width,
        "systolic_modules": config.num_systolic_modules,
        "module_shape": f"{config.systolic_rows}x{config.systolic_cols}",
        "aggregation_buffer_mb": config.aggregation_buffer_bytes >> 20,
        "hbm_bandwidth_gbps": config.hbm.peak_bandwidth_gbps,
    }], title="Table 6: default HyGCN configuration")
    print_table(AreaPowerModel().breakdown_table(), title="Table 7: area/power breakdown")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "trace-report":
        return _run_trace_report(args)
    if args.command == "trace-stats":
        return _run_trace_stats(args)
    if args.command == "loadtest":
        return _run_loadtest(args)
    if args.command == "sweep":
        return _run_sweep(args)
    return _run_info()


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
