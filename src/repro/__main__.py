"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows without writing a script:

* ``simulate`` -- run one model on one dataset on the HyGCN simulator and
  print the report (optionally comparing against the CPU/GPU baselines);
* ``sweep``    -- run one of the named ablation/scalability sweeps;
* ``info``     -- print the dataset registry (Table 4), the model zoo
  (Table 5) and the default accelerator configuration (Table 6/7 view).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import (
    memory_coordination_sweep,
    pipeline_mode_sweep,
    print_table,
    sampling_factor_sweep,
    sparsity_elimination_sweep,
    stacked_optimization_ablation,
    systolic_module_sweep,
    aggregation_buffer_sweep,
)
from .baselines import PyGCPUModel, PyGGPUModel
from .core import HyGCNConfig, HyGCNSimulator, PipelineMode
from .graphs import DATASETS, dataset_table, load_dataset
from .hw import AreaPowerModel
from .models import MODEL_NAMES, build_model, model_table

_SWEEPS = {
    "sparsity": sparsity_elimination_sweep,
    "pipeline": pipeline_mode_sweep,
    "memory": memory_coordination_sweep,
    "sampling": sampling_factor_sweep,
    "buffer": aggregation_buffer_sweep,
    "systolic": systolic_module_sweep,
    "ablation": None,  # handled separately (per-dataset signature differs)
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HyGCN reproduction: simulate GCN workloads on the hybrid accelerator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one model on one dataset")
    simulate.add_argument("--model", choices=MODEL_NAMES, default="GCN")
    simulate.add_argument("--dataset", choices=sorted(DATASETS), default="CR")
    simulate.add_argument("--pipeline", choices=PipelineMode.ALL,
                          default=PipelineMode.LATENCY)
    simulate.add_argument("--no-sparsity", action="store_true",
                          help="disable window sliding/shrinking")
    simulate.add_argument("--no-coordination", action="store_true",
                          help="disable memory access coordination")
    simulate.add_argument("--compare", action="store_true",
                          help="also run the PyG-CPU / PyG-GPU baseline models")
    simulate.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser("sweep", help="run an ablation / scalability sweep")
    sweep.add_argument("name", choices=sorted(_SWEEPS))
    sweep.add_argument("--datasets", nargs="+", default=["CR", "CS", "PB"],
                       choices=sorted(DATASETS))

    sub.add_parser("info", help="print datasets, models and the default configuration")
    return parser


def _run_simulate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed)
    model = build_model(args.model, input_length=graph.feature_length)
    config = HyGCNConfig(
        pipeline_mode=args.pipeline,
        enable_sparsity_elimination=not args.no_sparsity,
        enable_memory_coordination=not args.no_coordination,
    )
    report = HyGCNSimulator(config).run_model(model, graph, dataset_name=args.dataset)
    print_table([report.summary()], title=f"HyGCN: {args.model} on {args.dataset}")
    print_table(
        [{"layer": layer.name, "cycles": layer.total_cycles,
          "aggregation_cycles": layer.aggregation_cycles,
          "combination_cycles": layer.combination_cycles,
          "dram_mb": round(layer.dram_bytes / (1 << 20), 2),
          "sparsity_reduction_pct": round(100 * layer.sparsity_reduction, 1)}
         for layer in report.layers],
        title="per-layer breakdown",
    )
    if args.compare:
        cpu = PyGCPUModel().run(model, graph, dataset_name=args.dataset)
        gpu = PyGGPUModel().run(model, graph, dataset_name=args.dataset,
                                full_scale_spec=DATASETS[args.dataset])
        rows = [cpu.summary(), gpu.summary(),
                {"platform": "HyGCN", "model": args.model, "dataset": args.dataset,
                 "time_s": report.execution_time_s, "energy_j": report.total_energy_j,
                 "dram_mb": report.total_dram_bytes / (1 << 20),
                 "bandwidth_utilization": report.bandwidth_utilization}]
        print_table(rows, title="platform comparison",
                    columns=["platform", "time_s", "energy_j", "dram_mb",
                             "bandwidth_utilization"])
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    if args.name == "ablation":
        rows: List[dict] = []
        for dataset in args.datasets:
            rows.extend(stacked_optimization_ablation(dataset=dataset))
        print_table(rows, title="cumulative optimisation ablation")
        return 0
    sweep_fn = _SWEEPS[args.name]
    rows = sweep_fn(datasets=tuple(args.datasets))
    print_table(rows, title=f"{args.name} sweep")
    return 0


def _run_info() -> int:
    print_table(dataset_table(), title="Table 4: datasets")
    print_table(model_table(), title="Table 5: models")
    config = HyGCNConfig()
    print_table([{
        "simd_cores": config.num_simd_cores,
        "simd_width": config.simd_width,
        "systolic_modules": config.num_systolic_modules,
        "module_shape": f"{config.systolic_rows}x{config.systolic_cols}",
        "aggregation_buffer_mb": config.aggregation_buffer_bytes >> 20,
        "hbm_bandwidth_gbps": config.hbm.peak_bandwidth_gbps,
    }], title="Table 6: default HyGCN configuration")
    print_table(AreaPowerModel().breakdown_table(), title="Table 7: area/power breakdown")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "sweep":
        return _run_sweep(args)
    return _run_info()


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
