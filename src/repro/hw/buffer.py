"""On-chip scratchpad (eDRAM) buffer models.

HyGCN uses five explicitly managed buffers (Table 6): the Edge Buffer (2 MB),
Input Buffer (128 KB), Aggregation Buffer (16 MB), Weight Buffer (2 MB) and
Output Buffer (4 MB).  The Edge and Input buffers are double-buffered to hide
DRAM latency, the Aggregation Buffer is split into ping-pong halves to decouple
the two engines, and every buffer tracks its read/write traffic so the energy
model can charge per-access energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["BufferStats", "ScratchpadBuffer", "DoubleBuffer", "PingPongBuffer"]

KIB = 1024
MIB = 1024 * 1024


@dataclass
class BufferStats:
    """Access counters for one on-chip buffer."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    overflow_events: int = 0

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def merge(self, other: "BufferStats") -> "BufferStats":
        """Return the element-wise sum of two counters."""
        return BufferStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            overflow_events=self.overflow_events + other.overflow_events,
        )


class ScratchpadBuffer:
    """A software-managed on-chip buffer with capacity and traffic accounting.

    The simulator does not model individual addresses inside a buffer -- it
    allocates logical *regions* (a shard's source features, an interval's
    partial results, a weight tile) and records the traffic of reading/writing
    them.  Capacity violations are not fatal: they are counted as overflow
    events (meaning the real hardware would have had to tile the data further)
    so misconfigured experiments remain observable instead of crashing.
    """

    def __init__(self, name: str, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self.used_bytes = 0
        self.stats = BufferStats()
        self._regions: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Region management
    # ------------------------------------------------------------------ #
    def allocate(self, region: str, num_bytes: int) -> bool:
        """Reserve ``num_bytes`` for ``region``; returns False on overflow."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.free(region)
        fits = self.used_bytes + num_bytes <= self.capacity_bytes
        if not fits:
            self.stats.overflow_events += 1
        self._regions[region] = num_bytes
        self.used_bytes += num_bytes
        return fits

    def free(self, region: str) -> None:
        """Release a region if it exists."""
        if region in self._regions:
            self.used_bytes -= self._regions.pop(region)

    def clear(self) -> None:
        """Release every region (counters are preserved)."""
        self._regions.clear()
        self.used_bytes = 0

    def region_bytes(self, region: str) -> int:
        """Size of an allocated region (0 if absent)."""
        return self._regions.get(region, 0)

    @property
    def occupancy(self) -> float:
        """Fraction of the capacity currently allocated (can exceed 1 on overflow)."""
        return self.used_bytes / self.capacity_bytes

    @property
    def free_bytes(self) -> int:
        return max(0, self.capacity_bytes - self.used_bytes)

    # ------------------------------------------------------------------ #
    # Traffic accounting
    # ------------------------------------------------------------------ #
    def read(self, num_bytes: int, accesses: int = 1) -> None:
        """Record ``accesses`` read operations totalling ``num_bytes``."""
        self.stats.reads += accesses
        self.stats.bytes_read += int(num_bytes)

    def write(self, num_bytes: int, accesses: int = 1) -> None:
        """Record ``accesses`` write operations totalling ``num_bytes``."""
        self.stats.writes += accesses
        self.stats.bytes_written += int(num_bytes)

    def reset_stats(self) -> None:
        self.stats = BufferStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScratchpadBuffer({self.name!r}, capacity={self.capacity_bytes}B, "
                f"used={self.used_bytes}B)")


class DoubleBuffer(ScratchpadBuffer):
    """A double-buffered scratchpad: half the capacity is usable per phase.

    The Edge and Input buffers use double buffering so the next shard's data
    can be prefetched while the current shard is being consumed; the usable
    working-set per shard is therefore half the physical capacity.
    """

    def __init__(self, name: str, capacity_bytes: int):
        super().__init__(name, capacity_bytes)

    @property
    def working_capacity(self) -> int:
        """Bytes available to the currently processed shard."""
        return self.capacity_bytes // 2

    def fits_working_set(self, num_bytes: int) -> bool:
        """Whether one shard's working set fits in a single half."""
        return num_bytes <= self.working_capacity


class PingPongBuffer(ScratchpadBuffer):
    """The Aggregation Buffer: two chunks written/read by different engines.

    While the Aggregation Engine fills one chunk with aggregated features, the
    Combination Engine drains the other; ``swap`` flips the roles.  Each chunk
    is half the physical capacity (Section 4.5.1).
    """

    def __init__(self, name: str, capacity_bytes: int):
        super().__init__(name, capacity_bytes)
        self.active_chunk = 0
        self.swaps = 0

    @property
    def chunk_capacity(self) -> int:
        """Capacity of one ping-pong chunk."""
        return self.capacity_bytes // 2

    def swap(self) -> int:
        """Flip which chunk is written by the Aggregation Engine."""
        self.active_chunk ^= 1
        self.swaps += 1
        return self.active_chunk

    def fits_chunk(self, num_bytes: int) -> bool:
        """Whether an interval's aggregation results fit in one chunk."""
        return num_bytes <= self.chunk_capacity
