"""Area and power model (Table 7 / Section 5.2.1).

The paper synthesizes the RTL with Synopsys Design Compiler on a TSMC 12 nm
library and reports 6.7 W / 7.8 mm^2 with the per-module breakdown of Table 7.
We cannot rerun synthesis, so this module provides an analytical model: each
module's area and power are estimated from its configuration (number of SIMD
cores, systolic PEs, buffer capacities) using per-unit constants calibrated so
the *default* Table 6 configuration reproduces the published totals and
breakdown percentages.  Scaling experiments (e.g. the Fig. 18 buffer sweep)
then perturb individual components in a physically sensible way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ModuleBudget", "AreaPowerModel", "PAPER_TABLE7"]

MIB = 1024 * 1024

#: The published Table 7 breakdown, as fractions of the 6.7 W / 7.8 mm^2 totals.
PAPER_TABLE7: Dict[str, Dict[str, float]] = {
    "aggregation_buffer": {"power": 0.0237, "area": 0.0541},
    "aggregation_compute": {"power": 0.0385, "area": 0.0143},
    "aggregation_control": {"power": 0.0048, "area": 0.0018},
    "combination_buffer": {"power": 0.1440, "area": 0.1513},
    "combination_compute": {"power": 0.6052, "area": 0.4296},
    "combination_control": {"power": 0.0031, "area": 0.0007},
    "coordinator_buffer": {"power": 0.1766, "area": 0.3464},
    "coordinator_control": {"power": 0.0041, "area": 0.0019},
}

#: Published totals for the default configuration.
PAPER_TOTAL_POWER_W = 6.7
PAPER_TOTAL_AREA_MM2 = 7.8


@dataclass(frozen=True)
class ModuleBudget:
    """Power (W) and area (mm^2) of one architectural module."""

    name: str
    power_w: float
    area_mm2: float


@dataclass(frozen=True)
class AreaPowerConfig:
    """Structural parameters the model scales with (defaults = Table 6)."""

    num_simd_cores: int = 32
    simd_width: int = 16
    num_systolic_modules: int = 8
    systolic_rows: int = 4
    systolic_cols: int = 128
    input_buffer_bytes: int = 128 * 1024
    edge_buffer_bytes: int = 2 * MIB
    weight_buffer_bytes: int = 2 * MIB
    output_buffer_bytes: int = 4 * MIB
    aggregation_buffer_bytes: int = 16 * MIB

    @property
    def total_simd_lanes(self) -> int:
        return self.num_simd_cores * self.simd_width

    @property
    def total_pes(self) -> int:
        return self.num_systolic_modules * self.systolic_rows * self.systolic_cols


class AreaPowerModel:
    """Analytical area/power estimator calibrated against Table 7."""

    # Per-unit constants derived from the published breakdown at the default
    # configuration: e.g. combination compute is 60.52% of 6.7 W over 4096 PEs.
    _DEFAULT = AreaPowerConfig()

    def __init__(self, config: AreaPowerConfig = None):
        self.config = config or AreaPowerConfig()
        default = self._DEFAULT
        self._power_per_pe = PAPER_TABLE7["combination_compute"]["power"] * \
            PAPER_TOTAL_POWER_W / default.total_pes
        self._area_per_pe = PAPER_TABLE7["combination_compute"]["area"] * \
            PAPER_TOTAL_AREA_MM2 / default.total_pes
        self._power_per_lane = PAPER_TABLE7["aggregation_compute"]["power"] * \
            PAPER_TOTAL_POWER_W / default.total_simd_lanes
        self._area_per_lane = PAPER_TABLE7["aggregation_compute"]["area"] * \
            PAPER_TOTAL_AREA_MM2 / default.total_simd_lanes
        agg_engine_buffer_bytes = default.input_buffer_bytes + default.edge_buffer_bytes
        comb_engine_buffer_bytes = default.weight_buffer_bytes + default.output_buffer_bytes
        self._power_per_buffer_byte = {
            "aggregation": PAPER_TABLE7["aggregation_buffer"]["power"] * PAPER_TOTAL_POWER_W / agg_engine_buffer_bytes,
            "combination": PAPER_TABLE7["combination_buffer"]["power"] * PAPER_TOTAL_POWER_W / comb_engine_buffer_bytes,
            "coordinator": PAPER_TABLE7["coordinator_buffer"]["power"] * PAPER_TOTAL_POWER_W / default.aggregation_buffer_bytes,
        }
        self._area_per_buffer_byte = {
            "aggregation": PAPER_TABLE7["aggregation_buffer"]["area"] * PAPER_TOTAL_AREA_MM2 / agg_engine_buffer_bytes,
            "combination": PAPER_TABLE7["combination_buffer"]["area"] * PAPER_TOTAL_AREA_MM2 / comb_engine_buffer_bytes,
            "coordinator": PAPER_TABLE7["coordinator_buffer"]["area"] * PAPER_TOTAL_AREA_MM2 / default.aggregation_buffer_bytes,
        }

    # ------------------------------------------------------------------ #
    def module_budgets(self) -> List[ModuleBudget]:
        """Per-module power/area for the current configuration."""
        cfg = self.config
        control_power = (PAPER_TABLE7["aggregation_control"]["power"]
                         + PAPER_TABLE7["combination_control"]["power"]
                         + PAPER_TABLE7["coordinator_control"]["power"]) * PAPER_TOTAL_POWER_W
        control_area = (PAPER_TABLE7["aggregation_control"]["area"]
                        + PAPER_TABLE7["combination_control"]["area"]
                        + PAPER_TABLE7["coordinator_control"]["area"]) * PAPER_TOTAL_AREA_MM2
        budgets = [
            ModuleBudget(
                "aggregation_buffer",
                (cfg.input_buffer_bytes + cfg.edge_buffer_bytes) * self._power_per_buffer_byte["aggregation"],
                (cfg.input_buffer_bytes + cfg.edge_buffer_bytes) * self._area_per_buffer_byte["aggregation"],
            ),
            ModuleBudget(
                "aggregation_compute",
                cfg.total_simd_lanes * self._power_per_lane,
                cfg.total_simd_lanes * self._area_per_lane,
            ),
            ModuleBudget(
                "combination_buffer",
                (cfg.weight_buffer_bytes + cfg.output_buffer_bytes) * self._power_per_buffer_byte["combination"],
                (cfg.weight_buffer_bytes + cfg.output_buffer_bytes) * self._area_per_buffer_byte["combination"],
            ),
            ModuleBudget(
                "combination_compute",
                cfg.total_pes * self._power_per_pe,
                cfg.total_pes * self._area_per_pe,
            ),
            ModuleBudget(
                "coordinator_buffer",
                cfg.aggregation_buffer_bytes * self._power_per_buffer_byte["coordinator"],
                cfg.aggregation_buffer_bytes * self._area_per_buffer_byte["coordinator"],
            ),
            ModuleBudget("control", control_power, control_area),
        ]
        return budgets

    def total_power_w(self) -> float:
        """Total accelerator power in watts."""
        return sum(m.power_w for m in self.module_budgets())

    def total_area_mm2(self) -> float:
        """Total accelerator area in mm^2."""
        return sum(m.area_mm2 for m in self.module_budgets())

    def breakdown_table(self) -> List[dict]:
        """Table 7 style rows: component, power %, area %."""
        budgets = self.module_budgets()
        total_power = sum(m.power_w for m in budgets) or 1.0
        total_area = sum(m.area_mm2 for m in budgets) or 1.0
        return [
            {
                "module": m.name,
                "power_w": round(m.power_w, 4),
                "power_pct": round(100.0 * m.power_w / total_power, 2),
                "area_mm2": round(m.area_mm2, 4),
                "area_pct": round(100.0 * m.area_mm2 / total_area, 2),
            }
            for m in budgets
        ]
