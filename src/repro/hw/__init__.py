"""Generic hardware substrate: on-chip buffers, HBM model, energy and area models."""

from .buffer import BufferStats, DoubleBuffer, PingPongBuffer, ScratchpadBuffer
from .dram import DRAMStats, HBMConfig, HBMModel, MemoryRequest
from .energy import EnergyBreakdown, EnergyModel, EnergyParams
from .area import AreaPowerModel, AreaPowerConfig, ModuleBudget, PAPER_TABLE7

__all__ = [
    "BufferStats",
    "DoubleBuffer",
    "PingPongBuffer",
    "ScratchpadBuffer",
    "DRAMStats",
    "HBMConfig",
    "HBMModel",
    "MemoryRequest",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "AreaPowerModel",
    "AreaPowerConfig",
    "ModuleBudget",
    "PAPER_TABLE7",
]
