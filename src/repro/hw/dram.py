"""Simplified High Bandwidth Memory (HBM) model.

The paper integrates Ramulator to simulate an HBM 1.0 stack (256 GB/s,
Table 6) and charges 7 pJ/bit per access (Section 5.1).  This module provides
the stand-in: a transaction-level DRAM model with channels, banks and open-row
(row-buffer) state.  It is deliberately simple -- fixed row activate/precharge
/CAS latencies, per-channel data buses, no refresh -- but it preserves the two
effects the evaluation depends on:

* row-buffer locality: consecutive requests to the same row are much cheaper,
  which is what the priority-based access coordination (Section 4.5.2 /
  Fig. 17) improves;
* channel/bank-level parallelism: the coordinator remaps addresses so the low
  bits select channel and bank, letting independent streams proceed in
  parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

__all__ = ["HBMConfig", "MemoryRequest", "DRAMStats", "HBMModel"]


@dataclass(frozen=True)
class HBMConfig:
    """Timing/geometry parameters of the HBM stack (in accelerator cycles @ 1 GHz)."""

    num_channels: int = 8
    banks_per_channel: int = 16
    row_buffer_bytes: int = 2048
    #: data bus width per channel in bytes transferred per accelerator cycle;
    #: 8 channels x 32 B/cycle = 256 GB/s at 1 GHz, matching Table 6.
    channel_bytes_per_cycle: int = 32
    #: row activate latency (tRCD) in cycles
    activate_cycles: int = 14
    #: precharge latency (tRP) in cycles
    precharge_cycles: int = 14
    #: column access latency (tCAS) in cycles
    cas_cycles: int = 14
    #: energy per bit moved across the HBM interface (picojoules)
    energy_pj_per_bit: float = 7.0

    @property
    def peak_bandwidth_bytes_per_cycle(self) -> int:
        """Aggregate peak bandwidth across all channels."""
        return self.num_channels * self.channel_bytes_per_cycle

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak bandwidth in GB/s assuming a 1 GHz accelerator clock."""
        return self.peak_bandwidth_bytes_per_cycle  # bytes/ns == GB/s


@dataclass
class MemoryRequest:
    """One off-chip access issued by a buffer's fill/drain engine.

    ``stream`` identifies the logical data stream (``edges``, ``input_features``,
    ``weights``, ``output_features``), which the memory handler uses for its
    priority ordering; ``address`` is a byte address in the flat physical
    space of that stream.
    """

    stream: str
    address: int
    num_bytes: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.num_bytes <= 0:
            raise ValueError("num_bytes must be positive")
        if self.address < 0:
            raise ValueError("address must be non-negative")


@dataclass
class DRAMStats:
    """Aggregate statistics over a sequence of serviced requests."""

    requests: int = 0
    bytes_transferred: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_cycles: int = 0          # max over channels (critical path)
    total_channel_cycles: int = 0  # sum over channels (for utilisation)
    energy_pj: float = 0.0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def bandwidth_utilization(self, config: HBMConfig,
                              elapsed_cycles: Optional[int] = None) -> float:
        """Achieved fraction of peak bandwidth over ``elapsed_cycles``.

        If ``elapsed_cycles`` is omitted the DRAM busy time is used, i.e. the
        utilisation *while transferring*.
        """
        cycles = elapsed_cycles if elapsed_cycles else self.busy_cycles
        if not cycles:
            return 0.0
        peak = config.peak_bandwidth_bytes_per_cycle * cycles
        return min(1.0, self.bytes_transferred / peak)

    def merge(self, other: "DRAMStats") -> "DRAMStats":
        """Combine stats from two phases executed back to back."""
        return DRAMStats(
            requests=self.requests + other.requests,
            bytes_transferred=self.bytes_transferred + other.bytes_transferred,
            row_hits=self.row_hits + other.row_hits,
            row_misses=self.row_misses + other.row_misses,
            busy_cycles=self.busy_cycles + other.busy_cycles,
            total_channel_cycles=self.total_channel_cycles + other.total_channel_cycles,
            energy_pj=self.energy_pj + other.energy_pj,
        )


class HBMModel:
    """Transaction-level HBM stack with open-row policy.

    Requests are serviced in the order given, each mapped to a (channel, bank,
    row) triple.  Channels operate in parallel: the model accumulates busy
    cycles per channel and reports the maximum as the critical-path DRAM time.
    """

    def __init__(self, config: Optional[HBMConfig] = None,
                 interleave_low_bits: bool = True):
        self.config = config or HBMConfig()
        #: when True, consecutive row-buffer-sized blocks rotate across
        #: channels/banks (the coordinator's low-bit remapping); when False,
        #: each stream is confined to a channel subset, modelling the naive
        #: address map used in the no-coordination ablation.
        self.interleave_low_bits = interleave_low_bits
        self._open_rows = [
            [-1] * self.config.banks_per_channel
            for _ in range(self.config.num_channels)
        ]
        #: distinct streams get distinct high-order address regions so rows
        #: from different streams never alias.
        self._stream_regions = {}

    # ------------------------------------------------------------------ #
    def _stream_base(self, stream: str) -> int:
        if stream not in self._stream_regions:
            # 1 TiB per stream keeps regions disjoint for any realistic input.
            self._stream_regions[stream] = len(self._stream_regions) * (1 << 40)
        return self._stream_regions[stream]

    def _map_address(self, request: MemoryRequest) -> tuple:
        """Map a request to (channel, bank, row)."""
        cfg = self.config
        address = self._stream_base(request.stream) + request.address
        block = address // cfg.row_buffer_bytes
        if self.interleave_low_bits:
            channel = block % cfg.num_channels
            bank = (block // cfg.num_channels) % cfg.banks_per_channel
            row = block // (cfg.num_channels * cfg.banks_per_channel)
        else:
            # Naive map: the stream id picks the channel, so concurrent streams
            # collide on a few channels and banks see frequent row conflicts.
            stream_index = list(self._stream_regions).index(request.stream)
            channel = stream_index % cfg.num_channels
            bank = block % cfg.banks_per_channel
            row = block // cfg.banks_per_channel
        return channel, bank, row

    # ------------------------------------------------------------------ #
    def service(self, requests: Sequence[MemoryRequest]) -> DRAMStats:
        """Service ``requests`` in order and return the aggregate statistics."""
        cfg = self.config
        stats = DRAMStats()
        channel_busy = [0] * cfg.num_channels
        for request in requests:
            channel, bank, row = self._map_address(request)
            open_row = self._open_rows[channel][bank]
            transfer = -(-request.num_bytes // cfg.channel_bytes_per_cycle)
            if open_row == row:
                latency = cfg.cas_cycles + transfer
                stats.row_hits += 1
            else:
                latency = (cfg.precharge_cycles + cfg.activate_cycles
                           + cfg.cas_cycles + transfer)
                stats.row_misses += 1
                self._open_rows[channel][bank] = row
            channel_busy[channel] += latency
            stats.requests += 1
            stats.bytes_transferred += request.num_bytes
            stats.energy_pj += request.num_bytes * 8 * cfg.energy_pj_per_bit
        stats.busy_cycles = max(channel_busy) if channel_busy else 0
        stats.total_channel_cycles = sum(channel_busy)
        return stats

    def service_stream(self, stream: str, total_bytes: int,
                       access_granularity: int = 64,
                       sequential: bool = True,
                       is_write: bool = False) -> DRAMStats:
        """Convenience helper: service ``total_bytes`` of one stream.

        ``sequential`` requests walk consecutive addresses (high row-buffer
        locality); non-sequential requests stride by one row buffer per access
        (every access misses), which approximates the random neighbour-feature
        gathers of the Aggregation phase without sparsity optimisations.
        """
        if total_bytes <= 0:
            return DRAMStats()
        requests = []
        stride = access_granularity if sequential else self.config.row_buffer_bytes
        address = 0
        remaining = total_bytes
        while remaining > 0:
            chunk = min(access_granularity, remaining)
            requests.append(MemoryRequest(stream, address, chunk, is_write=is_write))
            address += stride
            remaining -= chunk
        return self.service(requests)

    def reset(self) -> None:
        """Close all rows (e.g. between independent experiments)."""
        for channel in self._open_rows:
            for bank in range(len(channel)):
                channel[bank] = -1
