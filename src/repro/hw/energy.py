"""Energy model for the accelerator and the off-chip memory.

Energy is accumulated bottom-up from event counts: MAC operations in the
systolic arrays, SIMD ALU operations in the Aggregation Engine, per-byte
accesses to each on-chip eDRAM buffer and per-bit HBM traffic (7 pJ/bit as in
Section 5.1).  A static (leakage + clock) component proportional to execution
time is added from the synthesized power figure (Table 7: 6.7 W total).

The absolute per-event energies are engineering estimates for a 12 nm process
(the paper does not publish them); what the evaluation reproduces is the
*structure* of the energy -- which engine dominates on which dataset (Fig. 12)
and the orders-of-magnitude gap to CPU/GPU (Fig. 11) -- and that structure is
set by the event counts, not the absolute picojoule constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["EnergyParams", "EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy constants in picojoules (12 nm class estimates)."""

    #: one 32-bit fixed-point multiply-accumulate in a systolic PE
    mac_pj: float = 0.6
    #: one 32-bit SIMD ALU operation (add/max/min/compare) in the Aggregation Engine
    simd_op_pj: float = 0.4
    #: one byte read or written in an on-chip eDRAM buffer
    buffer_pj_per_byte: float = 0.15
    #: one byte moved over the HBM interface (7 pJ/bit => 56 pJ/byte)
    dram_pj_per_byte: float = 56.0
    #: static power of the whole accelerator in watts (used for leakage energy)
    static_power_w: float = 0.67
    #: accelerator clock frequency in Hz (1 GHz, Section 5.1)
    clock_hz: float = 1e9

    def static_energy_pj(self, cycles: int) -> float:
        """Leakage/clock energy for ``cycles`` of execution."""
        seconds = cycles / self.clock_hz
        return self.static_power_w * seconds * 1e12


@dataclass
class EnergyBreakdown:
    """Energy per architectural component, in picojoules."""

    aggregation_compute_pj: float = 0.0
    aggregation_buffers_pj: float = 0.0
    combination_compute_pj: float = 0.0
    combination_buffers_pj: float = 0.0
    coordinator_buffers_pj: float = 0.0
    dram_pj: float = 0.0
    static_pj: float = 0.0

    @property
    def aggregation_engine_pj(self) -> float:
        return self.aggregation_compute_pj + self.aggregation_buffers_pj

    @property
    def combination_engine_pj(self) -> float:
        return self.combination_compute_pj + self.combination_buffers_pj

    @property
    def on_chip_pj(self) -> float:
        return (self.aggregation_engine_pj + self.combination_engine_pj
                + self.coordinator_buffers_pj + self.static_pj)

    @property
    def total_pj(self) -> float:
        return self.on_chip_pj + self.dram_pj

    @property
    def total_joules(self) -> float:
        return self.total_pj * 1e-12

    def engine_shares(self) -> Dict[str, float]:
        """Fractional on-chip+DRAM energy per engine (the Fig. 12 breakdown)."""
        total = self.total_pj or 1.0
        return {
            "aggregation_engine": (self.aggregation_engine_pj + self.dram_pj * 0.0) / total,
            "combination_engine": self.combination_engine_pj / total,
            "coordinator": self.coordinator_buffers_pj / total,
            "dram": self.dram_pj / total,
            "static": self.static_pj / total,
        }

    def merge(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Sum two breakdowns (e.g. across layers)."""
        return EnergyBreakdown(
            aggregation_compute_pj=self.aggregation_compute_pj + other.aggregation_compute_pj,
            aggregation_buffers_pj=self.aggregation_buffers_pj + other.aggregation_buffers_pj,
            combination_compute_pj=self.combination_compute_pj + other.combination_compute_pj,
            combination_buffers_pj=self.combination_buffers_pj + other.combination_buffers_pj,
            coordinator_buffers_pj=self.coordinator_buffers_pj + other.coordinator_buffers_pj,
            dram_pj=self.dram_pj + other.dram_pj,
            static_pj=self.static_pj + other.static_pj,
        )


class EnergyModel:
    """Turns event counts into an :class:`EnergyBreakdown`."""

    def __init__(self, params: Optional[EnergyParams] = None):
        self.params = params or EnergyParams()

    def compute(
        self,
        simd_ops: int,
        macs: int,
        aggregation_buffer_bytes: Mapping[str, int],
        combination_buffer_bytes: Mapping[str, int],
        coordinator_buffer_bytes: int,
        dram_bytes: int,
        cycles: int,
    ) -> EnergyBreakdown:
        """Compute the energy breakdown of one simulation run.

        ``aggregation_buffer_bytes`` / ``combination_buffer_bytes`` map buffer
        names to total bytes accessed (reads + writes); ``coordinator_buffer_bytes``
        is the traffic of the Aggregation (ping-pong) Buffer, which Table 7
        attributes to the Coordinator.
        """
        p = self.params
        agg_buffer_traffic = sum(aggregation_buffer_bytes.values())
        comb_buffer_traffic = sum(combination_buffer_bytes.values())
        return EnergyBreakdown(
            aggregation_compute_pj=simd_ops * p.simd_op_pj,
            aggregation_buffers_pj=agg_buffer_traffic * p.buffer_pj_per_byte,
            combination_compute_pj=macs * p.mac_pj,
            combination_buffers_pj=comb_buffer_traffic * p.buffer_pj_per_byte,
            coordinator_buffers_pj=coordinator_buffer_bytes * p.buffer_pj_per_byte,
            dram_pj=dram_bytes * p.dram_pj_per_byte,
            static_pj=p.static_energy_pj(cycles),
        )
