"""Design-space exploration utilities.

The paper fixes one design point (Table 6) and explores a few axes in
Section 5.4.  Adopters typically need the reverse workflow: given a workload
mix and a silicon budget, find the accelerator configuration that balances
performance against power and area.  This module provides that workflow as a
library API (the ``examples/design_space_exploration.py`` script is a thin
wrapper around it):

* :class:`DesignPoint` -- one structural configuration plus its derived cost,
* :func:`evaluate_design_point` -- simulate a workload mix and attach the
  area/power estimate,
* :func:`explore` -- sweep a list of candidate configurations,
* :func:`pareto_front` -- filter the sweep down to the non-dominated points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import HyGCNConfig
from ..core.simulator import HyGCNSimulator
from ..graphs.datasets import load_dataset
from ..graphs.graph import Graph
from ..hw.area import AreaPowerConfig, AreaPowerModel
from ..models.model_zoo import build_model

__all__ = ["WorkloadMix", "DesignPoint", "evaluate_design_point", "explore", "pareto_front"]


@dataclass(frozen=True)
class WorkloadMix:
    """A named list of (model, dataset) pairs used to score design points."""

    name: str = "default"
    entries: Tuple[Tuple[str, str], ...] = (("GCN", "CR"), ("GIN", "CL"))
    seed: int = 0

    def graphs(self) -> List[Tuple[str, Graph]]:
        """Materialise the datasets of the mix (cached by ``load_dataset``)."""
        return [(model, load_dataset(dataset, seed=self.seed))
                for model, dataset in self.entries]


@dataclass
class DesignPoint:
    """One accelerator configuration and its measured cost on a workload mix."""

    config: HyGCNConfig
    total_cycles: int = 0
    total_energy_j: float = 0.0
    power_w: float = 0.0
    area_mm2: float = 0.0
    per_workload_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def time_ms(self) -> float:
        return self.total_cycles / (self.config.clock_ghz * 1e6)

    @property
    def perf_per_watt(self) -> float:
        """1 / (ms * W): larger is better."""
        denominator = self.time_ms * self.power_w
        return 1.0 / denominator if denominator else 0.0

    @property
    def perf_per_mm2(self) -> float:
        """1 / (ms * mm^2): larger is better."""
        denominator = self.time_ms * self.area_mm2
        return 1.0 / denominator if denominator else 0.0

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (time, power, area): no worse on all, better on one."""
        no_worse = (self.time_ms <= other.time_ms
                    and self.power_w <= other.power_w
                    and self.area_mm2 <= other.area_mm2)
        strictly_better = (self.time_ms < other.time_ms
                           or self.power_w < other.power_w
                           or self.area_mm2 < other.area_mm2)
        return no_worse and strictly_better

    def as_row(self) -> Dict[str, object]:
        cfg = self.config
        return {
            "simd_cores": cfg.num_simd_cores,
            "systolic_modules": cfg.num_systolic_modules,
            "agg_buffer_mb": cfg.aggregation_buffer_bytes >> 20,
            "time_ms": round(self.time_ms, 3),
            "energy_mj": round(self.total_energy_j * 1e3, 3),
            "power_w": round(self.power_w, 2),
            "area_mm2": round(self.area_mm2, 2),
            "perf_per_watt": round(self.perf_per_watt, 4),
            "perf_per_mm2": round(self.perf_per_mm2, 4),
        }


def _area_power_config(config: HyGCNConfig) -> AreaPowerConfig:
    """Project the simulator configuration onto the area/power model's knobs."""
    return AreaPowerConfig(
        num_simd_cores=config.num_simd_cores,
        simd_width=config.simd_width,
        num_systolic_modules=config.num_systolic_modules,
        systolic_rows=config.systolic_rows,
        systolic_cols=config.systolic_cols,
        input_buffer_bytes=config.input_buffer_bytes,
        edge_buffer_bytes=config.edge_buffer_bytes,
        weight_buffer_bytes=config.weight_buffer_bytes,
        output_buffer_bytes=config.output_buffer_bytes,
        aggregation_buffer_bytes=config.aggregation_buffer_bytes,
    )


def evaluate_design_point(config: HyGCNConfig,
                          mix: Optional[WorkloadMix] = None) -> DesignPoint:
    """Simulate the workload mix on ``config`` and attach the silicon cost."""
    mix = mix or WorkloadMix()
    simulator = HyGCNSimulator(config)
    point = DesignPoint(config=config)
    for model_name, graph in mix.graphs():
        model = build_model(model_name, input_length=graph.feature_length)
        report = simulator.run_model(model, graph, dataset_name=graph.name)
        point.total_cycles += report.total_cycles
        point.total_energy_j += report.total_energy_j
        point.per_workload_cycles[f"{model_name}/{graph.name}"] = report.total_cycles
    cost = AreaPowerModel(_area_power_config(config))
    point.power_w = cost.total_power_w()
    point.area_mm2 = cost.total_area_mm2()
    return point


def explore(configs: Sequence[HyGCNConfig],
            mix: Optional[WorkloadMix] = None,
            parallel: bool = True,
            max_workers: Optional[int] = None) -> List[DesignPoint]:
    """Evaluate every candidate configuration on the same workload mix.

    Candidate evaluations are independent, so they fan out across CPU cores
    (with a transparent sequential fallback) like the named sweeps.
    """
    from functools import partial

    from .sweeps import parallel_map

    mix = mix or WorkloadMix()
    return parallel_map(partial(evaluate_design_point, mix=mix), configs,
                        max_workers=max_workers, parallel=parallel)


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Return the non-dominated subset of ``points`` (time, power, area)."""
    front = []
    for candidate in points:
        if not any(other.dominates(candidate) for other in points if other is not candidate):
            front.append(candidate)
    return front
