"""Ablation and scalability sweeps (Sections 5.3 and 5.4).

Each function regenerates one of the optimisation-analysis or scalability
experiments: sparsity elimination (Fig. 15), the inter-engine pipeline
(Fig. 16), memory-access coordination (Fig. 17), and the three Fig. 18 sweeps
(sampling factor, Aggregation Buffer capacity, systolic module granularity).
Results are returned as lists of plain dictionaries so the benchmark harness
can print them as tables.

Every sweep enumerates independent (dataset, model, config) simulation jobs,
so they fan out across a :class:`concurrent.futures.ProcessPoolExecutor` by
default (``parallel=False`` forces sequential execution, and any failure to
spin up or use the pool -- sandboxed environments, unpicklable overrides --
falls back to the sequential path with identical results).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from ..core.config import HyGCNConfig, PipelineMode
from ..core.simulator import HyGCNSimulator
from ..core.stats import SimulationReport
from ..graphs.datasets import load_dataset
from ..models.model_zoo import build_model

__all__ = [
    "SimJob",
    "run_simulation_jobs",
    "parallel_map",
    "sparsity_elimination_sweep",
    "pipeline_mode_sweep",
    "memory_coordination_sweep",
    "sampling_factor_sweep",
    "aggregation_buffer_sweep",
    "systolic_module_sweep",
]

MIB = 1024 * 1024

_T = TypeVar("_T")
_R = TypeVar("_R")


# --------------------------------------------------------------------- #
# Parallel job execution
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SimJob:
    """One independent simulation: a (dataset, model, config) combination."""

    dataset: str
    model_name: str
    config: HyGCNConfig
    seed: int = 0
    sampling_factor: int = 1


@lru_cache(maxsize=32)
def _model_for(model_name: str, input_length: int, sampling_factor: int):
    """Process-local model reuse: jobs that differ only in the hardware
    config share one model instance, so the memoised ``workloads_for``
    flattening (and ``load_dataset``'s graph cache) actually repeat."""
    return build_model(model_name, input_length=input_length,
                       sampling_factor=sampling_factor)


def _execute_sim_job(job: SimJob) -> SimulationReport:
    """Worker entry point; module-level so it pickles into pool processes."""
    graph = load_dataset(job.dataset, seed=job.seed)
    model = _model_for(job.model_name, graph.feature_length, job.sampling_factor)
    return HyGCNSimulator(job.config).run_model(model, graph, job.dataset)


def _pool_warmup() -> bool:
    """No-op task used to probe that pool workers can actually spawn."""
    return True


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    max_workers: Optional[int] = None,
    parallel: bool = True,
) -> List[_R]:
    """Order-preserving map over ``items``, on a process pool when possible.

    ``fn`` and every item must be picklable for the pool path.  When the pool
    cannot be used -- single item, one CPU, ``parallel=False``, or a pool
    *infrastructure* failure (no forking in the sandbox, unpicklable payloads,
    a broken/crashed pool) -- the map runs sequentially in-process, producing
    identical results.  An exception raised by ``fn`` itself is not an
    infrastructure failure and propagates immediately on either path: a no-op
    warm-up task probes the pool first, so spawn-time errors (OSError) are
    distinguished from errors ``fn`` raises while mapping.
    """
    import pickle
    from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

    items = list(items)
    use_pool = parallel and len(items) > 1 and (os.cpu_count() or 1) > 1
    executor = None
    if use_pool:
        try:
            executor = ProcessPoolExecutor(max_workers=max_workers)
            executor.submit(_pool_warmup).result()
        except (BrokenExecutor, ImportError, OSError):
            if executor is not None:
                executor.shutdown(wait=False)
            executor = None  # pool unusable here: use the sequential path
    if executor is not None:
        try:
            with executor:
                return list(executor.map(fn, items))
        except (BrokenExecutor, pickle.PicklingError):
            pass  # pool died or payload unpicklable: re-run sequentially
    return [fn(item) for item in items]


def run_simulation_jobs(
    jobs: Sequence[SimJob],
    max_workers: Optional[int] = None,
    parallel: bool = True,
) -> List[SimulationReport]:
    """Run independent simulation jobs, fanning out across CPU cores."""
    return parallel_map(_execute_sim_job, jobs, max_workers=max_workers,
                        parallel=parallel)


def sparsity_elimination_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    model_name: str = "GCN",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Fig. 15: HyGCN with vs. without window sliding/shrinking."""
    base = config or HyGCNConfig()
    jobs = [
        SimJob(dataset, model_name,
               base.with_overrides(enable_sparsity_elimination=enabled), seed)
        for dataset in datasets for enabled in (True, False)
    ]
    reports = run_simulation_jobs(jobs, max_workers=max_workers, parallel=parallel)
    rows = []
    for i, dataset in enumerate(datasets):
        with_opt, without = reports[2 * i], reports[2 * i + 1]
        rows.append({
            "dataset": dataset,
            "speedup": without.execution_time_s / with_opt.execution_time_s,
            "execution_time_pct": 100.0 * with_opt.execution_time_s / without.execution_time_s,
            "dram_access_pct": 100.0 * with_opt.total_dram_bytes / without.total_dram_bytes,
            "sparsity_reduction_pct": 100.0 * with_opt.avg_sparsity_reduction,
        })
    return rows


def pipeline_mode_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    model_name: str = "GCN",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Fig. 16: no-pipeline vs. pipeline, and latency- vs. energy-aware modes."""
    base = config or HyGCNConfig()
    modes = (PipelineMode.NONE, PipelineMode.LATENCY, PipelineMode.ENERGY)
    jobs = [
        SimJob(dataset, model_name, base.with_overrides(pipeline_mode=mode), seed)
        for dataset in datasets for mode in modes
    ]
    reports = run_simulation_jobs(jobs, max_workers=max_workers, parallel=parallel)
    rows = []
    for i, dataset in enumerate(datasets):
        no_pipe, latency, energy = reports[3 * i:3 * i + 3]
        rows.append({
            "dataset": dataset,
            "execution_time_pct_vs_no_pipeline":
                100.0 * latency.execution_time_s / no_pipe.execution_time_s,
            "dram_access_pct_vs_no_pipeline":
                100.0 * latency.total_dram_bytes / no_pipe.total_dram_bytes,
            "lpipe_vertex_latency_pct_vs_epipe":
                100.0 * latency.avg_vertex_latency_cycles
                / max(1e-9, energy.avg_vertex_latency_cycles),
            "epipe_combination_energy_pct_vs_lpipe":
                100.0 * energy.energy.combination_engine_pj
                / max(1e-9, latency.energy.combination_engine_pj),
        })
    return rows


def memory_coordination_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    model_name: str = "GCN",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Fig. 17: off-chip access coordination on vs. off."""
    base = config or HyGCNConfig()
    jobs = [
        SimJob(dataset, model_name,
               base.with_overrides(enable_memory_coordination=enabled), seed)
        for dataset in datasets for enabled in (True, False)
    ]
    reports = run_simulation_jobs(jobs, max_workers=max_workers, parallel=parallel)
    rows = []
    for i, dataset in enumerate(datasets):
        coordinated, uncoordinated = reports[2 * i], reports[2 * i + 1]
        rows.append({
            "dataset": dataset,
            "execution_time_pct_with_coordination":
                100.0 * coordinated.execution_time_s / uncoordinated.execution_time_s,
            "time_saving_pct":
                100.0 * (1.0 - coordinated.execution_time_s / uncoordinated.execution_time_s),
            "bandwidth_utilization_improvement":
                coordinated.bandwidth_utilization
                / max(1e-9, uncoordinated.bandwidth_utilization),
        })
    return rows


def sampling_factor_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    factors: Sequence[int] = (1, 2, 4, 8, 16),
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Fig. 18a-c: GraphSage sampling factor vs. time / DRAM / sparsity reduction."""
    base = config or HyGCNConfig()
    jobs = [
        SimJob(dataset, "GSC", base, seed, sampling_factor=factor)
        for dataset in datasets for factor in factors
    ]
    reports = run_simulation_jobs(jobs, max_workers=max_workers, parallel=parallel)
    rows = []
    for i, dataset in enumerate(datasets):
        baseline = None
        for j, factor in enumerate(factors):
            report = reports[i * len(factors) + j]
            if baseline is None:
                baseline = report
            rows.append({
                "dataset": dataset,
                "sampling_factor": factor,
                "execution_time_pct": 100.0 * report.execution_time_s
                / baseline.execution_time_s,
                "dram_access_pct": 100.0 * report.total_dram_bytes
                / max(1, baseline.total_dram_bytes),
                "sparsity_reduction_pct": 100.0 * report.avg_sparsity_reduction,
            })
    return rows


def aggregation_buffer_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    capacities_mb: Sequence[int] = (2, 4, 8, 16, 32),
    model_name: str = "GSC",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Fig. 18d-f: Aggregation Buffer capacity vs. time / DRAM / sparsity reduction."""
    base = config or HyGCNConfig()
    jobs = [
        SimJob(dataset, model_name,
               base.with_overrides(aggregation_buffer_bytes=capacity * MIB), seed)
        for dataset in datasets for capacity in capacities_mb
    ]
    reports = run_simulation_jobs(jobs, max_workers=max_workers, parallel=parallel)
    rows = []
    for i, dataset in enumerate(datasets):
        baseline = None
        for j, capacity in enumerate(capacities_mb):
            report = reports[i * len(capacities_mb) + j]
            if baseline is None:
                baseline = report
            rows.append({
                "dataset": dataset,
                "capacity_mb": capacity,
                "execution_time_pct": 100.0 * report.execution_time_s
                / baseline.execution_time_s,
                "dram_access_pct": 100.0 * report.total_dram_bytes
                / max(1, baseline.total_dram_bytes),
                "sparsity_reduction_pct": 100.0 * report.avg_sparsity_reduction,
            })
    return rows


def systolic_module_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    module_counts: Sequence[int] = (32, 16, 8, 4, 2, 1),
    model_name: str = "GSC",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Fig. 18g: module granularity (fixed total arrays) vs. vertex latency / energy.

    Following the paper, a basic module is 1x128 systolic arrays and the total
    array count is fixed at 32: fewer modules means each module is taller and
    a larger vertex group must be assembled before combining.
    """
    base = config or HyGCNConfig()
    total_rows = 32
    jobs = [
        SimJob(dataset, model_name,
               base.with_overrides(num_systolic_modules=modules,
                                   systolic_rows=total_rows // modules), seed)
        for dataset in datasets for modules in module_counts
    ]
    reports = run_simulation_jobs(jobs, max_workers=max_workers, parallel=parallel)
    rows = []
    for i, dataset in enumerate(datasets):
        baseline = None
        for j, modules in enumerate(module_counts):
            report = reports[i * len(module_counts) + j]
            if baseline is None:
                baseline = report
            rows.append({
                "dataset": dataset,
                "num_modules": modules,
                "vertex_latency_pct": 100.0 * report.avg_vertex_latency_cycles
                / max(1e-9, baseline.avg_vertex_latency_cycles),
                "combination_energy_pct": 100.0 * report.energy.combination_engine_pj
                / max(1e-9, baseline.energy.combination_engine_pj),
            })
    return rows
