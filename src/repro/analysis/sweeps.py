"""Ablation and scalability sweeps (Sections 5.3 and 5.4).

Each function regenerates one of the optimisation-analysis or scalability
experiments: sparsity elimination (Fig. 15), the inter-engine pipeline
(Fig. 16), memory-access coordination (Fig. 17), and the three Fig. 18 sweeps
(sampling factor, Aggregation Buffer capacity, systolic module granularity).
Results are returned as lists of plain dictionaries so the benchmark harness
can print them as tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import HyGCNConfig, PipelineMode
from ..core.simulator import HyGCNSimulator
from ..graphs.datasets import load_dataset
from ..graphs.graph import Graph
from ..models.model_zoo import build_model

__all__ = [
    "sparsity_elimination_sweep",
    "pipeline_mode_sweep",
    "memory_coordination_sweep",
    "sampling_factor_sweep",
    "aggregation_buffer_sweep",
    "systolic_module_sweep",
]

MIB = 1024 * 1024


def _graph_for(dataset: str, seed: int) -> Graph:
    return load_dataset(dataset, seed=seed)


def sparsity_elimination_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    model_name: str = "GCN",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Fig. 15: HyGCN with vs. without window sliding/shrinking."""
    base = config or HyGCNConfig()
    rows = []
    for dataset in datasets:
        graph = _graph_for(dataset, seed)
        model = build_model(model_name, input_length=graph.feature_length)
        with_opt = HyGCNSimulator(base.with_overrides(enable_sparsity_elimination=True)) \
            .run_model(model, graph, dataset)
        without = HyGCNSimulator(base.with_overrides(enable_sparsity_elimination=False)) \
            .run_model(model, graph, dataset)
        rows.append({
            "dataset": dataset,
            "speedup": without.execution_time_s / with_opt.execution_time_s,
            "execution_time_pct": 100.0 * with_opt.execution_time_s / without.execution_time_s,
            "dram_access_pct": 100.0 * with_opt.total_dram_bytes / without.total_dram_bytes,
            "sparsity_reduction_pct": 100.0 * with_opt.avg_sparsity_reduction,
        })
    return rows


def pipeline_mode_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    model_name: str = "GCN",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Fig. 16: no-pipeline vs. pipeline, and latency- vs. energy-aware modes."""
    base = config or HyGCNConfig()
    rows = []
    for dataset in datasets:
        graph = _graph_for(dataset, seed)
        model = build_model(model_name, input_length=graph.feature_length)
        no_pipe = HyGCNSimulator(base.with_overrides(pipeline_mode=PipelineMode.NONE)) \
            .run_model(model, graph, dataset)
        latency = HyGCNSimulator(base.with_overrides(pipeline_mode=PipelineMode.LATENCY)) \
            .run_model(model, graph, dataset)
        energy = HyGCNSimulator(base.with_overrides(pipeline_mode=PipelineMode.ENERGY)) \
            .run_model(model, graph, dataset)
        rows.append({
            "dataset": dataset,
            "execution_time_pct_vs_no_pipeline":
                100.0 * latency.execution_time_s / no_pipe.execution_time_s,
            "dram_access_pct_vs_no_pipeline":
                100.0 * latency.total_dram_bytes / no_pipe.total_dram_bytes,
            "lpipe_vertex_latency_pct_vs_epipe":
                100.0 * latency.avg_vertex_latency_cycles
                / max(1e-9, energy.avg_vertex_latency_cycles),
            "epipe_combination_energy_pct_vs_lpipe":
                100.0 * energy.energy.combination_engine_pj
                / max(1e-9, latency.energy.combination_engine_pj),
        })
    return rows


def memory_coordination_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    model_name: str = "GCN",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Fig. 17: off-chip access coordination on vs. off."""
    base = config or HyGCNConfig()
    rows = []
    for dataset in datasets:
        graph = _graph_for(dataset, seed)
        model = build_model(model_name, input_length=graph.feature_length)
        coordinated = HyGCNSimulator(base.with_overrides(enable_memory_coordination=True)) \
            .run_model(model, graph, dataset)
        uncoordinated = HyGCNSimulator(base.with_overrides(enable_memory_coordination=False)) \
            .run_model(model, graph, dataset)
        rows.append({
            "dataset": dataset,
            "execution_time_pct_with_coordination":
                100.0 * coordinated.execution_time_s / uncoordinated.execution_time_s,
            "time_saving_pct":
                100.0 * (1.0 - coordinated.execution_time_s / uncoordinated.execution_time_s),
            "bandwidth_utilization_improvement":
                coordinated.bandwidth_utilization
                / max(1e-9, uncoordinated.bandwidth_utilization),
        })
    return rows


def sampling_factor_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    factors: Sequence[int] = (1, 2, 4, 8, 16),
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Fig. 18a-c: GraphSage sampling factor vs. time / DRAM / sparsity reduction."""
    base = config or HyGCNConfig()
    rows = []
    for dataset in datasets:
        graph = _graph_for(dataset, seed)
        baseline = None
        for factor in factors:
            model = build_model("GSC", input_length=graph.feature_length,
                                sampling_factor=factor)
            report = HyGCNSimulator(base).run_model(model, graph, dataset)
            if baseline is None:
                baseline = report
            rows.append({
                "dataset": dataset,
                "sampling_factor": factor,
                "execution_time_pct": 100.0 * report.execution_time_s
                / baseline.execution_time_s,
                "dram_access_pct": 100.0 * report.total_dram_bytes
                / max(1, baseline.total_dram_bytes),
                "sparsity_reduction_pct": 100.0 * report.avg_sparsity_reduction,
            })
    return rows


def aggregation_buffer_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    capacities_mb: Sequence[int] = (2, 4, 8, 16, 32),
    model_name: str = "GSC",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Fig. 18d-f: Aggregation Buffer capacity vs. time / DRAM / sparsity reduction."""
    base = config or HyGCNConfig()
    rows = []
    for dataset in datasets:
        graph = _graph_for(dataset, seed)
        model = build_model(model_name, input_length=graph.feature_length)
        baseline = None
        for capacity in capacities_mb:
            cfg = base.with_overrides(aggregation_buffer_bytes=capacity * MIB)
            report = HyGCNSimulator(cfg).run_model(model, graph, dataset)
            if baseline is None:
                baseline = report
            rows.append({
                "dataset": dataset,
                "capacity_mb": capacity,
                "execution_time_pct": 100.0 * report.execution_time_s
                / baseline.execution_time_s,
                "dram_access_pct": 100.0 * report.total_dram_bytes
                / max(1, baseline.total_dram_bytes),
                "sparsity_reduction_pct": 100.0 * report.avg_sparsity_reduction,
            })
    return rows


def systolic_module_sweep(
    datasets: Sequence[str] = ("CR", "CS", "PB"),
    module_counts: Sequence[int] = (32, 16, 8, 4, 2, 1),
    model_name: str = "GSC",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Fig. 18g: module granularity (fixed total arrays) vs. vertex latency / energy.

    Following the paper, a basic module is 1x128 systolic arrays and the total
    array count is fixed at 32: fewer modules means each module is taller and
    a larger vertex group must be assembled before combining.
    """
    base = config or HyGCNConfig()
    total_rows = 32
    rows = []
    for dataset in datasets:
        graph = _graph_for(dataset, seed)
        model = build_model(model_name, input_length=graph.feature_length)
        baseline = None
        for modules in module_counts:
            cfg = base.with_overrides(
                num_systolic_modules=modules,
                systolic_rows=total_rows // modules,
            )
            report = HyGCNSimulator(cfg).run_model(model, graph, dataset)
            if baseline is None:
                baseline = report
            rows.append({
                "dataset": dataset,
                "num_modules": modules,
                "vertex_latency_pct": 100.0 * report.avg_vertex_latency_cycles
                / max(1e-9, baseline.avg_vertex_latency_cycles),
                "combination_energy_pct": 100.0 * report.energy.combination_engine_pj
                / max(1e-9, baseline.energy.combination_engine_pj),
            })
    return rows
