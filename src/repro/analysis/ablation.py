"""Stacked-optimisation ablation.

DESIGN.md calls out three design choices beyond the raw engines: the
data-aware sparsity elimination, the inter-engine pipeline and the
priority-based memory-access coordination.  The paper ablates each in
isolation (Figs. 15-17); this module additionally stacks them, starting from
a baseline with every optimisation disabled and enabling one feature at a
time, so the *cumulative* contribution of each choice is visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.config import HyGCNConfig, PipelineMode
from .sweeps import SimJob, run_simulation_jobs

__all__ = ["ABLATION_STEPS", "stacked_optimization_ablation"]

#: The cumulative steps, in the order the paper introduces the techniques.
ABLATION_STEPS = (
    "baseline",
    "+sparsity elimination",
    "+inter-engine pipeline",
    "+memory coordination",
)


def _config_for_step(step_index: int, base: HyGCNConfig) -> HyGCNConfig:
    """Configuration with the first ``step_index`` optimisations enabled."""
    return base.with_overrides(
        enable_sparsity_elimination=step_index >= 1,
        pipeline_mode=PipelineMode.LATENCY if step_index >= 2 else PipelineMode.NONE,
        enable_memory_coordination=step_index >= 3,
    )


def stacked_optimization_ablation(
    dataset: str = "CR",
    model_name: str = "GCN",
    config: Optional[HyGCNConfig] = None,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run the cumulative ablation and return one row per step.

    Each row reports execution time, DRAM traffic and energy normalised to the
    all-optimisations-off baseline, so the incremental benefit of each design
    choice reads directly off the table.  The steps are independent
    simulations, so they fan out across cores like the named sweeps.
    """
    base = config or HyGCNConfig()
    jobs = [SimJob(dataset, model_name, _config_for_step(index, base), seed)
            for index in range(len(ABLATION_STEPS))]
    reports = run_simulation_jobs(jobs, max_workers=max_workers, parallel=parallel)
    rows: List[Dict[str, float]] = []
    baseline = None
    for index, step in enumerate(ABLATION_STEPS):
        report = reports[index]
        if baseline is None:
            baseline = report
        rows.append({
            "step": step,
            "dataset": dataset,
            "cycles": report.total_cycles,
            "time_pct_of_baseline": 100.0 * report.total_cycles / baseline.total_cycles,
            "dram_pct_of_baseline": 100.0 * report.total_dram_bytes
            / max(1, baseline.total_dram_bytes),
            "energy_pct_of_baseline": 100.0 * report.total_energy_j
            / max(1e-12, baseline.total_energy_j),
            "speedup_vs_baseline": baseline.total_cycles / max(1, report.total_cycles),
        })
    return rows
