"""Comparison tables, ablation sweeps and report formatting."""

from .ablation import ABLATION_STEPS, stacked_optimization_ablation
from .comparison import ComparisonResult, PlatformComparison, geometric_mean
from .dse import (
    DesignPoint,
    WorkloadMix,
    evaluate_design_point,
    explore,
    pareto_front,
)
from .report import format_table, print_table
from .sweeps import (
    SimJob,
    aggregation_buffer_sweep,
    memory_coordination_sweep,
    parallel_map,
    pipeline_mode_sweep,
    run_simulation_jobs,
    sampling_factor_sweep,
    sparsity_elimination_sweep,
    systolic_module_sweep,
)

__all__ = [
    "ABLATION_STEPS",
    "stacked_optimization_ablation",
    "DesignPoint",
    "WorkloadMix",
    "evaluate_design_point",
    "explore",
    "pareto_front",
    "ComparisonResult",
    "PlatformComparison",
    "geometric_mean",
    "format_table",
    "print_table",
    "SimJob",
    "parallel_map",
    "run_simulation_jobs",
    "aggregation_buffer_sweep",
    "memory_coordination_sweep",
    "pipeline_mode_sweep",
    "sampling_factor_sweep",
    "sparsity_elimination_sweep",
    "systolic_module_sweep",
]
