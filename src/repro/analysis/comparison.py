"""Cross-platform comparison harness.

Runs the same (model, dataset) pair on PyG-CPU, PyG-GPU and HyGCN and derives
the comparison metrics the paper's overall-results figures report: speedup
(Fig. 10c), normalised energy (Fig. 11), HyGCN's energy breakdown (Fig. 12),
DRAM bandwidth utilisation (Fig. 13) and normalised DRAM access (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines.base import BaselineReport
from ..baselines.cpu import CPUConfig, PyGCPUModel
from ..baselines.gpu import GPUConfig, PyGGPUModel
from ..core.config import HyGCNConfig
from ..core.simulator import HyGCNSimulator
from ..core.stats import SimulationReport
from ..graphs.datasets import DATASETS, load_dataset
from ..models.model_zoo import build_model

__all__ = ["ComparisonResult", "PlatformComparison", "geometric_mean"]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 if the sequence is empty)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))


@dataclass
class ComparisonResult:
    """All three platforms' results for one (model, dataset) pair."""

    model_name: str
    dataset_name: str
    cpu: BaselineReport
    cpu_optimized: BaselineReport
    gpu: BaselineReport
    hygcn: SimulationReport

    # ------------------------------------------------------------------ #
    @property
    def speedup_vs_cpu(self) -> float:
        """HyGCN speedup over the (algorithm-optimised) PyG-CPU baseline."""
        return self.hygcn.speedup_over(self.cpu_optimized.total_time_s)

    @property
    def speedup_vs_gpu(self) -> Optional[float]:
        if self.gpu.out_of_memory:
            return None
        return self.hygcn.speedup_over(self.gpu.total_time_s)

    @property
    def gpu_speedup_vs_cpu(self) -> Optional[float]:
        if self.gpu.out_of_memory:
            return None
        return self.cpu_optimized.total_time_s / self.gpu.total_time_s

    @property
    def energy_vs_cpu(self) -> float:
        """HyGCN energy normalised to PyG-CPU (the Fig. 11 metric)."""
        return self.hygcn.energy_ratio_to(self.cpu_optimized.energy_j)

    @property
    def energy_vs_gpu(self) -> Optional[float]:
        if self.gpu.out_of_memory:
            return None
        return self.hygcn.energy_ratio_to(self.gpu.energy_j)

    @property
    def dram_vs_cpu(self) -> float:
        """HyGCN DRAM traffic normalised to PyG-CPU (the Fig. 14 metric)."""
        if self.cpu_optimized.dram_bytes == 0:
            return float("inf")
        return self.hygcn.total_dram_bytes / self.cpu_optimized.dram_bytes

    @property
    def dram_vs_gpu(self) -> Optional[float]:
        if self.gpu.out_of_memory or self.gpu.dram_bytes == 0:
            return None
        return self.hygcn.total_dram_bytes / self.gpu.dram_bytes

    def bandwidth_utilizations(self) -> Dict[str, float]:
        """Per-platform DRAM bandwidth utilisation (the Fig. 13 metric)."""
        return {
            "PyG-CPU": self.cpu_optimized.bandwidth_utilization,
            "PyG-GPU": None if self.gpu.out_of_memory else self.gpu.bandwidth_utilization,
            "HyGCN": self.hygcn.bandwidth_utilization,
        }

    def energy_breakdown(self) -> Dict[str, float]:
        """HyGCN energy share per engine (the Fig. 12 metric)."""
        return self.hygcn.energy.engine_shares()

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model_name,
            "dataset": self.dataset_name,
            "speedup_vs_cpu": round(self.speedup_vs_cpu, 1),
            "speedup_vs_gpu": None if self.speedup_vs_gpu is None
            else round(self.speedup_vs_gpu, 2),
            "energy_vs_cpu_pct": round(100.0 * self.energy_vs_cpu, 4),
            "energy_vs_gpu_pct": None if self.energy_vs_gpu is None
            else round(100.0 * self.energy_vs_gpu, 2),
            "dram_vs_cpu_pct": round(100.0 * self.dram_vs_cpu, 1),
            "dram_vs_gpu_pct": None if self.dram_vs_gpu is None
            else round(100.0 * self.dram_vs_gpu, 1),
            "gpu_oom": self.gpu.out_of_memory,
        }


class PlatformComparison:
    """Runs model x dataset grids across the three platforms."""

    def __init__(
        self,
        hygcn_config: Optional[HyGCNConfig] = None,
        cpu_config: Optional[CPUConfig] = None,
        gpu_config: Optional[GPUConfig] = None,
        seed: int = 0,
    ):
        self.simulator = HyGCNSimulator(hygcn_config)
        self.cpu = PyGCPUModel(cpu_config)
        self.cpu_optimized = PyGCPUModel(cpu_config, algorithm_optimized=True)
        self.gpu = PyGGPUModel(gpu_config)
        self.seed = seed

    # ------------------------------------------------------------------ #
    def compare(self, model_name: str, dataset: str) -> ComparisonResult:
        """Run one (model, dataset) pair on all platforms."""
        graph = load_dataset(dataset, seed=self.seed)
        spec = DATASETS.get(dataset)
        model = build_model(model_name, input_length=graph.feature_length)
        return ComparisonResult(
            model_name=model_name,
            dataset_name=dataset,
            cpu=self.cpu.run(model, graph, dataset_name=dataset),
            cpu_optimized=self.cpu_optimized.run(model, graph, dataset_name=dataset),
            gpu=self.gpu.run(model, graph, dataset_name=dataset, full_scale_spec=spec),
            hygcn=self.simulator.run_model(model, graph, dataset_name=dataset),
        )

    def compare_grid(
        self,
        model_names: Sequence[str],
        dataset_names: Sequence[str],
    ) -> List[ComparisonResult]:
        """Run a full model x dataset grid (the paper's evaluation grid)."""
        results = []
        for model_name in model_names:
            for dataset in dataset_names:
                results.append(self.compare(model_name, dataset))
        return results

    @staticmethod
    def summarize(results: Sequence[ComparisonResult]) -> Dict[str, float]:
        """Headline averages analogous to the abstract's numbers."""
        cpu_speedups = [r.speedup_vs_cpu for r in results]
        gpu_speedups = [r.speedup_vs_gpu for r in results if r.speedup_vs_gpu]
        cpu_energy = [1.0 / r.energy_vs_cpu for r in results if r.energy_vs_cpu > 0]
        gpu_energy = [1.0 / r.energy_vs_gpu for r in results if r.energy_vs_gpu]
        return {
            "geomean_speedup_vs_cpu": geometric_mean(cpu_speedups),
            "geomean_speedup_vs_gpu": geometric_mean(gpu_speedups),
            "geomean_energy_reduction_vs_cpu": geometric_mean(cpu_energy),
            "geomean_energy_reduction_vs_gpu": geometric_mean(gpu_energy),
            "num_gpu_oom": sum(1 for r in results if r.gpu.out_of_memory),
        }
