"""Plain-text table formatting for the benchmark harness.

The paper reports its results as figures and tables; the benchmark harness in
``benchmarks/`` prints the same rows/series as ASCII tables using the helpers
here, so a run of ``pytest benchmarks/ --benchmark-only -s`` regenerates every
table and figure of the evaluation in textual form.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "print_table"]


def _format_value(value) -> str:
    if value is None:
        return "OoM"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.01 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: Optional[str] = None,
                 columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dictionaries as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[_format_value(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[Mapping[str, object]], title: Optional[str] = None,
                columns: Optional[Sequence[str]] = None) -> None:
    """Print :func:`format_table` output (used by the benchmark harness)."""
    print()
    print(format_table(rows, title=title, columns=columns))
