"""Elastic control plane: autoscaling, admission control, graceful degradation.

The serving fleet (:mod:`repro.serving.fleet`, :mod:`repro.serving.tenancy`)
is a data plane: it batches, schedules and simulates.  This module is the
control plane that watches it at a fixed *control interval* and acts through
three levers:

* **Autoscaling** -- grow or shrink the chip fleet between
  ``min_chips``/``max_chips`` under a pluggable policy
  (:data:`AUTOSCALE_POLICIES`): ``threshold`` (hysteresis on queueing delay
  with scale-down patience), ``pid`` (a PID controller on the queue-delay
  error against a setpoint fraction of the SLO) and ``ewma`` (predictive --
  an EWMA of the observed arrival rate sized against per-chip capacity).
  A freshly added chip *warms up* for ``warmup_s`` during which it consumes
  chip-seconds but serves nothing (weight streaming, cache fill); scale-in
  *drains* a chip -- it finishes its outstanding work and only then retires.
* **Admission control** -- a per-tenant :class:`TokenBucket` polices the
  offered rate, and reactive shedding rejects requests whose queueing-delay
  estimate already exceeds the SLO budget, so the fleet spends chip time on
  requests that can still meet their deadline.
* **Graceful degradation** -- instead of shedding, an overloaded fleet can
  serve a request at reduced sampling fidelity: the
  :func:`default_degradation_ladder` derives successively cheaper
  (hops, fanout) rungs from the tenant's configured sampling shape, and the
  first rung whose estimated cost fits the remaining SLO budget is stamped
  onto the request.  Degraded records are tagged so the quality loss is
  reported, never hidden.  Under the overlap-aware batch-formation
  policies (:mod:`repro.serving.batching`) the ladder's expected savings
  are damped by the fleet's measured overlap ratio -- work shared with
  co-batched neighbours cannot be saved twice (see :meth:`ControlPlane.admit`).

The :class:`ControlPlane` is deliberately passive and simulator-agnostic: the
event loops call :meth:`ControlPlane.admit` on each arrival and
:meth:`ControlPlane.tick` once per control interval, and execute the returned
decisions themselves (they own the chips and the event heap).  Everything is
deterministic -- the control plane draws no randomness -- so elastic runs
reproduce bit-for-bit under a fixed seed.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .hetero import SCALE_SHAPE_POLICIES
from .stats import AdmissionStats, ControlSample, ControlStats, ScaleEvent

logger = logging.getLogger("repro.serving.control")

__all__ = [
    "AUTOSCALE_POLICIES",
    "AutoscalePolicy",
    "ThresholdPolicy",
    "PIDPolicy",
    "EWMAPolicy",
    "build_autoscale_policy",
    "TokenBucket",
    "DegradeLevel",
    "default_degradation_ladder",
    "ControlConfig",
    "ControlObservation",
    "AdmissionDecision",
    "TenantBinding",
    "ControlPlane",
]

#: Autoscaling-policy names accepted by the CLI and :func:`build_autoscale_policy`.
AUTOSCALE_POLICIES = ("threshold", "pid", "ewma")

#: Adaptive defaults, as multiples of the probe-batch service time: the
#: control loop observes every couple of batches; a commissioned chip warms
#: up for a few batch times before it serves (weight streaming, cache fill).
_CONTROL_INTERVAL_SERVICE_MULTIPLE = 2.0
_WARMUP_SERVICE_MULTIPLE = 4.0

#: Auto-sized token buckets refill at this multiple of the tenant's share of
#: fleet capacity: the bucket is the *coarse* gate (sustained gross overload),
#: while the SLO-budget check does the precision shedding/degrading, so the
#: contract is set above nominal capacity to let bursts through.
_ADMISSION_AUTO_HEADROOM = 1.5


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ControlConfig:
    """Which levers are armed and how they are parameterised.

    ``autoscale=None`` pins the fleet size (admission/degradation can still be
    armed).  ``control_interval_s``/``warmup_s`` default to adaptive values
    derived from a probe batch's service time, like the data-plane timeout and
    SLO defaults, so the control loop stays meaningful across datasets whose
    batch cost varies by orders of magnitude.  ``admission_rate_rps=None``
    auto-sizes each tenant's token bucket to its weight share of the largest
    fleet the run can hold (the ``max_chips`` ceiling when autoscaling, the
    fixed fleet size otherwise) times a burst-headroom multiple -- the bucket
    polices sustained gross overload while the SLO-budget check does the
    precision shedding.  ``policy_params`` overrides the chosen policy's
    constructor defaults (e.g. ``{"patience": 1}`` for a twitchier threshold
    scaler).

    ``scale_shape`` only matters on heterogeneous fleets
    (:mod:`repro.serving.hetero`): it picks *which* chip shape a scale-up
    commissions and which a scale-down drains first --
    ``cheapest-adequate`` (the leanest shape whose learned rate for the
    dominant demand is close enough to the best) or ``bottleneck-phase``
    (the best-rated shape for the dominant demand, whatever it costs).
    Homogeneous fleets have one shape and ignore it.
    """

    autoscale: Optional[str] = None
    min_chips: int = 1
    max_chips: int = 8
    control_interval_s: Optional[float] = None
    warmup_s: Optional[float] = None
    policy_params: Mapping[str, float] = field(default_factory=dict)
    admission: bool = False
    admission_rate_rps: Optional[float] = None
    admission_burst: float = 32.0
    #: Fraction of the SLO the delay estimate may fill before a request is
    #: shed/degraded; < 1 leaves headroom for estimation error.
    admission_slo_margin: float = 0.85
    degrade: bool = False
    max_degrade_level: int = 2
    scale_shape: str = "cheapest-adequate"

    def __post_init__(self) -> None:
        if self.scale_shape not in SCALE_SHAPE_POLICIES:
            raise ValueError(f"scale_shape must be one of "
                             f"{SCALE_SHAPE_POLICIES}, "
                             f"got {self.scale_shape!r}")
        if self.autoscale is not None and self.autoscale not in AUTOSCALE_POLICIES:
            raise ValueError(f"autoscale must be one of {AUTOSCALE_POLICIES} "
                             f"or None, got {self.autoscale!r}")
        if self.min_chips < 1:
            raise ValueError("min_chips must be >= 1")
        if self.max_chips < self.min_chips:
            raise ValueError("max_chips must be >= min_chips")
        if self.control_interval_s is not None and self.control_interval_s <= 0:
            raise ValueError("control_interval_s must be positive when set")
        if self.warmup_s is not None and self.warmup_s < 0:
            raise ValueError("warmup_s must be >= 0 when set")
        if self.admission_rate_rps is not None and self.admission_rate_rps <= 0:
            raise ValueError("admission_rate_rps must be positive when set")
        if self.admission_burst < 1:
            raise ValueError("admission_burst must be >= 1")
        if self.admission_slo_margin <= 0:
            raise ValueError("admission_slo_margin must be positive")
        if self.max_degrade_level < 1:
            raise ValueError("max_degrade_level must be >= 1")

    @property
    def active(self) -> bool:
        """True when any lever is armed (the loops skip all hooks otherwise)."""
        return self.autoscale is not None or self.admission or self.degrade


# --------------------------------------------------------------------------- #
# Observations and decisions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ControlObservation:
    """What the data plane saw over the last control interval."""

    now_s: float
    interval_s: float
    active_chips: int
    warming_chips: int
    draining_chips: int
    queue_depth: int          # admitted-but-incomplete requests right now
    backlog_cost_s: float     # estimated chip-seconds of that outstanding work
    arrivals: int             # offered this interval (before admission)
    completions: int
    violations: int           # completions over the SLO this interval
    shed: int
    utilization: float        # busy fraction of the active chips
    cost_per_request_s: float  # EWMA chip-seconds per completed request
    slo_s: float

    @property
    def arrival_rate_rps(self) -> float:
        return self.arrivals / self.interval_s if self.interval_s > 0 else 0.0

    @property
    def est_queue_delay_s(self) -> float:
        """Backlog drain time across the currently serving chips."""
        return self.backlog_cost_s / max(1, self.active_chips)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``cost_scale`` is the estimated service-cost multiplier of the granted
    fidelity (1.0 full fidelity); the data plane uses it for backlog
    accounting.  ``num_hops``/``fanout`` are ``None`` unless degraded.
    """

    admitted: bool
    level: int = 0
    num_hops: Optional[int] = None
    fanout: Optional[int] = None
    cost_scale: float = 1.0
    reason: str = "admitted"


# --------------------------------------------------------------------------- #
# Autoscaling policies
# --------------------------------------------------------------------------- #
class AutoscalePolicy:
    """Base policy: map an observation to a desired fleet size.

    ``desired_chips`` receives ``current`` = active + warming (committed
    capacity); the plane clamps the answer into ``[min_chips, max_chips]``.
    Policies are stateful (hysteresis counters, integrators, EWMAs) and are
    constructed fresh for every run, which keeps elastic runs deterministic.
    """

    name = "fixed"

    def desired_chips(self, obs: ControlObservation, current: int) -> int:
        return current


class ThresholdPolicy(AutoscalePolicy):
    """Hysteresis on the queue-delay fraction of the SLO.

    Scale up by ``step`` after ``patience`` consecutive intervals with the
    delay estimate above ``up_delay_fraction`` of the SLO; scale down by one
    after ``patience`` consecutive intervals with the delay below
    ``down_delay_fraction`` *and* utilization below ``down_utilization``.
    The dead band between the thresholds is what stops flapping.
    """

    name = "threshold"

    def __init__(self, up_delay_fraction: float = 0.5,
                 down_delay_fraction: float = 0.1,
                 down_utilization: float = 0.6,
                 patience: int = 2, step: int = 1):
        if not 0 < down_delay_fraction < up_delay_fraction:
            raise ValueError("need 0 < down_delay_fraction < up_delay_fraction")
        if patience < 1 or step < 1:
            raise ValueError("patience and step must be >= 1")
        self.up_delay_fraction = float(up_delay_fraction)
        self.down_delay_fraction = float(down_delay_fraction)
        self.down_utilization = float(down_utilization)
        self.patience = int(patience)
        self.step = int(step)
        self._over = 0
        self._under = 0

    def desired_chips(self, obs: ControlObservation, current: int) -> int:
        delay_fraction = obs.est_queue_delay_s / obs.slo_s if obs.slo_s > 0 else 0.0
        if delay_fraction > self.up_delay_fraction:
            self._over += 1
            self._under = 0
        elif delay_fraction < self.down_delay_fraction \
                and obs.utilization < self.down_utilization:
            self._under += 1
            self._over = 0
        else:
            self._over = self._under = 0
        if self._over >= self.patience:
            self._over = 0
            return current + self.step
        if self._under >= self.patience:
            self._under = 0
            return current - 1
        return current


class PIDPolicy(AutoscalePolicy):
    """PID controller on the queue delay, normalised by the SLO.

    The error is ``delay/slo - setpoint_fraction``; the output is a chip
    delta clamped to ``±max_step`` per interval.  The integral term is
    clamped (anti-windup) so a long overload does not bank unbounded
    scale-down pressure afterwards.
    """

    name = "pid"

    def __init__(self, setpoint_fraction: float = 0.25, kp: float = 2.0,
                 ki: float = 0.5, kd: float = 0.5, max_step: int = 2,
                 integral_limit: float = 4.0):
        if setpoint_fraction <= 0:
            raise ValueError("setpoint_fraction must be positive")
        if max_step < 1:
            raise ValueError("max_step must be >= 1")
        self.setpoint_fraction = float(setpoint_fraction)
        self.kp, self.ki, self.kd = float(kp), float(ki), float(kd)
        self.max_step = int(max_step)
        self.integral_limit = float(integral_limit)
        self._integral = 0.0
        self._prev_error: Optional[float] = None

    def desired_chips(self, obs: ControlObservation, current: int) -> int:
        delay_fraction = obs.est_queue_delay_s / obs.slo_s if obs.slo_s > 0 else 0.0
        error = delay_fraction - self.setpoint_fraction
        self._integral = max(-self.integral_limit,
                             min(self.integral_limit, self._integral + error))
        derivative = 0.0 if self._prev_error is None else error - self._prev_error
        self._prev_error = error
        output = self.kp * error + self.ki * self._integral + self.kd * derivative
        delta = int(round(max(-self.max_step, min(self.max_step, output))))
        return current + delta


class EWMAPolicy(AutoscalePolicy):
    """Predictive sizing from an EWMA of the offered arrival rate.

    Desired chips = predicted rate x chip-seconds per request /
    ``target_utilization`` (+ ``headroom_chips``).  Unlike the reactive
    policies it scales *before* the backlog builds, at the price of trusting
    the cost estimate.
    """

    name = "ewma"

    def __init__(self, alpha: float = 0.5, target_utilization: float = 0.7,
                 headroom_chips: int = 0):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if target_utilization <= 0:
            raise ValueError("target_utilization must be positive")
        if headroom_chips < 0:
            raise ValueError("headroom_chips must be >= 0")
        self.alpha = float(alpha)
        self.target_utilization = float(target_utilization)
        self.headroom_chips = int(headroom_chips)
        self._rate: Optional[float] = None

    def desired_chips(self, obs: ControlObservation, current: int) -> int:
        rate = obs.arrival_rate_rps
        self._rate = rate if self._rate is None \
            else self.alpha * rate + (1 - self.alpha) * self._rate
        demand_chips = self._rate * obs.cost_per_request_s / self.target_utilization
        return max(1, math.ceil(demand_chips)) + self.headroom_chips


_POLICY_CLASSES = {
    "threshold": ThresholdPolicy,
    "pid": PIDPolicy,
    "ewma": EWMAPolicy,
}


def build_autoscale_policy(name: str,
                           params: Optional[Mapping[str, float]] = None
                           ) -> AutoscalePolicy:
    """Construct the autoscaling policy ``name`` with ``params`` overrides."""
    if name not in _POLICY_CLASSES:
        raise ValueError(f"unknown autoscale policy {name!r}; "
                         f"choose from {AUTOSCALE_POLICIES}")
    try:
        return _POLICY_CLASSES[name](**dict(params or {}))
    except TypeError as exc:
        raise ValueError(f"bad parameters for autoscale policy {name!r}: "
                         f"{exc}") from exc


# --------------------------------------------------------------------------- #
# Admission control primitives
# --------------------------------------------------------------------------- #
class TokenBucket:
    """Classic token-bucket rate limiter on the simulated clock.

    Refills continuously at ``rate_rps`` up to ``burst`` tokens; each admitted
    request spends one token.  The first call anchors the clock, so buckets
    start full no matter when the tenant's traffic begins.
    """

    def __init__(self, rate_rps: float, burst: float = 32.0):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_rps = float(rate_rps)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_s: Optional[float] = None

    def try_acquire(self, now_s: float) -> bool:
        """Spend one token if available; refill according to elapsed time."""
        if self._last_s is None:
            self._last_s = now_s
        elif now_s > self._last_s:
            self._tokens = min(self.burst, self._tokens
                               + (now_s - self._last_s) * self.rate_rps)
            self._last_s = now_s
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class DegradeLevel:
    """One rung of the degradation ladder: a cheaper sampling shape.

    ``cost_scale`` is the estimated service-cost ratio against full fidelity,
    derived from the expected neighbourhood sizes.
    """

    level: int
    num_hops: int
    fanout: int
    cost_scale: float


def _neighborhood_size(num_hops: int, fanout: int) -> float:
    """Expected vertex count of a fanout-capped ``num_hops`` neighbourhood."""
    return float(sum(fanout ** k for k in range(num_hops + 1)))


def default_degradation_ladder(num_hops: int, fanout: int,
                               max_levels: int = 2) -> List[DegradeLevel]:
    """Successively cheaper (hops, fanout) rungs below the configured shape.

    Each rung halves the fanout; once the fanout reaches 1 the ladder drops a
    hop instead.  The ladder stops early when no cheaper shape exists (e.g.
    ``num_hops=0``), so a degraded request always still answers *something*
    about its target's neighbourhood.
    """
    ladder: List[DegradeLevel] = []
    base = _neighborhood_size(num_hops, fanout)
    hops, fan = num_hops, fanout
    for level in range(1, max_levels + 1):
        if fan > 1:
            fan = max(1, fan // 2)
        elif hops > 1:
            hops -= 1
        else:
            break
        ladder.append(DegradeLevel(
            level=level, num_hops=hops, fanout=fan,
            cost_scale=_neighborhood_size(hops, fan) / base))
    return ladder


@dataclass
class TenantBinding:
    """The per-tenant facts the control plane needs: SLO budget, sampling
    shape (for the degradation ladder) and WFQ weight (for bucket sizing).

    ``capacity_per_chip_rps`` overrides the fleet-wide per-chip request
    capacity when auto-sizing this tenant's token bucket -- multi-tenant
    serving passes each tenant's own probe-measured capacity, since request
    cost varies per (model, dataset).
    """

    name: str
    slo_s: float
    num_hops: int
    fanout: int
    weight: float = 1.0
    capacity_per_chip_rps: Optional[float] = None


# --------------------------------------------------------------------------- #
# The control plane
# --------------------------------------------------------------------------- #
class ControlPlane:
    """Policy state + accounting for one elastic serving run.

    Life cycle: construct from a :class:`ControlConfig`, then the simulator
    calls :meth:`bind` once it knows its probe-calibrated time scales, then
    :meth:`admit` per cache-missing arrival and :meth:`tick` per control
    interval, and finally :meth:`finalize` with the chip roster to close the
    chip-seconds books.  The plane never touches the event heap or the chips;
    it only decides.
    """

    def __init__(self, config: ControlConfig):
        self.config = config
        self.policy: Optional[AutoscalePolicy] = None
        if config.autoscale is not None:
            self.policy = build_autoscale_policy(config.autoscale,
                                                 config.policy_params)
        self.control_interval_s: float = 0.0
        self.warmup_s: float = 0.0
        self.stats: Optional[ControlStats] = None
        self._bindings: Dict[str, TenantBinding] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._ladders: Dict[str, List[DegradeLevel]] = {}
        #: Observability hub (:class:`repro.serving.observe.Instrumentation`);
        #: set by the event loops per run, ``None`` means uninstrumented.
        self.instrumentation = None

    # ------------------------------------------------------------------ #
    def bind(self, bindings: Sequence[TenantBinding], initial_chips: int,
             probe_service_s: float, capacity_per_chip_rps: float) -> None:
        """Resolve adaptive time scales, buckets and ladders for this run."""
        cfg = self.config
        self.control_interval_s = cfg.control_interval_s \
            if cfg.control_interval_s is not None \
            else _CONTROL_INTERVAL_SERVICE_MULTIPLE * probe_service_s
        self.warmup_s = cfg.warmup_s if cfg.warmup_s is not None \
            else _WARMUP_SERVICE_MULTIPLE * probe_service_s
        total_weight = sum(b.weight for b in bindings)
        self._bindings = {b.name: b for b in bindings}
        # bucket auto-sizing targets the biggest fleet the run can hold:
        # the autoscaler's ceiling when armed, else the fixed fleet size
        ceiling_chips = cfg.max_chips if cfg.autoscale is not None \
            else initial_chips
        for binding in bindings:
            share = binding.weight / total_weight if total_weight > 0 else 1.0
            if cfg.admission:
                if cfg.admission_rate_rps is not None:
                    rate = cfg.admission_rate_rps * share
                else:
                    capacity = binding.capacity_per_chip_rps \
                        if binding.capacity_per_chip_rps is not None \
                        else capacity_per_chip_rps
                    rate = capacity * ceiling_chips * share \
                        * _ADMISSION_AUTO_HEADROOM
                self._buckets[binding.name] = TokenBucket(
                    max(rate, 1e-9), cfg.admission_burst)
            if cfg.degrade:
                self._ladders[binding.name] = default_degradation_ladder(
                    binding.num_hops, binding.fanout, cfg.max_degrade_level)
        self.stats = ControlStats(
            policy=self.policy.name if self.policy else "fixed",
            min_chips=cfg.min_chips,
            max_chips=cfg.max_chips,
            control_interval_s=self.control_interval_s,
            warmup_s=self.warmup_s,
            initial_chips=initial_chips,
            admission={b.name: AdmissionStats(tenant=b.name)
                       for b in bindings},
        )

    # ------------------------------------------------------------------ #
    # Admission / degradation
    # ------------------------------------------------------------------ #
    def admit(self, tenant: str, now_s: float, est_delay_s: float,
              est_service_s: float,
              overlap_ratio: float = 0.0) -> AdmissionDecision:
        """Gate one cache-missing arrival.

        ``est_delay_s`` is the data plane's current queueing-delay estimate,
        ``est_service_s`` its full-fidelity service-cost estimate for this
        request (both seconds).  Order of checks: token bucket (rate
        policing, never degradable -- a tenant over its contracted rate is
        shed outright), then the SLO-budget test, resolved by degradation
        when armed.

        ``overlap_ratio`` is the data plane's measured fused-subgraph dedup
        ratio (see :class:`~repro.serving.stats.BatchingStats`); the loops
        pass it only under the overlap-aware formation policies, 0.0
        otherwise.  It *damps* the ladder's expected savings: a rung that
        halves the fanout shrinks a request's standalone neighbourhood by
        ``cost_scale``, but the fraction of that neighbourhood already
        shared with co-batched requests (``overlap_ratio``) was never going
        to be paid for again anyway, so the effective scale is
        ``overlap + (1 - overlap) * cost_scale``.  Without the damping an
        overlap-aware fleet would systematically over-promise degradation
        savings and admit requests it then serves late.
        """
        decision = self._decide(tenant, now_s, est_delay_s, est_service_s,
                                overlap_ratio)
        if not decision.admitted or decision.level > 0:
            logger.debug("admit %s t=%.6f: %s", tenant or "<default>",
                         now_s, decision.reason)
            if self.instrumentation is not None:
                self.instrumentation.on_admission(now_s, tenant, decision)
        return decision

    def _decide(self, tenant: str, now_s: float, est_delay_s: float,
                est_service_s: float,
                overlap_ratio: float) -> AdmissionDecision:
        acct = self.stats.admission[tenant]
        acct.offered += 1
        cfg = self.config
        bucket = self._buckets.get(tenant)
        if bucket is not None and not bucket.try_acquire(now_s):
            acct.shed_rate_limited += 1
            return AdmissionDecision(admitted=False, reason="rate-limited")
        budget_s = self._bindings[tenant].slo_s * cfg.admission_slo_margin
        if est_delay_s + est_service_s <= budget_s:
            acct.admitted += 1
            return AdmissionDecision(admitted=True)
        overlap = min(max(overlap_ratio, 0.0), 1.0)

        def effective_scale(rung: DegradeLevel) -> float:
            return overlap + (1.0 - overlap) * rung.cost_scale

        # over budget: try the ladder, cheapest-acceptable-fidelity first
        for rung in self._ladders.get(tenant, ()):
            scale = effective_scale(rung)
            if est_delay_s + scale * est_service_s <= budget_s:
                acct.admitted += 1
                acct.degraded[rung.level] = acct.degraded.get(rung.level, 0) + 1
                return AdmissionDecision(
                    admitted=True, level=rung.level, num_hops=rung.num_hops,
                    fanout=rung.fanout, cost_scale=scale,
                    reason="degraded")
        if cfg.admission:
            acct.shed_overload += 1
            return AdmissionDecision(admitted=False, reason="overload")
        ladder = self._ladders.get(tenant)
        if ladder:
            # degrade-only mode never sheds: serve the cheapest fidelity
            rung = ladder[-1]
            acct.admitted += 1
            acct.degraded[rung.level] = acct.degraded.get(rung.level, 0) + 1
            return AdmissionDecision(
                admitted=True, level=rung.level, num_hops=rung.num_hops,
                fanout=rung.fanout, cost_scale=effective_scale(rung),
                reason="degraded")
        acct.admitted += 1
        return AdmissionDecision(admitted=True)

    # ------------------------------------------------------------------ #
    # Autoscaling
    # ------------------------------------------------------------------ #
    def tick(self, obs: ControlObservation) -> int:
        """Record one control-interval observation; return the clamped fleet
        target (active + warming) the policy wants."""
        cfg = self.config
        current = obs.active_chips + obs.warming_chips
        if self.policy is None:
            # no autoscaler armed: the fleet size is fixed, never clamp it
            desired = current
        else:
            desired = self.policy.desired_chips(obs, current)
            desired = max(cfg.min_chips, min(cfg.max_chips, desired))
        self.stats.samples.append(ControlSample(
            time_s=obs.now_s,
            active=obs.active_chips,
            warming=obs.warming_chips,
            draining=obs.draining_chips,
            desired_chips=desired,
            queue_depth=obs.queue_depth,
            arrival_rate_rps=obs.arrival_rate_rps,
            utilization=obs.utilization,
            est_queue_delay_s=obs.est_queue_delay_s,
            violations=obs.violations,
            shed=obs.shed,
        ))
        return desired

    def record_event(self, time_s: float, action: str, chip_id: int,
                     active: int, warming: int, draining: int) -> None:
        """Append one fleet-shape change to the timeline."""
        self.stats.timeline.append(ScaleEvent(
            time_s=time_s, action=action, chip_id=chip_id,
            active=active, warming=warming, draining=draining))
        logger.debug("scale %s chip=%d t=%.6f (active=%d warming=%d "
                     "draining=%d)", action, chip_id, time_s, active,
                     warming, draining)
        if self.instrumentation is not None:
            self.instrumentation.on_scale_event(time_s, action, chip_id,
                                                active, warming, draining)

    # ------------------------------------------------------------------ #
    def finalize(self, end_s: float, chips: Sequence[object]) -> ControlStats:
        """Close the chip-seconds books over the full roster (incl. retired).

        ``chips`` are the fleet's ``Chip`` objects (duck-typed: ``state``,
        ``added_s``, ``ready_s``, ``retired_s`` and ``stats``).
        """
        total = 0.0
        warmup_total = 0.0
        for chip in chips:
            retired = chip.retired_s if chip.retired_s is not None else end_s
            provisioned = max(0.0, retired - chip.added_s)
            chip.stats.provisioned_s = provisioned
            total += provisioned
            warmup_total += max(0.0, min(chip.ready_s, retired) - chip.added_s)
        self.stats.chip_seconds_s = total
        self.stats.warmup_chip_seconds_s = warmup_total
        self.stats.final_chips = sum(
            1 for c in chips if c.state in ("active", "warming"))
        return self.stats
