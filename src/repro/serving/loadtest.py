"""Open-loop load harness: sweep arrival rate to the SLO knee.

``repro loadtest`` (and :mod:`benchmarks.bench_loadtest`) answer the
capacity question the closed-form calibration in
:meth:`~repro.serving.fleet.ServingSimulator.calibrate_rate` only
approximates: *what is the maximum offered RPS at which this serving
configuration still attains its SLO?*  The harness drives the simulator
open-loop -- arrivals are a fixed-rate Poisson process that does not slow
down when the fleet falls behind, the standard methodology for capacity
measurement -- and bisects the rate axis to the **knee**: the highest
rate whose SLO attainment (fraction of completed requests inside the
SLO) still meets the target.

:func:`find_knee` is a pure bracket-and-bisect routine over any
``measure(rate) -> LoadPoint`` callable, so its convergence logic is
unit-testable on synthetic monotone curves with no simulator in the
loop.  :func:`run_loadtest` wires it to :func:`~repro.serving.fleet
.run_serving` across a chip-count sweep and renders the
``BENCH_loadtest.json`` trajectory (knee per chip count plus every
measured rate/attainment/latency point -- the p99-vs-rate curve).

SLO note: the adaptive SLO (``slo_s=None``) derives from a single-chip
probe batch, so it is *identical across chip counts* -- knees measured
on a 1/2/4-chip sweep are directly comparable, and more chips can only
move the knee up.  Pin ``slo_ms`` to measure against an explicit target
instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.datasets import load_dataset
from ..models.model_zoo import build_model
from .fleet import FleetConfig, ServingSimulator, clear_probe_cache, run_serving
from .stats import ServingReport

__all__ = [
    "KneeResult",
    "LoadPoint",
    "LoadTestConfig",
    "LoadTestReport",
    "find_knee",
    "run_loadtest",
]


@dataclass(frozen=True)
class LoadPoint:
    """One measured point on the rate axis."""

    rate_rps: float
    attainment: float          # fraction of completed requests inside SLO
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    throughput_rps: float = 0.0
    completed: int = 0
    offered: int = 0

    def meets(self, slo_target: float) -> bool:
        return self.attainment >= slo_target

    def to_dict(self) -> Dict[str, object]:
        return {
            "rate_rps": self.rate_rps,
            "attainment": self.attainment,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "throughput_rps": self.throughput_rps,
            "completed": self.completed,
            "offered": self.offered,
        }

    @classmethod
    def from_report(cls, rate_rps: float,
                    report: ServingReport) -> "LoadPoint":
        return cls(
            rate_rps=float(rate_rps),
            attainment=report.slo_attainment,
            p50_s=report.p50_latency_s,
            p95_s=report.p95_latency_s,
            p99_s=report.p99_latency_s,
            throughput_rps=report.throughput_rps,
            completed=report.completed,
            offered=len(report.records),
        )


@dataclass(frozen=True)
class KneeResult:
    """Outcome of one :func:`find_knee` search.

    ``knee_rps`` is the highest measured rate meeting the target (0.0
    when even the starting rate fails).  ``bracketed`` is False when the
    doubling phase exhausted ``max_doublings`` without finding a failing
    rate -- the configuration absorbed everything thrown at it, and the
    knee is a lower bound, not a crossing.
    """

    knee_rps: float
    bracketed: bool
    iterations: int
    points: Tuple[LoadPoint, ...] = ()

    @property
    def knee_point(self) -> Optional[LoadPoint]:
        for point in self.points:
            if point.rate_rps == self.knee_rps:
                return point
        return None


def find_knee(measure: Callable[[float], LoadPoint], slo_target: float,
              lo_rps: float, *, hi_rps: Optional[float] = None,
              max_doublings: int = 6, rel_tol: float = 0.1,
              max_bisections: int = 16) -> KneeResult:
    """Bracket and bisect ``measure`` to the SLO knee.

    Phase 1 (bracket): starting from ``lo_rps`` (or the given
    ``hi_rps``), double the rate until a measurement misses
    ``slo_target``.  Phase 2 (bisect): shrink the [pass, fail] bracket
    until its width is within ``rel_tol`` of the passing edge.  The knee
    is the highest rate actually *measured* as passing -- never an
    unmeasured interpolation.  Assumes attainment is (noisily) monotone
    non-increasing in rate, which open-loop serving satisfies.
    """
    if lo_rps <= 0:
        raise ValueError("lo_rps must be positive")
    if not 0 < slo_target <= 1:
        raise ValueError("slo_target must be in (0, 1]")
    points: List[LoadPoint] = []

    def probe(rate: float) -> LoadPoint:
        point = measure(rate)
        points.append(point)
        return point

    low = probe(lo_rps)
    if not low.meets(slo_target):
        # even the floor fails: no sustainable rate in this bracket
        return KneeResult(knee_rps=0.0, bracketed=True,
                          iterations=len(points), points=tuple(points))
    good, bad = lo_rps, None
    if hi_rps is not None and hi_rps > lo_rps:
        point = probe(hi_rps)
        if point.meets(slo_target):
            good = hi_rps
        else:
            bad = hi_rps
    while bad is None:
        if len(points) - 1 >= max_doublings + (1 if hi_rps else 0):
            # saturated: never found a failing rate
            return KneeResult(knee_rps=good, bracketed=False,
                              iterations=len(points), points=tuple(points))
        rate = good * 2.0
        point = probe(rate)
        if point.meets(slo_target):
            good = rate
        else:
            bad = rate
    bisections = 0
    while (bad - good) > rel_tol * good and bisections < max_bisections:
        mid = 0.5 * (good + bad)
        point = probe(mid)
        if point.meets(slo_target):
            good = mid
        else:
            bad = mid
        bisections += 1
    return KneeResult(knee_rps=good, bracketed=True,
                      iterations=len(points), points=tuple(points))


# --------------------------------------------------------------------------- #
# Simulator-backed sweep
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LoadTestConfig:
    """One ``repro loadtest`` sweep: a serve configuration x chip counts.

    ``slo_target`` is the required SLO attainment at the knee (0.99 =
    "99% of completed requests inside the SLO").  ``start_utilization``
    seeds the bracket: the first probed rate is the calibrated rate at
    that utilisation, which passes comfortably on any sane
    configuration.  The fleet template defaults to ``cache_size=0`` so
    the knee measures chip capacity, not result-cache hit luck; pass an
    explicit ``fleet`` to override.
    """

    dataset: str = "IB"
    model_name: str = "GCN"
    #: Requests *per chip*: each sweep serves ``num_requests * num_chips``
    #: so every chip count faces the same per-chip pressure and a finite
    #: run can actually out-queue the SLO (with a fixed total, wider
    #: fleets could absorb the whole stream at any rate and the knee
    #: would be unbounded).  768/chip gives the worst-case backlog
    #: comfortable headroom past the adaptive SLO on every dataset.
    num_requests: int = 768
    chip_counts: Tuple[int, ...] = (1, 2, 4)
    slo_target: float = 0.99
    popularity_skew: float = 0.8
    seed: int = 0
    rel_tol: float = 0.1
    max_doublings: int = 6
    max_bisections: int = 16
    start_utilization: float = 0.4
    fleet: FleetConfig = field(
        default_factory=lambda: FleetConfig(cache_size=0))

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if not self.chip_counts or \
                any(c <= 0 for c in self.chip_counts):
            raise ValueError("chip_counts must be positive")
        if not 0 < self.slo_target <= 1:
            raise ValueError("slo_target must be in (0, 1]")
        if not 0 < self.start_utilization:
            raise ValueError("start_utilization must be positive")


@dataclass
class LoadTestReport:
    """The ``BENCH_loadtest.json`` payload: knee trajectory per chip count."""

    config: LoadTestConfig
    sweeps: List[Dict[str, object]] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def knees(self) -> Dict[int, float]:
        return {int(s["num_chips"]): float(s["knee_rps"])
                for s in self.sweeps}

    def to_dict(self) -> Dict[str, object]:
        cfg = self.config
        return {
            "kind": "loadtest",
            "dataset": cfg.dataset,
            "model": cfg.model_name,
            "num_requests": cfg.num_requests,
            "slo_target": cfg.slo_target,
            "popularity_skew": cfg.popularity_skew,
            "seed": cfg.seed,
            "rel_tol": cfg.rel_tol,
            "batch_policy": cfg.fleet.batch_policy,
            "max_batch_size": cfg.fleet.max_batch_size,
            "slo_s": cfg.fleet.slo_s,
            "wall_time_s": self.wall_time_s,
            "sweeps": self.sweeps,
        }

    def summary_rows(self) -> List[Dict[str, object]]:
        """One table row per chip count (for ``repro.analysis.print_table``)."""
        rows = []
        for sweep in self.sweeps:
            knee = sweep.get("knee_point") or {}
            rows.append({
                "chips": sweep["num_chips"],
                "knee_rps": round(float(sweep["knee_rps"]), 1),
                "bracketed": sweep["bracketed"],
                "runs": sweep["iterations"],
                "attainment_pct": round(
                    100 * float(knee.get("attainment", 0.0)), 2),
                "p99_ms_at_knee": round(
                    1e3 * float(knee.get("p99_s", 0.0)), 3),
                "slo_ms": round(1e3 * float(sweep["slo_s"]), 3),
            })
        return rows


def run_loadtest(config: Optional[LoadTestConfig] = None,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> LoadTestReport:
    """Run the knee search for every chip count in ``config.chip_counts``.

    Every measurement is an independent deterministic
    :func:`~repro.serving.fleet.run_serving` run (Poisson arrivals,
    shared seed) at a fixed offered rate; the probe cache is cleared
    before each so wall-clock comparisons stay honest.  ``progress`` (if
    given) receives one line per measurement.
    """
    config = config or LoadTestConfig()
    report = LoadTestReport(config=config)
    started = time.perf_counter()
    for num_chips in config.chip_counts:
        fleet = replace(config.fleet, num_chips=num_chips)
        sweep_requests = config.num_requests * num_chips
        slo_s: List[float] = []

        def measure(rate: float, fleet: FleetConfig = fleet,
                    sweep_requests: int = sweep_requests) -> LoadPoint:
            clear_probe_cache()
            served = run_serving(
                dataset=config.dataset, model_name=config.model_name,
                num_requests=sweep_requests, rate_rps=rate,
                arrival="poisson", popularity_skew=config.popularity_skew,
                config=fleet, seed=config.seed)
            slo_s.append(served.slo_s)
            point = LoadPoint.from_report(rate, served)
            if progress is not None:
                progress(f"  {config.dataset}/{config.model_name} "
                         f"x{num_chips}: {rate:.1f} rps -> "
                         f"attainment {100 * point.attainment:.2f}%, "
                         f"p99 {1e3 * point.p99_s:.3f} ms")
            return point

        # Seed the bracket from the closed-form capacity estimate at a
        # conservative utilisation -- one probe run, reused via the cache.
        clear_probe_cache()
        graph = load_dataset(config.dataset, seed=config.seed)
        model = build_model(config.model_name,
                            input_length=graph.feature_length)
        simulator = ServingSimulator(graph, model, fleet,
                                     dataset_name=config.dataset)
        lo_rps = simulator.calibrate_rate(config.start_utilization)
        result = find_knee(measure, config.slo_target, lo_rps,
                           rel_tol=config.rel_tol,
                           max_doublings=config.max_doublings,
                           max_bisections=config.max_bisections)
        knee_point = result.knee_point
        report.sweeps.append({
            "num_chips": int(num_chips),
            "num_requests": sweep_requests,
            "knee_rps": result.knee_rps,
            "bracketed": result.bracketed,
            "iterations": result.iterations,
            "slo_s": slo_s[0] if slo_s else 0.0,
            "knee_point": knee_point.to_dict() if knee_point else None,
            "points": [p.to_dict() for p in result.points],
        })
    report.wall_time_s = time.perf_counter() - started
    return report


def _monotone_knees(sweeps: Sequence[Dict[str, object]]) -> bool:
    """True when knee RPS never decreases with chip count (the sweep's
    acceptance criterion -- more chips can only add capacity)."""
    ordered = sorted(sweeps, key=lambda s: int(s["num_chips"]))
    knees = [float(s["knee_rps"]) for s in ordered]
    return all(b >= a for a, b in zip(knees, knees[1:]))
