"""Observability for serving runs: span traces, metrics, trace analysis.

The serving subsystem's end-of-run report (:mod:`repro.serving.stats`)
answers *what happened on average*; this module answers *where one request
spent its time* and *how fleet state evolved mid-run*.  Three pieces:

* :class:`Instrumentation` -- the hub both event loops
  (:mod:`repro.serving.fleet`, :mod:`repro.serving.tenancy`) thread their
  lifecycle hooks through.  It is **opt-in**: the loops hold ``observe =
  None`` by default and guard every hook with an ``is not None`` check, so
  an uninstrumented run executes no observability code at all.  All
  timestamps are **seconds of simulated time** (the discrete-event clock),
  never wall time -- instrumenting a run does not perturb it, and the
  acceptance tests pin that a traced run's report is bit-for-bit identical
  to an untraced run's.

* Span tracing.  Hooks record batch formation, late joins, admission
  control, scaling and batch completion; at completion the hub emits
  Chrome trace-event JSON `complete events`_ ("ph": "X") onto three
  process tracks -- ``control`` (pid 0: instants and fleet-size counters),
  ``fleet`` (pid 1: one thread per chip, batch service spans carrying the
  cycle-model phase breakdown stamped on :attr:`Batch.phase_cycles`), and
  ``requests`` (pid 2: one thread per request, with its
  batching / queue / service phase spans).  The per-request spans are cut
  from the same four timestamps the :class:`RequestRecord` is built from,
  so their durations sum to the recorded end-to-end latency exactly.
  :meth:`Instrumentation.write_trace` writes a file Perfetto and
  ``chrome://tracing`` open directly.

* Metrics.  A :class:`MetricsRegistry` of Counter / Gauge / Histogram
  (fixed buckets) instruments.  Counters are bumped by the hooks
  (admission drops, scale events, late joins, ...); gauges are sampled by
  the event loops at a configurable simulated-time interval
  (``--metrics-interval-ms``) via :meth:`Instrumentation.scrape`, which
  appends one row to a JSONL time series.
  :meth:`Instrumentation.write_metrics` writes the JSONL plus a
  Prometheus-style text exposition next to it.

:func:`load_trace` / :func:`validate_trace` / :func:`trace_report` /
:func:`format_trace_report` are the analysis half: they read a trace file
back and compute the critical-path breakdown behind the
``repro trace-report`` subcommand.

.. _complete events:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import bisect
import json
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .stats import percentile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "format_trace_report",
    "load_trace",
    "trace_report",
    "validate_trace",
]

logger = logging.getLogger("repro.serving.observe")

#: Trace process ids: one per track family (see module docstring).
PID_CONTROL, PID_FLEET, PID_REQUESTS = 0, 1, 2

#: Seconds -> trace-event microseconds (the unit Chrome/Perfetto expect).
_US = 1e6

#: Default latency-histogram bucket bounds in seconds: geometric 1us..10s,
#: wide enough for every dataset the simulator ships (probe-batch service
#: times span microseconds to milliseconds).
DEFAULT_BUCKETS_S = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 1.0, 10.0,
)

#: Default metrics-scrape interval as a multiple of the probe-batch
#: service time -- the fleet's natural time scale (cf. the adaptive
#: timeout / SLO multiples in :mod:`repro.serving.fleet`).
METRICS_PROBE_MULTIPLE = 2.0

#: Event phases the validator accepts (the subset the hub emits).
_KNOWN_PHASES = {"X", "i", "I", "C", "M"}

#: The per-request phase names, in lifecycle order (used to order report
#: rows and span trees deterministically).
_PHASE_ORDER = ("cache", "batching", "queue", "service")


# --------------------------------------------------------------------------- #
# Metrics instruments
# --------------------------------------------------------------------------- #
@dataclass
class Counter:
    """Monotonically increasing count (requests completed, sheds, ...)."""

    name: str
    help: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()
    value: float = 0.0

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self):
        return self.value


@dataclass
class Gauge:
    """Point-in-time level (queue depth, busy fraction, ...)."""

    name: str
    help: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()
    value: float = 0.0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self):
        return self.value


@dataclass
class Histogram:
    """Fixed-bucket histogram (request latency, batch service time).

    ``buckets`` are the upper bounds in ascending order; observations
    land in the first bucket whose bound is ``>= value``, with an implicit
    ``+Inf`` overflow bucket, Prometheus-style.  ``counts`` is per-bucket
    (not cumulative); the exposition renders the cumulative form.
    """

    name: str
    help: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS_S
    counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    kind = "histogram"

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self):
        return {"count": self.count, "sum": self.sum}


class MetricsRegistry:
    """Named Counter / Gauge / Histogram instruments, get-or-create.

    Instruments are keyed on ``(name, labels)``; re-requesting the same key
    returns the same object, so hooks can stay stateless.  ``labels`` is a
    plain dict (e.g. ``{"shape": "agg_heavy"}``) canonicalised to a sorted
    tuple internally.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple], object] = {}

    @staticmethod
    def _key(name: str, labels: Optional[Dict[str, str]]):
        return name, tuple(sorted((labels or {}).items()))

    def _get(self, cls, name, help, labels, **kwargs):
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, help=help, labels=key[1], **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  buckets: Sequence[float] = DEFAULT_BUCKETS_S) -> Histogram:
        return self._get(Histogram, name, help, labels,
                         buckets=tuple(buckets))

    # ------------------------------------------------------------------ #
    def collect(self) -> List[object]:
        """Every instrument, in stable (name, labels) order."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def scrape_row(self, now_s: float) -> Dict[str, object]:
        """One JSONL time-series row: ``t_s`` plus every metric's value."""
        row: Dict[str, object] = {"t_s": now_s}
        metrics: Dict[str, object] = {}
        for metric in self.collect():
            label_str = "{%s}" % ",".join(
                f'{k}="{v}"' for k, v in metric.labels) \
                if metric.labels else ""
            metrics[metric.name + label_str] = metric.snapshot()
        row["metrics"] = metrics
        return row

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the current instrument values."""
        lines: List[str] = []
        seen_headers = set()
        for metric in self.collect():
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            label_str = ",".join(f'{k}="{v}"' for k, v in metric.labels)
            if metric.kind == "histogram":
                cumulative = 0
                for bound, bucket_count in zip(metric.buckets, metric.counts):
                    cumulative += bucket_count
                    le = ('%s,le="%g"' % (label_str, bound)).lstrip(",")
                    lines.append(f"{metric.name}_bucket{{{le}}} {cumulative}")
                le = ('%s,le="+Inf"' % label_str).lstrip(",")
                lines.append(f"{metric.name}_bucket{{{le}}} {metric.count}")
                suffix = f"{{{label_str}}}" if label_str else ""
                lines.append(f"{metric.name}_sum{suffix} {metric.sum}")
                lines.append(f"{metric.name}_count{suffix} {metric.count}")
            else:
                suffix = f"{{{label_str}}}" if label_str else ""
                lines.append(f"{metric.name}{suffix} {metric.value}")
        return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------- #
# The instrumentation hub
# --------------------------------------------------------------------------- #
class Instrumentation:
    """Collects spans and metrics from the serving event loops.

    Construct one and pass it as the ``observe`` argument of
    :class:`~repro.serving.fleet.ServingSimulator` /
    :func:`~repro.serving.fleet.run_serving` (or their multi-tenant
    counterparts).  ``trace`` / ``metrics`` switch the two halves
    independently -- the CLI arms whichever of ``--trace-out`` /
    ``--metrics-out`` was given.  ``metrics_interval_s`` pins the gauge
    scrape interval in simulated seconds; ``None`` lets the event loop
    derive it from the probe-batch service time
    (:data:`METRICS_PROBE_MULTIPLE`).

    Every hook takes the event-loop clock ``now`` first.  Hooks never
    mutate simulator state and never consume randomness, which is what
    keeps a traced run bit-for-bit identical to an untraced one.
    """

    def __init__(self, trace: bool = True, metrics: bool = True,
                 metrics_interval_s: Optional[float] = None):
        if metrics_interval_s is not None and metrics_interval_s <= 0:
            raise ValueError("metrics_interval_s must be positive")
        self.trace_enabled = bool(trace)
        self.metrics_enabled = bool(metrics)
        self.metrics_interval_s = metrics_interval_s
        self.events: List[Dict] = []
        self.registry = MetricsRegistry()
        self.samples: List[Dict] = []
        self._named_threads: set = set()
        if self.trace_enabled:
            for pid, name in ((PID_CONTROL, "control"),
                              (PID_FLEET, "fleet"),
                              (PID_REQUESTS, "requests")):
                self.events.append({"ph": "M", "name": "process_name",
                                    "pid": pid, "tid": 0,
                                    "args": {"name": name}})

    # -- low-level emitters -------------------------------------------- #
    def _span(self, name: str, cat: str, start_s: float, end_s: float,
              pid: int, tid: int, args: Optional[Dict] = None) -> None:
        self.events.append({
            "ph": "X", "name": name, "cat": cat,
            "ts": start_s * _US, "dur": max(0.0, end_s - start_s) * _US,
            "pid": pid, "tid": tid, "args": args or {},
        })

    def _instant(self, name: str, now: float,
                 args: Optional[Dict] = None) -> None:
        self.events.append({
            "ph": "i", "name": name, "cat": "control", "s": "g",
            "ts": now * _US, "pid": PID_CONTROL, "tid": 0,
            "args": args or {},
        })

    def _name_thread(self, pid: int, tid: int, name: str) -> None:
        if (pid, tid) in self._named_threads:
            return
        self._named_threads.add((pid, tid))
        self.events.append({"ph": "M", "name": "thread_name",
                            "pid": pid, "tid": tid, "args": {"name": name}})

    # -- lifecycle hooks (called by the event loops) ------------------- #
    def on_batch_formed(self, now: float, batch) -> None:
        """A batcher emitted a batch (``Batcher.flush`` and friends)."""
        self.registry.counter(
            "repro_batches_formed_total",
            "Batches emitted by the batch-formation policies").inc()
        if self.trace_enabled:
            self._instant("batch formed", now, {
                "batch_id": batch.batch_id, "size": batch.size,
                "tenant": batch.tenant})

    def on_late_join(self, now: float, batch, request) -> None:
        """Continuous batching admitted a late join into an open batch."""
        self.registry.counter(
            "repro_late_joins_total",
            "Requests late-joined into formed-but-unstarted batches").inc()
        if self.trace_enabled:
            self._instant("late join", now, {
                "batch_id": batch.batch_id,
                "request_id": request.request_id,
                "batch_age_s": now - batch.created_time_s})

    def on_admission(self, now: float, tenant: str, decision) -> None:
        """The control plane gated an arrival (shed or degraded only)."""
        if not decision.admitted:
            self.registry.counter(
                "repro_admission_shed_total",
                "Arrivals rejected by the admission gate",
                labels={"tenant": tenant} if tenant else None).inc()
            if self.trace_enabled:
                self._instant("shed", now, {"tenant": tenant,
                                            "reason": decision.reason})
        elif decision.level > 0:
            self.registry.counter(
                "repro_admission_degraded_total",
                "Arrivals admitted at reduced sampling fidelity",
                labels={"tenant": tenant} if tenant else None).inc()
            if self.trace_enabled:
                self._instant("degrade", now, {"tenant": tenant,
                                               "level": decision.level})

    def on_scale_event(self, now: float, action: str, chip_id: int,
                       active: int, warming: int, draining: int) -> None:
        """The fleet scaler recorded a lifecycle action (add/ready/...)."""
        self.registry.counter(
            "repro_scale_events_total",
            "Chip lifecycle actions recorded by the control plane",
            labels={"action": action}).inc()
        if self.trace_enabled:
            self._instant(f"scale: {action}", now, {
                "chip_id": chip_id, "active": active,
                "warming": warming, "draining": draining})
            self.events.append({
                "ph": "C", "name": "fleet size", "ts": now * _US,
                "pid": PID_CONTROL, "tid": 0,
                "args": {"active": active, "warming": warming,
                         "draining": draining}})

    def on_cache_hit(self, now: float, request, done_s: float,
                     tenant: str = "") -> None:
        """An arrival was answered straight from the result cache."""
        tenant_labels = {"tenant": tenant} if tenant else None
        self.registry.counter(
            "repro_cache_hits_total",
            "Requests answered by the result cache",
            labels=tenant_labels).inc()
        self.registry.histogram(
            "repro_request_latency_seconds",
            "End-to-end request latency",
            labels=tenant_labels).observe(done_s - request.arrival_time_s)
        if self.trace_enabled:
            self._span("cache", "request", request.arrival_time_s, done_s,
                       PID_REQUESTS, request.request_id,
                       {"tenant": tenant} if tenant else None)

    def on_batch_complete(self, now: float, chip, batch,
                          dispatched_s: float, started_s: float,
                          tenant: str = "") -> None:
        """A chip finished serving ``batch``; emit its span tree.

        Called from the loops' completion handlers with the same
        ``dispatched`` / ``started`` timestamps the
        :class:`~repro.serving.stats.RequestRecord` is built from, so the
        per-request phase spans (batching -> queue -> service) sum to the
        recorded latency exactly.
        """
        registry = self.registry
        tenant_labels = {"tenant": tenant} if tenant else None
        registry.counter("repro_requests_completed_total",
                         "Requests served to completion",
                         labels=tenant_labels).inc(batch.size)
        registry.counter("repro_batches_completed_total",
                         "Batches that finished service on a chip").inc()
        registry.histogram("repro_batch_service_seconds",
                           "Per-batch fused service time").observe(
                               now - started_s)
        latency_hist = registry.histogram(
            "repro_request_latency_seconds", "End-to-end request latency",
            labels=tenant_labels)
        for request in batch.requests:
            latency_hist.observe(now - request.arrival_time_s)
        if not self.trace_enabled:
            return
        chip_id = getattr(chip, "chip_id", chip)
        shape = getattr(chip, "shape", "")
        self._name_thread(PID_FLEET, chip_id,
                          f"chip {chip_id}" + (f" ({shape})" if shape else ""))
        args = {
            "batch_id": batch.batch_id, "size": batch.size,
            "tenant": tenant or batch.tenant,
            "late_joins": batch.late_joins,
            "overlap_ratio": batch.overlap_ratio,
            "fused_vertices": batch.fused_vertices,
            "naive_vertices": batch.naive_vertices,
        }
        if batch.phase_cycles:
            args.update({f"{k}_cycles": v
                         for k, v in batch.phase_cycles.items()})
        self._span(f"batch {batch.batch_id} [n={batch.size}]", "batch",
                   started_s, now, PID_FLEET, chip_id, args)
        for request in batch.requests:
            # identical clamping to the RequestRecord: a late joiner's
            # batching wait ends at its own arrival
            dispatch_s = max(dispatched_s, request.arrival_time_s)
            common = {"batch_id": batch.batch_id, "chip_id": chip_id}
            if tenant or batch.tenant:
                common["tenant"] = tenant or batch.tenant
            tid = request.request_id
            self._span("batching", "request", request.arrival_time_s,
                       dispatch_s, PID_REQUESTS, tid, dict(common))
            self._span("queue", "request", dispatch_s, started_s,
                       PID_REQUESTS, tid, dict(common))
            self._span("service", "request", started_s, now,
                       PID_REQUESTS, tid, dict(common))

    def on_shard_batch_complete(self, now: float, batch,
                                started_s: float) -> None:
        """A sharded batch finished; emit per-shard sub-batch spans.

        Called right after :meth:`on_batch_complete` for batches served by
        a chip group.  Purely a reader of ``batch.shard_timings`` — it
        must never mutate simulation state, so a traced sharded run stays
        bit-for-bit identical to an untraced one.
        """
        timings = getattr(batch, "shard_timings", None)
        if not timings:
            return
        registry = self.registry
        registry.counter("repro_shard_sub_batches_total",
                         "Per-shard sub-batches executed").inc(len(timings))
        registry.counter(
            "repro_halo_misses_total",
            "Ghost-feature lookups that missed the halo cache").inc(
                sum(t.halo_misses for t in timings))
        registry.counter(
            "repro_halo_hits_total",
            "Ghost-feature lookups served from a halo cache").inc(
                sum(t.halo_hits for t in timings))
        if not self.trace_enabled:
            return
        for t in timings:
            self._name_thread(PID_FLEET, t.chip_id, f"chip {t.chip_id}")
            args = {
                "batch_id": batch.batch_id, "shard": t.shard,
                "requests": t.requests,
                "fused_vertices": t.fused_vertices,
                "ghost_vertices": t.ghost_vertices,
                "halo_hits": t.halo_hits, "halo_misses": t.halo_misses,
            }
            boundary_s = started_s + t.exchange_s
            if t.exchange_s > 0.0:
                self._span(f"halo exchange s{t.shard}", "shard",
                           started_s, boundary_s, PID_FLEET, t.chip_id,
                           dict(args))
            self._span(f"sub-batch s{t.shard}", "shard", boundary_s,
                       boundary_s + t.compute_s, PID_FLEET, t.chip_id,
                       dict(args))

    def on_update(self, now: float, event, invalidated: int) -> None:
        """A streaming graph update was applied by the event loop.

        ``invalidated`` is the number of cache entries the update dropped
        across every cache layer.  Purely an observer — it must never
        mutate simulation state, so a traced mutating run stays
        bit-for-bit identical to an untraced one.
        """
        tenant = getattr(event, "tenant", "")
        tenant_labels = {"tenant": tenant} if tenant else None
        self.registry.counter(
            "repro_graph_updates_total",
            "Streaming graph updates applied",
            labels=tenant_labels).inc()
        self.registry.counter(
            "repro_cache_invalidations_total",
            "Cache entries dropped by streaming updates",
            labels=tenant_labels).inc(invalidated)
        if self.trace_enabled:
            self._instant(f"update {event.kind}", now, {
                "update_id": event.update_id, "kind": event.kind,
                "src": event.src, "dst": event.dst,
                "invalidated": invalidated,
            })

    # -- metrics scraping ---------------------------------------------- #
    @property
    def wants_metrics(self) -> bool:
        """Should the event loop schedule scrape events for this hub?"""
        return self.metrics_enabled

    def scrape(self, now: float, gauges: Dict[str, float]) -> None:
        """Record one time-series sample from the loop's gauge snapshot.

        ``gauges`` maps metric names (optionally ``name{label="v"}``-free;
        per-shape gauges pass a ``(name, labels)`` tuple key) to values;
        the row captures those plus every counter/histogram's running
        state.
        """
        for key, value in gauges.items():
            if isinstance(key, tuple):
                name, labels = key
                self.registry.gauge(name, labels=dict(labels)).set(value)
            else:
                self.registry.gauge(key).set(value)
        self.samples.append(self.registry.scrape_row(now))

    # -- export --------------------------------------------------------- #
    def trace_payload(self) -> Dict:
        """The Chrome trace-event JSON object for the collected spans."""
        return {"traceEvents": self.events, "displayTimeUnit": "ns"}

    def write_trace(self, path: str) -> None:
        """Write the collected spans as a Chrome trace-event JSON file."""
        with open(path, "w") as fh:
            json.dump(self.trace_payload(), fh)
        logger.info("wrote trace with %d events to %s",
                    len(self.events), path)

    def write_metrics(self, path: str) -> str:
        """Write the JSONL time series to ``path`` plus a Prometheus text
        exposition sibling (same stem, ``.prom``); returns the sibling
        path."""
        with open(path, "w") as fh:
            for row in self.samples:
                fh.write(json.dumps(row) + "\n")
        prom_path = os.path.splitext(path)[0] + ".prom"
        with open(prom_path, "w") as fh:
            fh.write(self.registry.to_prometheus())
        logger.info("wrote %d metric samples to %s (exposition: %s)",
                    len(self.samples), path, prom_path)
        return prom_path


# --------------------------------------------------------------------------- #
# Trace analysis (the `repro trace-report` subcommand)
# --------------------------------------------------------------------------- #
def load_trace(path: str) -> List[Dict]:
    """Read a Chrome trace-event file; accepts both JSON container forms
    (the ``{"traceEvents": [...]}`` object this module writes, or a bare
    event array)."""
    with open(path, "rb") as check:
        if check.read(2) == b"\x1f\x8b":
            raise ValueError(
                f"{path}: gzip-framed binary file -- this looks like a "
                f"request trace (serve --trace-capture); use `repro "
                f"trace-stats` or `serve --replay`, span traces come from "
                f"`serve --trace-out`")
    with open(path) as fh:
        payload = json.load(fh)
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError(f"{path}: no traceEvents array")
        return events
    if isinstance(payload, list):
        return payload
    raise ValueError(f"{path}: not a Chrome trace-event file")


def validate_trace(events: Sequence[Dict]) -> List[str]:
    """Schema-check ``events`` against the Chrome trace-event format.

    Returns a list of human-readable problems (empty when the trace is
    valid): every event needs a known ``ph``; complete events ("X") need
    ``name``/``ts``/``dur``/``pid``/``tid`` with numeric non-negative
    times; instants need ``name``/``ts``; counters need numeric ``args``.
    """
    problems = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph != "M" and not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {i} ({ph}): missing numeric ts")
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i} ({ph}): missing name")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} (X): missing or negative dur")
            for fld in ("pid", "tid"):
                if not isinstance(event.get(fld), int):
                    problems.append(f"event {i} (X): missing integer {fld}")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"event {i} (C): args must be numeric")
    return problems


def trace_report(events: Sequence[Dict], top_k: int = 5) -> Dict:
    """Critical-path breakdown of a serving trace.

    Groups the per-request phase spans (cat ``request``) by request id and
    returns per-phase p50/p99/total time plus the ``top_k`` slowest
    requests with their span trees: ``{"requests", "phases", "slowest"}``.
    Time values are seconds of simulated time (converted back from the
    trace's microseconds).
    """
    by_request: Dict[int, List[Dict]] = {}
    for event in events:
        if event.get("ph") == "X" and event.get("cat") == "request":
            by_request.setdefault(event["tid"], []).append(event)
    phase_durs: Dict[str, List[float]] = {}
    totals: List[Tuple[float, int]] = []
    for tid, spans in by_request.items():
        total = 0.0
        for span in spans:
            dur_s = span["dur"] / _US
            phase_durs.setdefault(span["name"], []).append(dur_s)
            total += dur_s
        totals.append((total, tid))
    phases = {}
    order = {name: i for i, name in enumerate(_PHASE_ORDER)}
    for name in sorted(phase_durs, key=lambda n: order.get(n, len(order))):
        durs = phase_durs[name]
        phases[name] = {
            "count": len(durs),
            "p50_s": percentile(durs, 50.0),
            "p99_s": percentile(durs, 99.0),
            "total_s": sum(durs),
        }
    totals.sort(key=lambda t: (-t[0], t[1]))
    slowest = []
    for total, tid in totals[:max(0, top_k)]:
        spans = sorted(by_request[tid],
                       key=lambda s: (s["ts"], order.get(s["name"], 99)))
        slowest.append({
            "request_id": tid,
            "latency_s": total,
            "spans": [{"name": s["name"], "start_s": s["ts"] / _US,
                       "dur_s": s["dur"] / _US, "args": s.get("args", {})}
                      for s in spans],
        })
    return {"requests": len(by_request), "phases": phases,
            "slowest": slowest}


def format_trace_report(report: Dict) -> str:
    """Render :func:`trace_report` output as the CLI's text summary."""
    lines = [f"trace report: {report['requests']} requests"]
    if report["phases"]:
        lines.append("")
        lines.append(f"{'phase':<10} {'count':>7} {'p50_us':>10} "
                     f"{'p99_us':>10} {'total_ms':>10}")
        for name, row in report["phases"].items():
            lines.append(f"{name:<10} {row['count']:>7} "
                         f"{row['p50_s'] * 1e6:>10.2f} "
                         f"{row['p99_s'] * 1e6:>10.2f} "
                         f"{row['total_s'] * 1e3:>10.3f}")
    if report["slowest"]:
        lines.append("")
        lines.append(f"top {len(report['slowest'])} slowest requests:")
        for entry in report["slowest"]:
            extra = ""
            for span in entry["spans"]:
                args = span["args"]
                if "batch_id" in args:
                    extra = (f" (batch {args['batch_id']}, "
                             f"chip {args.get('chip_id', '?')})")
                    break
            lines.append(f"  req {entry['request_id']}: "
                         f"{entry['latency_s'] * 1e6:.2f} us{extra}")
            for span in entry["spans"]:
                start, dur = span["start_s"] * 1e6, span["dur_s"] * 1e6
                lines.append(f"    {span['name']:<10} "
                             f"[{start:.2f} .. {start + dur:.2f}] "
                             f"{dur:.2f} us")
    return "\n".join(lines)
