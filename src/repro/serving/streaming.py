"""Streaming graph updates under live serving traffic.

The production graphs the paper's serving story targets (fraud, recsys,
knowledge graphs) mutate continuously while queries are in flight.  This
module supplies everything the event loops need to serve such a workload
*consistently*:

* :class:`UpdateEvent` -- one graph mutation with its own arrival time,
  fully self-describing (feature rows are a deterministic function of the
  recorded ``feature_seed``) so a captured trace replays bit-for-bit;
* :func:`generate_update_stream` -- a seeded Poisson update process with a
  configurable kind mix (see :func:`parse_update_mix`), memoised
  process-wide so policy-comparison sweeps replay the identical stream;
* :class:`UpdateStream` -- the duck-typed ``updates=`` opt-in object both
  event loops accept (``updates=None`` keeps existing runs untouched);
* :class:`StreamState` -- the per-run applier / invalidator / consistency
  tracker.  It owns the *invalidation matrix*: which of the five derived
  caches (result cache, per-chip feature caches, sampler sample/signature
  memos, halo caches, shard-plan ownership) each update kind must touch,
  per :data:`INVALIDATION_POLICIES` policy.  Under ``"none"`` nothing is
  invalidated and the tracker counts every stale serve instead -- the
  differential consistency suite's kill switch.

Consistency is checked differentially: extraction is deterministic per
``(seed, target, hops, fanout)``, so a memoised sample that differs from a
memo-bypassing recomputation (:meth:`SubgraphSampler.extract_fresh`) at
service time *is* a stale serve, not randomness.  See ``docs/streaming.md``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graphs.delta import DeltaGraph
from .stats import ConsistencyStats

__all__ = ["UPDATE_KINDS", "INVALIDATION_POLICIES", "UpdateEvent",
           "UpdateStream", "StreamState", "parse_update_mix",
           "feature_row", "generate_update_stream",
           "clear_update_stream_cache"]

#: The mutation kinds an update stream can carry: an in-edge insertion, a
#: feature-row overwrite, or a new vertex (attached by one in-edge so the
#: insertion perturbs an existing neighbourhood).
UPDATE_KINDS = ("edge", "feature", "vertex")

#: Cache-invalidation policies for mutating runs: ``targeted`` drops exactly
#: the derived-state entries an update made stale, ``flush`` clears every
#: cache on any update, ``none`` keeps stale entries (the consistency
#: tracker counts the violations -- the kill-test baseline).
INVALIDATION_POLICIES = ("targeted", "flush", "none")


@dataclass(frozen=True)
class UpdateEvent:
    """One graph mutation offered to a serving run at ``arrival_time_s``.

    Self-describing for replay: a ``feature``/``vertex`` event's feature
    row is :func:`feature_row` of the recorded ``feature_seed``, never
    stored inline, so the trace codec stays columnar and fixed-width.

    Field use per kind:

    * ``edge``:    insert in-edge ``src -> dst`` (``feature_seed`` unused);
    * ``feature``: overwrite vertex ``src``'s feature row (``dst`` unused);
    * ``vertex``:  append a new vertex with features from ``feature_seed``
      and insert the in-edge ``new -> dst`` (``src`` unused; the new id is
      whatever the graph assigns, deterministic under replay).
    """

    update_id: int
    kind: str
    arrival_time_s: float
    src: int = -1
    dst: int = -1
    feature_seed: int = 0
    tenant: str = ""

    def __post_init__(self):
        if self.kind not in UPDATE_KINDS:
            raise ValueError(f"unknown update kind {self.kind!r}; "
                             f"choose from {UPDATE_KINDS}")


def feature_row(feature_length: int, feature_seed: int) -> np.ndarray:
    """The deterministic feature row of one ``feature``/``vertex`` event."""
    rng = np.random.default_rng((0xFEA7, int(feature_seed)))
    return rng.random(int(feature_length), dtype=np.float64)


def parse_update_mix(spec: str) -> Dict[str, float]:
    """Parse ``"edge=0.8,feature=0.15,vertex=0.05"`` into a normalised mix.

    Kinds may be omitted (weight 0); weights must be non-negative with a
    positive sum.  The CLI's ``--update-mix`` parser.
    """
    weights = {kind: 0.0 for kind in UPDATE_KINDS}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"malformed update-mix entry {part!r} "
                             f"(expected kind=weight)")
        kind, _, raw = part.partition("=")
        kind = kind.strip()
        if kind not in UPDATE_KINDS:
            raise ValueError(f"unknown update kind {kind!r}; "
                             f"choose from {UPDATE_KINDS}")
        weight = float(raw)
        if weight < 0:
            raise ValueError(f"update-mix weight for {kind!r} must be >= 0")
        weights[kind] = weight
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("update mix must have a positive total weight")
    return {kind: weight / total for kind, weight in weights.items()}


#: Update-stream memo: policy sweeps (the benchmark, the acceptance tests)
#: re-request the identical stream for every invalidation policy; memoising
#: makes those replays free *and* guarantees they compare the same events.
#: ``clear_update_stream_cache`` is the test-isolation hook wired into
#: ``tests/conftest.py``.
_UPDATE_STREAM_CACHE: "OrderedDict[Tuple, Tuple[UpdateEvent, ...]]" = \
    OrderedDict()
_UPDATE_STREAM_CACHE_SIZE = 32


def clear_update_stream_cache() -> None:
    """Drop all memoised update streams (test isolation hook)."""
    _UPDATE_STREAM_CACHE.clear()


def generate_update_stream(num_vertices: int, num_updates: int,
                           rate_ups: float, mix: Optional[Dict[str, float]]
                           = None, seed: int = 0, start_s: float = 0.0,
                           tenant: str = "") -> Tuple[UpdateEvent, ...]:
    """A seeded Poisson stream of ``num_updates`` :class:`UpdateEvent`\\ s.

    Arrivals are exponential gaps at ``rate_ups`` updates per second from
    ``start_s``; kinds are drawn from ``mix`` (default: edge-heavy
    ``0.7/0.2/0.1``).  Vertex draws track the growing vertex count, so a
    later event can reference a vertex an earlier event inserted --
    exactly what replay reproduces, because the stream depends only on the
    arguments.  Results are memoised (see :func:`clear_update_stream_cache`).
    """
    if num_updates < 0:
        raise ValueError("num_updates must be >= 0")
    if num_updates and rate_ups <= 0:
        raise ValueError("rate_ups must be positive")
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    mix = dict(mix) if mix else {"edge": 0.7, "feature": 0.2, "vertex": 0.1}
    total = sum(mix.values())
    mix = {k: mix.get(k, 0.0) / total for k in UPDATE_KINDS}
    key = (num_vertices, num_updates, float(rate_ups),
           tuple(mix[k] for k in UPDATE_KINDS), int(seed), float(start_s),
           tenant)
    cached = _UPDATE_STREAM_CACHE.get(key)
    if cached is not None:
        _UPDATE_STREAM_CACHE.move_to_end(key)
        return cached
    rng = np.random.default_rng((seed, 0x57DA7E))
    times = start_s + np.cumsum(rng.exponential(1.0 / rate_ups,
                                                size=num_updates)) \
        if num_updates else np.empty(0)
    thresholds = np.cumsum([mix[k] for k in UPDATE_KINDS])
    events: List[UpdateEvent] = []
    current = num_vertices
    for i in range(num_updates):
        draw = rng.random()
        kind = UPDATE_KINDS[int(np.searchsorted(thresholds,
                                                min(draw, thresholds[-1])))]
        src = dst = -1
        feature_seed = 0
        if kind == "edge":
            src = int(rng.integers(0, current))
            dst = int(rng.integers(0, current))
        elif kind == "feature":
            src = int(rng.integers(0, current))
            feature_seed = int(rng.integers(0, 2 ** 31 - 1))
        else:  # vertex
            dst = int(rng.integers(0, current))
            feature_seed = int(rng.integers(0, 2 ** 31 - 1))
            current += 1
        events.append(UpdateEvent(update_id=i, kind=kind,
                                  arrival_time_s=float(times[i]),
                                  src=src, dst=dst,
                                  feature_seed=feature_seed, tenant=tenant))
    stream = tuple(events)
    _UPDATE_STREAM_CACHE[key] = stream
    if len(_UPDATE_STREAM_CACHE) > _UPDATE_STREAM_CACHE_SIZE:
        _UPDATE_STREAM_CACHE.popitem(last=False)
    return stream


@dataclass
class UpdateStream:
    """The ``updates=`` opt-in handed to a simulator (duck-typed hook).

    ``events`` interleave with query arrivals in the event loop;
    ``policy`` picks the invalidation strategy; ``check`` arms the
    differential consistency check at every service start (observation
    only -- it never changes simulated timings);
    ``staleness_budget_versions`` is the number of graph versions a served
    result may lag before it counts as *beyond budget* (0 = any staleness
    violates); ``compact_every`` bounds the delta log
    (:class:`~repro.graphs.delta.DeltaGraph` auto-compaction).
    """

    events: Sequence[UpdateEvent] = ()
    policy: str = "targeted"
    check: bool = True
    staleness_budget_versions: int = 0
    compact_every: int = 64

    def __post_init__(self):
        if self.policy not in INVALIDATION_POLICIES:
            raise ValueError(f"unknown invalidation policy {self.policy!r}; "
                             f"choose from {INVALIDATION_POLICIES}")
        if self.staleness_budget_versions < 0:
            raise ValueError("staleness_budget_versions must be >= 0")

    def for_tenant(self, tenant: str) -> "UpdateStream":
        """The slice of this stream addressed to ``tenant``."""
        return UpdateStream(
            events=[e for e in self.events if e.tenant == tenant],
            policy=self.policy, check=self.check,
            staleness_budget_versions=self.staleness_budget_versions,
            compact_every=self.compact_every)


@dataclass
class _ResultMeta:
    version: int
    time_s: float
    vertices: Tuple[int, ...]


class StreamState:
    """Per-run update applier, cache invalidator and consistency tracker.

    One instance per (graph, sampler, result cache) -- the single-tenant
    loop has one; the multi-tenant loop has one per tenant (each tenant
    serves its own graph), all folding into one shared
    :class:`~repro.serving.stats.ConsistencyStats`.

    ``chips`` is the live chip roster (the same list object the scaler
    mutates, so elastic fleets stay covered); ``feature_key`` maps a vertex
    id to the per-chip feature-cache key the service-time model uses.
    """

    def __init__(self, graph: DeltaGraph, sampler, stream: UpdateStream,
                 stats: ConsistencyStats, *, result_cache=None, chips=None,
                 feature_key=None, shard_executor=None, observe=None):
        self.graph = graph
        self.sampler = sampler
        self.stream = stream
        self.stats = stats
        self.result_cache = result_cache
        self.chips = chips if chips is not None else []
        self.feature_key = feature_key if feature_key is not None \
            else (lambda v: v)
        self.shard_executor = shard_executor
        self.observe = observe
        sampler.invalidation = stream.policy
        # vertex -> result-cache keys whose cached answer sampled it
        self._vertex_results: Dict[int, Set[int]] = {}
        self._result_meta: Dict[int, _ResultMeta] = {}
        # vertex -> version of its last structural/feature mutation (the
        # cheap staleness probe; equivalent to scanning graph._dirty_log)
        self._last_mutation: Dict[int, int] = {}
        self._last_mutation_s: Dict[int, float] = {}
        if shard_executor is not None:
            shard_executor.stream = self

    @property
    def policy(self) -> str:
        return self.stream.policy

    @property
    def budget_versions(self) -> int:
        return self.stream.staleness_budget_versions

    # ------------------------------------------------------------------ #
    # Update application (the event loops' _UPDATE handler)
    # ------------------------------------------------------------------ #
    def apply(self, now: float, event: UpdateEvent) -> int:
        """Apply one update, run the invalidation matrix, return the number
        of derived-state entries invalidated."""
        stats = self.stats
        graph = self.graph
        dirty: List[int] = []
        feature_writes: List[int] = []
        if event.kind == "edge":
            if graph.add_edge(event.src, event.dst):
                stats.edge_updates += 1
                dirty.append(int(event.dst))
            else:
                stats.noop_updates += 1
        elif event.kind == "feature":
            graph.write_features(
                event.src, feature_row(graph.feature_length,
                                       event.feature_seed))
            stats.feature_updates += 1
            dirty.append(int(event.src))
            feature_writes.append(int(event.src))
        else:  # vertex
            vertex = graph.add_vertex(feature_row(graph.feature_length,
                                                  event.feature_seed))
            graph.add_edge(vertex, event.dst)
            stats.vertex_updates += 1
            dirty.extend([vertex, int(event.dst)])
            if self.shard_executor is not None and self.policy != "none":
                self.shard_executor.extend_owner(vertex)
                stats.invalidations["shard_plan"] += 1
        stats.updates_offered += 1
        for v in dirty:
            self._last_mutation[v] = graph.version
            self._last_mutation_s[v] = now
        invalidated = self._invalidate(dirty, feature_writes)
        if self.observe is not None:
            self.observe.on_update(now, event, invalidated)
        return invalidated

    def _invalidate(self, dirty: List[int],
                    feature_writes: List[int]) -> int:
        stats = self.stats
        count = 0
        if self.policy == "flush" and dirty:
            if self.result_cache is not None:
                dropped = len(self.result_cache)
                self.result_cache.clear()
                stats.invalidations["result"] += dropped
                count += dropped
            self._vertex_results.clear()
            self._result_meta.clear()
            for chip in self.chips:
                dropped = len(chip.feature_cache)
                chip.feature_cache.clear()
                stats.invalidations["feature"] += dropped
                count += dropped
            if self.shard_executor is not None:
                count += self.shard_executor.flush_halo_caches(stats)
            # the sampler flushes lazily at its next call; force it now so
            # the drop counters land on this update
            before = self.sampler.invalidated_samples \
                + self.sampler.invalidated_signatures
            self.sampler._sync()
            count += (self.sampler.invalidated_samples
                      + self.sampler.invalidated_signatures) - before
        elif self.policy == "targeted" and dirty:
            if self.result_cache is not None:
                for v in dirty:
                    for key in self._vertex_results.pop(v, ()):
                        if self.result_cache.invalidate(key):
                            stats.invalidations["result"] += 1
                            count += 1
                        self._result_meta.pop(key, None)
            for v in feature_writes:
                key = self.feature_key(v)
                for chip in self.chips:
                    if chip.feature_cache.invalidate(key):
                        stats.invalidations["feature"] += 1
                        count += 1
                if self.shard_executor is not None:
                    count += self.shard_executor.invalidate_halo(v, stats)
            before = self.sampler.invalidated_samples \
                + self.sampler.invalidated_signatures
            self.sampler._sync()
            count += (self.sampler.invalidated_samples
                      + self.sampler.invalidated_signatures) - before
        return count

    def finalize(self) -> None:
        """Fold this state's counters into the stats (end of run).

        Accumulating (not assigning): the multi-tenant loop folds one
        StreamState per tenant into a single shared ConsistencyStats.
        """
        self.stats.invalidations["sample"] += self.sampler.invalidated_samples
        self.stats.invalidations["signature"] += \
            self.sampler.invalidated_signatures
        self.stats.final_version = max(self.stats.final_version,
                                       self.graph.version)
        self.stats.compactions += self.graph.compactions

    # ------------------------------------------------------------------ #
    # Consistency tracking (observation only; never changes timings)
    # ------------------------------------------------------------------ #
    def register_result(self, target: int, now: float) -> None:
        """Record the dependency set of a result just inserted into the
        result cache (memoised extraction: dictionary-lookup cheap)."""
        if self.result_cache is None:
            return
        sample = self.sampler.extract(target)
        vertices = tuple(int(v) for v in sample.vertex_array.tolist())
        self._result_meta[target] = _ResultMeta(
            version=self.graph.version, time_s=now, vertices=vertices)
        for v in vertices:
            self._vertex_results.setdefault(v, set()).add(target)

    def _count_stale(self, lag_versions: int, lag_seconds: float,
                     counter: str) -> None:
        stats = self.stats
        setattr(stats, counter, getattr(stats, counter) + 1)
        stats.stale_version_lag_sum += lag_versions
        stats.stale_version_lag_max = max(stats.stale_version_lag_max,
                                          lag_versions)
        stats.stale_seconds_sum += lag_seconds
        stats.stale_seconds_max = max(stats.stale_seconds_max, lag_seconds)
        if lag_versions > self.budget_versions:
            stats.stale_beyond_budget += 1

    def on_result_hit(self, target: int, now: float) -> None:
        """Consistency probe on a result-cache hit: is the cached answer's
        dependency neighbourhood unchanged since it was computed?"""
        meta = self._result_meta.get(target)
        self.stats.checks += 1
        if meta is None:
            return
        stale = any(self._last_mutation.get(v, 0) > meta.version
                    for v in meta.vertices)
        if stale:
            self._count_stale(self.graph.version - meta.version,
                              now - meta.time_s, "stale_results")

    def check_batch(self, batch, now: float) -> None:
        """Differential check at service start: every non-degraded request's
        memoised sample (and signature, when one is memoised) must equal a
        memo-bypassing recomputation at the current graph version."""
        if not self.stream.check:
            return
        sampler = self.sampler
        seen: Set[Tuple] = set()
        for request in batch.requests:
            if request.degrade_level > 0:
                continue
            shape = (request.target_vertex, request.degrade_hops,
                     request.degrade_fanout)
            if shape in seen:
                continue
            seen.add(shape)
            self.stats.checks += 1
            entry_version = sampler.memo_version(*shape)
            memo = sampler.extract(shape[0], num_hops=shape[1],
                                   fanout=shape[2])
            fresh = sampler.extract_fresh(shape[0], num_hops=shape[1],
                                          fanout=shape[2])
            if not np.array_equal(memo.vertex_array, fresh.vertex_array):
                lag = self.graph.version - (entry_version or 0)
                self._count_stale(lag, 0.0, "stale_samples")
                continue
            if (shape[0], sampler.num_hops if shape[1] is None else shape[1],
                    sampler.fanout if shape[2] is None else shape[2]) \
                    in sampler._sig_memo:
                memo_sig = sampler.signature(shape[0], num_hops=shape[1],
                                             fanout=shape[2])
                fresh_sig = sampler.signature_fresh(
                    shape[0], num_hops=shape[1], fanout=shape[2])
                if not np.array_equal(memo_sig, fresh_sig):
                    lag = self.graph.version - (entry_version or 0)
                    self._count_stale(lag, 0.0, "stale_signatures")

    def on_feature_hit(self, vertex: int, stamp, now: float) -> None:
        """Consistency probe on a feature-cache (or halo-cache) hit."""
        current = self.graph.feature_version(vertex)
        if isinstance(stamp, bool):
            stamp = 0
        if int(stamp) < current:
            self._count_stale(current - int(stamp),
                              now - self._last_mutation_s.get(vertex, now),
                              "stale_features")

    def on_halo_hit(self, vertex: int, stamp, now: float) -> None:
        current = self.graph.feature_version(vertex)
        if isinstance(stamp, bool):
            stamp = 0
        if int(stamp) < current:
            self._count_stale(current - int(stamp),
                              now - self._last_mutation_s.get(vertex, now),
                              "stale_halo")

    def note_shard_plan_miss(self, count: int = 1) -> None:
        self.stats.shard_plan_misses += count
