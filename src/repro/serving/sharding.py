"""Sharded execution of one request across a multi-chip group.

The paper's Fig. 18 scales HyGCN by partitioning the graph over several
chips (Section 4.3.2's interval/shard tiling applied across dies).  This
module takes that story online: a *chip group* of ``num_shards`` chips
holds one dataset partitioned by vertex ownership
(:class:`~repro.graphs.partition.ShardPlan`), and every served batch is
split into per-shard **sub-batches** that execute concurrently on their
owning chips:

1. the sampler splits a batch's requests by the owner of their target
   vertex; each shard's sub-batch fuses (deduped union) and runs through
   the owning chip's cycle model exactly like a single-chip batch;
2. fused sub-batch vertices owned by *other* shards are **ghosts**: their
   features travel as modelled halo-exchange traffic -- a DRAM read at the
   owner plus a transfer over the :class:`InterconnectConfig` link
   (parameterised like :class:`repro.hw.dram.HBMConfig`: bandwidth in
   GB/s == bytes/ns, a per-message latency, a message payload size);
3. each chip keeps a **halo cache** (LRU over ghost vertex ids) so hot
   ghost features are exchanged once while warm, with hit/byte accounting
   in :class:`~repro.serving.stats.ShardingStats`;
4. the batch completes at a **gather barrier**: max over shards of
   (exchange + compute), plus one gather transfer returning the non-leader
   shards' target outputs to the group leader (chip 0, the only
   schedulable chip of a sharded fleet).

Partitioners live behind the :data:`PARTITIONERS` registry (``hash``
baseline vs. ``locality`` greedy edge-cut minimiser, both in
:mod:`repro.graphs.partition`); plans are memoised process-wide in
:data:`_SHARD_PLAN_CACHE` (cleared by :func:`clear_shard_plan_cache`, the
test-isolation hook mirroring ``clear_probe_cache``).

A one-shard plan is a degenerate group: the fleet bypasses this module's
arithmetic entirely and the report is bit-for-bit identical to an
unsharded run (asserted in ``tests/serving/test_sharding.py``).  See
``docs/sharding.md`` for the cost model with a worked example.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import (
    ShardPlan,
    build_shard_plan,
    hash_owner,
    hash_partition,
    locality_partition,
)
from .cache import LRUCache
from .stats import ShardingStats

__all__ = [
    "PARTITIONERS",
    "InterconnectConfig",
    "ShardingConfig",
    "ShardExecutor",
    "ShardTiming",
    "shard_plan_for",
    "clear_shard_plan_cache",
]

logger = logging.getLogger("repro.serving.sharding")

#: Partitioner registry: name -> ``(graph, num_shards, seed) -> owner`` array.
#: ``hash`` is the locality-oblivious baseline; ``locality`` the LDG greedy
#: edge-cut minimiser the acceptance experiment measures against it.
PARTITIONERS = {
    "hash": hash_partition,
    "locality": locality_partition,
}


@dataclass(frozen=True)
class InterconnectConfig:
    """Chip-to-chip link model (the halo-exchange fabric).

    Parameterised like :class:`~repro.hw.dram.HBMConfig`: bandwidth is in
    GB/s, which equals bytes per nanosecond, so transfer time in ns is
    simply ``bytes / link_gbps``.  A transfer additionally pays
    ``latency_ns`` per message of up to ``message_bytes`` payload --
    small exchanges are latency-bound, large ones bandwidth-bound.
    """

    #: per-link bandwidth in GB/s (bytes/ns); PCIe-5 x16-ish by default,
    #: an order of magnitude under the 256 GB/s on-board HBM so crossing
    #: the cut is visibly more expensive than staying home.
    link_gbps: float = 24.0
    #: per-message latency in nanoseconds (serialisation + hop).
    latency_ns: float = 600.0
    #: maximum payload per message in bytes.
    message_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.link_gbps <= 0:
            raise ValueError("link_gbps must be positive")
        if self.latency_ns < 0:
            raise ValueError("latency_ns must be >= 0")
        if self.message_bytes < 1:
            raise ValueError("message_bytes must be >= 1")

    def transfer_time_s(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` over one link (0 bytes is free)."""
        if num_bytes <= 0:
            return 0.0
        messages = -(-int(num_bytes) // self.message_bytes)
        return (messages * self.latency_ns + num_bytes / self.link_gbps) * 1e-9


@dataclass(frozen=True)
class ShardingConfig:
    """Arming/tuning knobs of sharded execution (``--shards`` et al.).

    ``num_shards`` must equal the fleet's chip count (one shard per chip);
    ``halo_cache_mb`` sizes each chip's ghost-feature LRU in mebibytes
    (0 disables it); ``seed`` feeds the partitioner (only ``hash`` consumes
    it) and keys the plan memo.
    """

    num_shards: int
    partitioner: str = "locality"
    halo_cache_mb: float = 4.0
    interconnect: InterconnectConfig = InterconnectConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.partitioner not in PARTITIONERS:
            raise ValueError(
                f"partitioner must be one of {sorted(PARTITIONERS)}, "
                f"got {self.partitioner!r}")
        if self.halo_cache_mb < 0:
            raise ValueError("halo_cache_mb must be >= 0")


#: Shard-plan memo keyed on (graph identity, structure fingerprint, shards,
#: partitioner, seed).  Partitioning is pure preprocessing -- repeated runs
#: (benchmark sweeps, hash-vs-locality comparisons, per-tenant plans over a
#: shared dataset) pay for each plan once.  ``clear_shard_plan_cache`` is
#: the test-isolation hook (see ``tests/conftest.py``).
_SHARD_PLAN_CACHE: Dict[Tuple, ShardPlan] = {}


def clear_shard_plan_cache() -> None:
    """Drop all memoised shard plans (test isolation hook)."""
    _SHARD_PLAN_CACHE.clear()


def shard_plan_for(graph: Graph, config: ShardingConfig) -> ShardPlan:
    """The (memoised) :class:`ShardPlan` of ``graph`` under ``config``.

    The key includes ``id(graph)`` *and* the structural fingerprint
    (name, vertex and edge counts), so a recycled object id for a
    different graph cannot alias a stale plan.
    """
    key = (id(graph), graph.name, graph.num_vertices, graph.num_edges,
           config.num_shards, config.partitioner, config.seed)
    plan = _SHARD_PLAN_CACHE.get(key)
    if plan is None:
        owner = PARTITIONERS[config.partitioner](
            graph, config.num_shards, config.seed)
        plan = build_shard_plan(graph, owner,
                                partitioner=config.partitioner,
                                seed=config.seed)
        _SHARD_PLAN_CACHE[key] = plan
        logger.info(
            "partitioned %s into %d shards (%s): edge-cut %d/%d (%.1f%%), "
            "%d halo vertices", graph.name, plan.num_shards,
            plan.partitioner, plan.edge_cut, plan.num_edges,
            100.0 * plan.edge_cut_fraction, plan.halo_vertices)
    return plan


@dataclass(frozen=True)
class ShardTiming:
    """Cost breakdown of one shard's sub-batch (one span pair in traces)."""

    shard: int
    chip_id: int
    requests: int
    fused_vertices: int
    ghost_vertices: int
    halo_hits: int
    halo_misses: int
    exchange_s: float
    compute_s: float

    @property
    def total_s(self) -> float:
        return self.exchange_s + self.compute_s


class ShardExecutor:
    """Drives one batch across the chip group and accounts the exchange.

    One executor per (run, tenant): it owns the plan and the sampler/model
    binding, while the per-chip halo caches may be shared across tenants
    (the multi-tenant path passes one cache list for the whole fleet and a
    ``key_fn`` mapping vertex ids to ``(tenant, vertex)`` keys, mirroring
    the feature-cache convention).

    The executor never touches the event loop: the fleet calls
    :meth:`service_time_s` exactly where the unsharded path calls
    :func:`~repro.serving.fleet.fused_batch_service_time_s`, and everything
    else (dispatch, queues, completions) happens on the group leader.
    """

    def __init__(self, plan: ShardPlan, chips: Sequence, sampler, model,
                 dataset_name: str, config: ShardingConfig,
                 feature_bytes: int, stats: Optional[ShardingStats] = None,
                 halo_caches: Optional[List[LRUCache]] = None,
                 key_fn=None):
        if len(chips) < plan.num_shards:
            raise ValueError(
                f"chip group of {len(chips)} cannot host {plan.num_shards} "
                f"shards (need one chip per shard)")
        self.plan = plan
        self.chips = list(chips)[:plan.num_shards]
        self.sampler = sampler
        self.model = model
        self.dataset_name = dataset_name
        self.config = config
        #: bytes of one vertex's feature vector (feature_length * itemsize).
        self.feature_bytes = int(feature_bytes)
        self.stats = stats if stats is not None else ShardingStats(
            num_shards=plan.num_shards, partitioner=plan.partitioner)
        if not self.stats.shard_busy_s:
            self.stats.shard_busy_s = [0.0] * plan.num_shards
            self.stats.shard_requests = [0] * plan.num_shards
        self.stats.fold_plan(plan)
        if halo_caches is None:
            capacity = int(config.halo_cache_mb * (1 << 20)
                           / max(self.feature_bytes, 1))
            halo_caches = [LRUCache(capacity) for _ in range(plan.num_shards)]
        self.halo_caches = halo_caches
        self._key_fn = key_fn if key_fn is not None else (lambda v: v)
        #: armed by :class:`~repro.serving.streaming.StreamState` on
        #: mutating runs; ``None`` keeps the static fast path untouched.
        self.stream = None
        #: ownership array, possibly longer than ``plan.owner`` once
        #: streaming vertex inserts extend it (the plan stays frozen).
        self._owner = plan.owner

    # ------------------------------------------------------------------ #
    # Streaming-update hooks (called by StreamState; no-ops otherwise)
    # ------------------------------------------------------------------ #
    def extend_owner(self, vertex: int) -> int:
        """Assign ``vertex`` (and any gap below it) an owner by the hash
        rule -- exactly the shard a from-scratch :func:`hash_partition`
        repartition would pick, so targeted maintenance is consistent."""
        if vertex >= self._owner.size:
            new_ids = np.arange(self._owner.size, vertex + 1,
                                dtype=np.uint64)
            extension = hash_owner(new_ids, self.plan.num_shards,
                                   self.config.seed)
            self._owner = np.concatenate([self._owner, extension])
        return int(self._owner[vertex])

    def _owner_for(self, union: np.ndarray) -> np.ndarray:
        """Ownership lookup guarding against vertices the plan predates.

        Under the ``none`` invalidation policy new vertices are *not*
        assigned owners eagerly; the lazy extension here keeps the run
        from crashing and each occurrence counts as a shard-plan miss.
        """
        if union.size and int(union.max()) >= self._owner.size:
            missing = int(union.max()) + 1 - self._owner.size
            self.extend_owner(int(union.max()))
            if self.stream is not None:
                self.stream.note_shard_plan_miss(missing)
        return self._owner

    def flush_halo_caches(self, stats) -> int:
        """Clear every chip's halo cache (the ``flush`` policy)."""
        dropped = 0
        for cache in self.halo_caches:
            dropped += len(cache)
            cache.clear()
        stats.invalidations["halo"] += dropped
        return dropped

    def invalidate_halo(self, vertex: int, stats) -> int:
        """Drop ``vertex``'s entry from every halo cache (``targeted``)."""
        key = self._key_fn(int(vertex))
        dropped = 0
        for cache in self.halo_caches:
            if cache.invalidate(key):
                dropped += 1
        stats.invalidations["halo"] += dropped
        return dropped

    # ------------------------------------------------------------------ #
    def _halo_exchange_s(self, shard: int, ghosts: np.ndarray,
                         hbm_gbps: float, account: bool,
                         now: float = 0.0) -> Tuple[float, int, int]:
        """Exchange time for ``ghosts`` arriving at ``shard``.

        Misses cost a DRAM read at the owner (``bytes / hbm_gbps`` ns) plus
        the interconnect transfer; hits are served from the halo cache for
        free.  Returns ``(seconds, hits, misses)``.  On mutating runs the
        cached value is the ghost's feature version at insertion time
        (``True`` otherwise -- both are cache hits under ``is not None``),
        which is what lets :meth:`StreamState.on_halo_hit` detect a stale
        ghost served under the ``none`` policy.
        """
        cache = self.halo_caches[shard]
        key = self._key_fn
        stream = self.stream
        hits = 0
        if account:
            misses_list = []
            for v in ghosts:
                stamp = cache.get(key(int(v)))
                if stamp is not None:
                    hits += 1
                    if stream is not None:
                        stream.on_halo_hit(int(v), stamp, now)
                else:
                    misses_list.append(int(v))
            for v in misses_list:
                cache.put(key(v), True if stream is None
                          else stream.graph.feature_version(v))
            misses = len(misses_list)
        else:
            # read-only peek: probes must not warm the caches
            hits = sum(1 for v in ghosts if key(int(v)) in cache)
            misses = int(ghosts.size) - hits
        moved = misses * self.feature_bytes
        dram_s = moved / hbm_gbps * 1e-9 if moved else 0.0
        return dram_s + self.config.interconnect.transfer_time_s(moved), \
            hits, misses

    def service_time_s(self, batch, reuse_discount: float,
                       account: bool = True, now: float = 0.0) -> float:
        """Simulated group service time of ``batch`` (the gather barrier).

        Splits the batch by target ownership, runs every shard's fused
        sub-batch on its chip, prices the halo exchange each sub-batch
        needs, and returns ``max_s(exchange_s + compute_s) + gather_s``.
        Stamps the batch exactly like the unsharded path
        (``fused_vertices`` / ``naive_vertices`` / ``overlap_ratio`` /
        ``phase_cycles``, summed over shards) plus ``shard_timings`` for
        the observability layer's sub-batch spans.
        """
        plan = self.plan
        targets = np.asarray([r.target_vertex for r in batch.requests],
                             dtype=np.int64)
        owner = self._owner_for(targets)
        groups: Dict[int, List] = {}
        for request in batch.requests:
            groups.setdefault(int(owner[request.target_vertex]),
                              []).append(request)
        prefix = f"{batch.tenant}-" if batch.tenant else ""
        timings: List[ShardTiming] = []
        phase_cycles = {"total": 0, "aggregation": 0, "combination": 0,
                       "dram_busy": 0}
        fused_total = naive_total = 0
        for shard in sorted(groups):
            requests = groups[shard]
            chip = self.chips[shard]
            request_shapes = [(r.target_vertex, r.degrade_hops,
                               r.degrade_fanout) for r in requests]
            shapes = list(dict.fromkeys(request_shapes))
            by_shape = {s: self.sampler.extract(s[0], num_hops=s[1],
                                                fanout=s[2]) for s in shapes}
            samples = [by_shape[s] for s in shapes]
            naive = sum(by_shape[s].num_vertices for s in request_shapes)
            if len(samples) == 1:
                fused = samples[0].graph
            else:
                fused = self.sampler.fuse(
                    samples, name=f"{prefix}batch{batch.batch_id}s{shard}")
            union = samples[0].vertex_array if len(samples) == 1 else \
                np.unique(np.concatenate([s.vertex_array for s in samples]))
            owner = self._owner_for(union)
            ghosts = union[owner[union] != shard]
            exchange_s, hits, misses = self._halo_exchange_s(
                shard, ghosts, chip.hw.hbm.peak_bandwidth_gbps, account,
                now=now)
            report = chip.simulator.run_model(self.model, fused,
                                              dataset_name=self.dataset_name)
            phase_cycles["total"] += report.total_cycles
            phase_cycles["aggregation"] += report.aggregation_cycles
            phase_cycles["combination"] += report.combination_cycles
            phase_cycles["dram_busy"] += report.dram_stats.busy_cycles
            # per-chip feature-cache reuse, same semantics as the unsharded
            # path: warm features skip their DRAM stream on this chip
            key = self._key_fn
            stream = self.stream
            if account:
                feature_hits = 0
                for v in union:
                    stamp = chip.feature_cache.get(key(int(v)))
                    if stamp is not None:
                        feature_hits += 1
                        if stream is not None:
                            stream.on_feature_hit(int(v), stamp, now)
                for v in union:
                    chip.feature_cache.put(
                        key(int(v)), True if stream is None
                        else stream.graph.feature_version(int(v)))
            else:
                feature_hits = sum(1 for v in union if key(int(v))
                                   in chip.feature_cache)
            reuse_fraction = feature_hits / union.size if union.size else 0.0
            compute_s = report.execution_time_s \
                * (1.0 - reuse_discount * reuse_fraction)
            timings.append(ShardTiming(
                shard=shard, chip_id=chip.chip_id, requests=len(requests),
                fused_vertices=fused.num_vertices,
                ghost_vertices=int(ghosts.size),
                halo_hits=hits, halo_misses=misses,
                exchange_s=exchange_s, compute_s=compute_s))
            fused_total += fused.num_vertices
            naive_total += naive
            if account:
                chip.stats.vertices_simulated += fused.num_vertices
                chip.stats.feature_lookups += int(union.size)
                chip.stats.feature_hits += feature_hits
        batch.fused_vertices = fused_total
        batch.naive_vertices = naive_total
        batch.overlap_ratio = 1.0 - fused_total / naive_total \
            if naive_total else 0.0
        batch.phase_cycles = phase_cycles
        batch.shard_timings = timings
        # the gather barrier: non-leader shards return their targets'
        # output features to the group leader over the interconnect
        gather_bytes = sum(t.requests for t in timings if t.shard != 0) \
            * self.feature_bytes
        gather_s = self.config.interconnect.transfer_time_s(gather_bytes)
        service_s = max(t.total_s for t in timings) + gather_s
        if account:
            stats = self.stats
            stats.sharded_batches += 1
            stats.sub_batches += len(timings)
            stats.gather_s += gather_s
            for t in timings:
                stats.halo_lookups += t.ghost_vertices
                stats.halo_hits += t.halo_hits
                stats.halo_bytes_moved += t.halo_misses * self.feature_bytes
                stats.halo_bytes_saved += t.halo_hits * self.feature_bytes
                stats.exchange_s += t.exchange_s
                stats.shard_busy_s[t.shard] += t.total_s
                stats.shard_requests[t.shard] += t.requests
                # member chips do real work off the leader's clock: account
                # their busy time manually (the leader's own busy_s is the
                # full barrier time, added by the event loop)
                if t.shard != 0:
                    self.chips[t.shard].stats.busy_s += t.total_s
                    self.chips[t.shard].stats.batches_served += 1
                    self.chips[t.shard].stats.requests_served += t.requests
        return service_s
